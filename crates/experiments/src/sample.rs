//! SimPoint-style sampled simulation: phase maps over BBV chunk
//! fingerprints, sharded representative-slice measurement, weighted
//! recombination, and the mandatory exact-vs-sampled error report.
//!
//! `REPRO_SAMPLE=simpoint table1` turns the exact per-benchmark cells
//! into shard cells over *representative slices*: the trace is
//! fingerprinted ([`sim_trace::fingerprint_trace`]), the chunk BBVs are
//! clustered ([`simpoint::cluster`]), and each phase is sampled at up
//! to one member chunk per [`REP_SPACING`] members (the SimPoint-3.0
//! "multiple simulation points" device — a lone 4096-record slice
//! carries too much variance to stand for a whole phase). Each slice is
//! simulated — after warming predictor state on the [`WARMUP_RECORDS`]
//! records before it — as an independent cell on the jobs worker pool,
//! with the usual panic isolation, retry, journal, and progress-stream
//! semantics. Shard cell ids carry their cluster, chunk, and weight
//! (`table1/perl#p2c37@0.0714`) so live views can tell representative
//! shards from exact cells.
//!
//! Per-benchmark misprediction rates are then recombined by slice
//! weight ([`simpoint::recombine`]), and — unless
//! `REPRO_SAMPLE_EXACT=off` — the exact rates are computed inline and
//! compared: the error report (absolute error in percentage points and
//! relative error per benchmark) is printed, written to
//! `results/sampling/<run>-error-report.json`, and gated against
//! `REPRO_SAMPLE_TOLERANCE_PP` (default 1.0). A benchmark whose sampled
//! slices executed too few indirect jumps to resolve the tolerance
//! (one misprediction flip moves the rate by `100/n` pp) is reported
//! as `low-signal` and excluded from the gate: at small scales the
//! sparse-indirect workloads (compress, ijpeg) simply do not carry
//! enough events per slice for a percentage-point bound to be
//! statistically meaningful.
//!
//! The same machinery backs the `simpoint` registry experiment, whose
//! cells compute sampled *and* exact rates per benchmark and report the
//! error columns as a regular table.

use crate::jobs::cli::{drive_campaign, epilogue, operator_error};
use crate::jobs::pool::CellTask;
use crate::jobs::{cell_id, registry::ExperimentDef, CellData, CellSet};
use crate::report::{count, pct, TextTable};
use crate::runner::{functional, trace_with_fingerprints, Scale};
use crate::table1;
use crate::telemetry::{self, TelemetryCtx};
use branch_predictors::ClassCounters;
use sim_isa::VecTrace;
use sim_telemetry::json::obj;
use sim_telemetry::Json;
use sim_trace::CHUNK_RECORDS;
use simpoint::{cluster, recombine, ClusterConfig, PhaseMap, SliceStats};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use target_cache::harness::{FrontEndConfig, PredictionHarness};

/// Records of predictor warm-up simulated before each representative
/// slice. 1024 records fill the BTB's hot set at the table sizes the
/// paper studies — a sweep over {4096, 3072, 2048, 1024, 512} records
/// at standard scale shows every signal-bearing benchmark's error flat
/// (or improving) down to 1024, so longer warm-up would only eat into
/// the sampling speedup. Warm-up is priced in records, not chunks: it
/// is predictor state, not a sampling unit.
pub const WARMUP_RECORDS: usize = 1024;

/// Sentinel warm-up meaning "the entire trace prefix": with an
/// exhaustive phase map this makes sampling bit-identical to exact
/// simulation, which is the recombination-identity invariant the tests
/// pin.
pub const FULL_WARMUP: usize = usize::MAX;

/// Default for `REPRO_SAMPLE_TOLERANCE_PP`: the documented error bound,
/// in percentage points of indirect-jump misprediction rate.
pub const DEFAULT_TOLERANCE_PP: f64 = 1.0;

/// Where error reports land unless `REPRO_SAMPLE_DIR` says otherwise.
pub const DEFAULT_SAMPLING_DIR: &str = "results/sampling";

/// One representative slice is measured per (up to) this many member
/// chunks of a phase — the accuracy/speed dial. Larger values sample
/// fewer slices (faster, noisier); each phase always gets at least one.
pub const REP_SPACING: usize = 9;

/// The shard suffix appended to a cell id:
/// `#p<cluster>c<chunk>@<weight>`.
pub fn shard_suffix(cluster: u32, chunk: u64, weight: f64) -> String {
    format!("#p{cluster}c{chunk}@{weight:.4}")
}

/// A shard cell id: `table1/perl#p2c37@0.0714`.
pub fn shard_cell_id(
    experiment: &str,
    bench: &str,
    cluster: u32,
    chunk: u64,
    weight: f64,
) -> String {
    format!(
        "{}{}",
        cell_id(experiment, bench),
        shard_suffix(cluster, chunk, weight)
    )
}

/// Splits a shard cell id back into `(base_cell, cluster, chunk,
/// weight)`; `None` for plain (exact) cell ids.
pub fn parse_shard(cell: &str) -> Option<(&str, u32, u64, f64)> {
    let (base, rest) = cell.rsplit_once("#p")?;
    let (cluster_chunk, weight) = rest.split_once('@')?;
    let (cluster, chunk) = cluster_chunk.split_once('c')?;
    Some((
        base,
        cluster.parse().ok()?,
        chunk.parse().ok()?,
        weight.parse().ok()?,
    ))
}

/// Fingerprints a trace and clusters its chunk BBVs into a phase map
/// with the default deterministic configuration. Records the
/// `sampling.chunks` / `sampling.phases` / `sampling.total_instructions`
/// manifest counters when telemetry is on.
pub fn phase_map(ctx: &TelemetryCtx, t: &VecTrace) -> PhaseMap {
    phase_map_with(ctx, t, None)
}

/// [`phase_map`] over record-time fingerprints when the trace came out
/// of the store with its BBV side-section (see
/// [`crate::runner::trace_with_fingerprints`]). Clustering stored
/// fingerprints skips the in-memory trace walk — the expensive half of
/// map construction — which is what keeps a sampled campaign's prologue
/// a small fraction of one exact simulation pass. The fallback
/// (`stored = None`) fingerprints `t` and produces an identical map:
/// the writer and [`sim_trace::fingerprint_trace`] share one builder.
pub fn phase_map_with(
    ctx: &TelemetryCtx,
    t: &VecTrace,
    stored: Option<&sim_trace::BbvSection>,
) -> PhaseMap {
    let map = {
        let _g = ctx.hub().map(|h| h.spans().span("phase-cluster"));
        match stored {
            Some(bbv) => cluster(&bbv.chunks, &ClusterConfig::default()),
            None => {
                let bbv = sim_trace::fingerprint_trace(t);
                cluster(&bbv.chunks, &ClusterConfig::default())
            }
        }
    };
    if let Some(hub) = ctx.hub() {
        let metrics = hub.registry();
        metrics.counter("sampling.chunks").add(map.chunks);
        metrics
            .counter("sampling.phases")
            .add(map.phases.len() as u64);
        metrics
            .counter("sampling.total_instructions")
            .add(t.len() as u64);
        if stored.is_some() {
            metrics.counter("sampling.stored_fingerprints").add(1);
        }
    }
    map
}

/// The number of whole-or-partial 4096-record chunks in a trace.
fn trace_chunks(t: &VecTrace) -> u64 {
    (t.len() as u64).div_ceil(u64::from(CHUNK_RECORDS))
}

/// The canonical phase map of a store-resident benchmark trace.
///
/// SimPoint practice publishes phase selections as artifacts next to
/// the trace (the `.simpoints`/`.weights` files), and this follows
/// suit: the map is cached as `<stem>.phases.json` beside the `.strc`,
/// so a campaign's per-run sampling prologue is a small JSON parse
/// rather than a cluster pass. A cache entry is honored only when its
/// seed, dimensionality, and chunk count match the trace and the
/// default [`ClusterConfig`] — anything stale or corrupt re-clusters
/// (from `bbv` when the store replay carried it) and, in read-write
/// mode, rewrites the cache atomically. `REPRO_TRACE_STORE=off`
/// disables the cache along with the store.
pub fn stored_phase_map(
    ctx: &TelemetryCtx,
    bench: sim_workloads::Benchmark,
    scale: crate::Scale,
    t: &VecTrace,
    bbv: Option<&sim_trace::BbvSection>,
) -> PhaseMap {
    let mode = crate::runner::trace_store_or_exit().mode();
    if mode == sim_trace::StoreMode::Off {
        return phase_map_with(ctx, t, bbv);
    }
    let path = crate::runner::trace_store_path(bench, scale).with_extension("phases.json");
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(map) = PhaseMap::parse(&text) {
            let cfg = ClusterConfig::default();
            if map.chunks == trace_chunks(t) && map.seed == cfg.seed && map.dims == cfg.dims as u32
            {
                if let Some(hub) = ctx.hub() {
                    hub.registry().counter("sampling.map_cache_hits").add(1);
                }
                return map;
            }
        }
        // Stale or unparseable cache: fall through and re-cluster.
    }
    let map = phase_map_with(ctx, t, bbv);
    if mode == sim_trace::StoreMode::ReadWrite {
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            let tmp = path.with_file_name(format!("{name}.{}.tmp", std::process::id()));
            if std::fs::write(&tmp, map.to_json().to_string()).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }
    map
}

/// One slice of the sampling plan: a member chunk measured on behalf of
/// `multiplier` chunks of its phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Representative {
    /// Phase (cluster) the slice belongs to.
    pub cluster: u32,
    /// Chunk index of the slice.
    pub chunk: u64,
    /// Member chunks this slice stands for; multipliers within a phase
    /// sum to the phase size, so plan weights recombine exactly like
    /// the phase weights would.
    pub multiplier: u64,
}

/// Expands a phase map into the sampling plan: each phase's members
/// (from the per-chunk assignments) are split into up to
/// `members / REP_SPACING` (rounded up) equal strata, and the center
/// chunk of each stratum is measured for the whole stratum. A
/// single-member phase yields exactly its one chunk with multiplier 1,
/// so [`PhaseMap::exhaustive`] expands to the identity plan.
pub fn representatives(map: &PhaseMap) -> Vec<Representative> {
    let mut plan = Vec::new();
    for phase in &map.phases {
        let members: Vec<u64> = map
            .assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == phase.cluster)
            .map(|(i, _)| i as u64)
            .collect();
        if members.is_empty() {
            // A map without assignments (hand-written JSON) still
            // samples its canonical representative.
            plan.push(Representative {
                cluster: phase.cluster,
                chunk: phase.representative,
                multiplier: phase.size,
            });
            continue;
        }
        let n = members.len();
        let strata = n.div_ceil(REP_SPACING).max(1);
        let (base, extra) = (n / strata, n % strata);
        for i in 0..strata {
            plan.push(Representative {
                cluster: phase.cluster,
                chunk: members[((2 * i + 1) * n) / (2 * strata)],
                multiplier: (base + usize::from(i < extra)) as u64,
            });
        }
    }
    plan
}

/// Fraction of the trace the plan actually simulates (measured chunks
/// over total; warm-up excluded).
pub fn simulated_fraction(map: &PhaseMap) -> f64 {
    if map.chunks == 0 {
        0.0
    } else {
        representatives(map).len() as f64 / map.chunks as f64
    }
}

/// The record range of chunk `chunk` within a trace of `len` records.
fn chunk_bounds(len: usize, chunk: u64) -> (usize, usize) {
    let records = CHUNK_RECORDS as usize;
    let start = (chunk as usize).saturating_mul(records).min(len);
    let end = (chunk as usize + 1).saturating_mul(records).min(len);
    (start, end)
}

/// Measures one representative chunk: a fresh harness is warmed on the
/// `warmup_records` records before it ([`FULL_WARMUP`] = the whole
/// prefix), then the chunk itself is simulated and the indirect-jump
/// counter delta returned. Warm-up plus measurement instructions are
/// credited to the running cell's instruction account, and to the
/// `sampling.sampled_instructions` counter when telemetry is on.
pub fn measure_phase(
    ctx: &TelemetryCtx,
    t: &VecTrace,
    chunk: u64,
    warmup_records: usize,
    frontend: FrontEndConfig,
) -> ClassCounters {
    let (start, end) = chunk_bounds(t.len(), chunk);
    let warm_start = if warmup_records == FULL_WARMUP {
        0
    } else {
        start.saturating_sub(warmup_records)
    };
    telemetry::add_instructions((end - warm_start) as u64);
    if let Some(hub) = ctx.hub() {
        hub.registry()
            .counter("sampling.sampled_instructions")
            .add((end - warm_start) as u64);
    }
    let _g = ctx.hub().map(|h| h.spans().span("phase-measure"));
    let mut h = PredictionHarness::new(frontend);
    h.run(t.as_slice()[warm_start..start].iter());
    let before = h.stats().indirect_jump_counters();
    h.run(t.as_slice()[start..end].iter());
    let after = h.stats().indirect_jump_counters();
    ClassCounters {
        executed: after.executed - before.executed,
        correct: after.correct - before.correct,
    }
}

/// Wraps one measured slice as the recombination currency: indirect
/// executions and correct predictions, weighted by cluster size.
pub fn slice_stats(size: u64, counters: ClassCounters) -> SliceStats {
    SliceStats {
        multiplier: size,
        counts: BTreeMap::from([
            ("ij_executed".to_string(), counters.executed as f64),
            ("ij_correct".to_string(), counters.correct as f64),
        ]),
    }
}

/// Recombines measured slices into the sampled indirect-jump
/// misprediction rate. With an exhaustive phase map and [`FULL_WARMUP`]
/// this is bit-identical to the exact rate: every count is an integer
/// below 2⁵³, so the weighted sums and the final division see exactly
/// the operands exact simulation would.
pub fn rate_from_slices(slices: &[SliceStats]) -> f64 {
    let totals = recombine(slices);
    let executed = totals.get("ij_executed").copied().unwrap_or(0.0);
    let correct = totals.get("ij_correct").copied().unwrap_or(0.0);
    if executed == 0.0 {
        0.0
    } else {
        (executed - correct) / executed
    }
}

/// The full sampled measurement for one trace: measure every slice of
/// the plan ([`representatives`]) and return the weighted slice stats.
/// The sequential path the `simpoint` registry experiment and
/// `simpoint-pack compare` use; the sampled campaign driver runs the
/// same per-slice measurements as shard cells instead.
pub fn sampled_slices(
    ctx: &TelemetryCtx,
    t: &VecTrace,
    map: &PhaseMap,
    warmup_records: usize,
    frontend: FrontEndConfig,
) -> Vec<SliceStats> {
    representatives(map)
        .iter()
        .map(|r| {
            slice_stats(
                r.multiplier,
                measure_phase(ctx, t, r.chunk, warmup_records, frontend),
            )
        })
        .collect()
}

/// Raw (unweighted) indirect jumps executed inside measured slices —
/// the signal the error-report gate judges resolution by.
pub fn sampled_ij(slices: &[SliceStats]) -> u64 {
    slices
        .iter()
        .map(|s| s.counts.get("ij_executed").copied().unwrap_or(0.0))
        .sum::<f64>() as u64
}

/// Convenience: [`sampled_slices`] recombined into the sampled
/// indirect-jump misprediction rate.
pub fn sampled_indirect_mispred(
    ctx: &TelemetryCtx,
    t: &VecTrace,
    map: &PhaseMap,
    warmup_records: usize,
    frontend: FrontEndConfig,
) -> f64 {
    rate_from_slices(&sampled_slices(ctx, t, map, warmup_records, frontend))
}

/// One benchmark's row of the exact-vs-sampled error report.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchError {
    /// Benchmark name.
    pub bench: String,
    /// Exact indirect-jump misprediction rate.
    pub exact: f64,
    /// Sampled (recombined) rate.
    pub sampled: f64,
    /// Chunks in the trace.
    pub chunks: u64,
    /// Phases (clusters) the map selected.
    pub phases: u64,
    /// Measured slices the plan expanded to.
    pub shards: u64,
    /// Raw indirect jumps executed inside measured slices.
    pub sampled_ij: u64,
}

impl BenchError {
    /// Absolute error in percentage points.
    pub fn abs_err_pp(&self) -> f64 {
        (self.sampled - self.exact).abs() * 100.0
    }

    /// Relative error against the exact rate (zero when exact is zero).
    pub fn rel_err(&self) -> f64 {
        if self.exact == 0.0 {
            0.0
        } else {
            (self.sampled - self.exact).abs() / self.exact
        }
    }

    /// The smallest rate difference the sampled slices can resolve, in
    /// percentage points: one misprediction flip moves the rate by
    /// `100 / sampled_ij`.
    pub fn resolution_pp(&self) -> f64 {
        if self.sampled_ij == 0 {
            f64::INFINITY
        } else {
            100.0 / self.sampled_ij as f64
        }
    }

    /// Whether the row carries enough indirect-jump signal for the
    /// tolerance to be meaningful (resolution at or below tolerance).
    /// Low-signal rows are reported but not gated.
    pub fn gated(&self, tolerance_pp: f64) -> bool {
        self.resolution_pp() <= tolerance_pp
    }
}

/// The exact-vs-sampled error report a sampled campaign must emit
/// whenever an exact baseline exists.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorReport {
    /// Tool that ran the sampled campaign.
    pub tool: String,
    /// Run id, for artifact correlation.
    pub run_id: String,
    /// Scale name.
    pub scale: String,
    /// The tolerance the report was gated against, in percentage points.
    pub tolerance_pp: f64,
    /// Per-benchmark errors, in benchmark order.
    pub rows: Vec<BenchError>,
}

impl ErrorReport {
    /// The largest absolute error among gated rows, in percentage
    /// points (low-signal rows are reported but never judged).
    pub fn worst_abs_err_pp(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.gated(self.tolerance_pp))
            .map(BenchError::abs_err_pp)
            .fold(0.0, f64::max)
    }

    /// Whether every gated benchmark is within the tolerance.
    pub fn within_tolerance(&self) -> bool {
        self.worst_abs_err_pp() <= self.tolerance_pp
    }

    /// The report as JSON.
    pub fn to_json(&self) -> Json {
        obj([
            ("tool", Json::from(self.tool.as_str())),
            ("run", Json::from(self.run_id.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            ("tolerance_pp", Json::from(self.tolerance_pp)),
            ("worst_abs_err_pp", Json::from(self.worst_abs_err_pp())),
            ("within_tolerance", Json::from(self.within_tolerance())),
            (
                "benchmarks",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            obj([
                                ("bench", Json::from(r.bench.as_str())),
                                ("exact", Json::from(r.exact)),
                                ("sampled", Json::from(r.sampled)),
                                ("abs_err_pp", Json::from(r.abs_err_pp())),
                                ("rel_err", Json::from(r.rel_err())),
                                ("chunks", Json::from(r.chunks)),
                                ("phases", Json::from(r.phases)),
                                ("shards", Json::from(r.shards)),
                                ("sampled_ij", Json::from(r.sampled_ij)),
                                ("gated", Json::from(r.gated(self.tolerance_pp))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report back from its JSON form (`simpoint-pack` and the
    /// binary-level tests read what the driver wrote).
    pub fn parse(text: &str) -> Result<ErrorReport, String> {
        let v = sim_telemetry::json::parse(text).map_err(|e| e.to_string())?;
        let s = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("error report missing {k:?}"))
        };
        let rows = v
            .get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or("error report missing \"benchmarks\"")?
            .iter()
            .map(|r| {
                let num = |k: &str| {
                    r.get(k)
                        .and_then(Json::as_f64)
                        .ok_or(format!("error report row missing {k:?}"))
                };
                Ok(BenchError {
                    bench: r
                        .get("bench")
                        .and_then(Json::as_str)
                        .ok_or("error report row missing \"bench\"")?
                        .to_string(),
                    exact: num("exact")?,
                    sampled: num("sampled")?,
                    chunks: num("chunks")? as u64,
                    phases: num("phases")? as u64,
                    shards: num("shards")? as u64,
                    sampled_ij: num("sampled_ij")? as u64,
                })
            })
            .collect::<Result<Vec<BenchError>, String>>()?;
        Ok(ErrorReport {
            tool: s("tool")?,
            run_id: s("run")?,
            scale: s("scale")?,
            tolerance_pp: v
                .get("tolerance_pp")
                .and_then(Json::as_f64)
                .ok_or("error report missing \"tolerance_pp\"")?,
            rows,
        })
    }

    /// The operator table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "benchmark".into(),
            "chunks".into(),
            "phases".into(),
            "shards".into(),
            "exact".into(),
            "sampled".into(),
            "abs err (pp)".into(),
            "rel err".into(),
            "gate".into(),
        ]);
        for r in &self.rows {
            let gate = if !r.gated(self.tolerance_pp) {
                format!("low-signal (n={})", r.sampled_ij)
            } else if r.abs_err_pp() <= self.tolerance_pp {
                "ok".to_string()
            } else {
                "OVER".to_string()
            };
            table.row(vec![
                r.bench.clone(),
                r.chunks.to_string(),
                r.phases.to_string(),
                r.shards.to_string(),
                pct(r.exact),
                pct(r.sampled),
                format!("{:.3}", r.abs_err_pp()),
                format!("{:.3}", r.rel_err()),
                gate,
            ]);
        }
        format!(
            "Sampling error report (tolerance {:.2} pp, worst {:.3} pp, {}):\n\n{}",
            self.tolerance_pp,
            self.worst_abs_err_pp(),
            if self.within_tolerance() {
                "within tolerance"
            } else {
                "OVER TOLERANCE"
            },
            table.render()
        )
    }

    /// Writes the report to `<dir>/<run>-error-report.json`.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}-error-report.json", self.run_id));
        sim_telemetry::atomic_write(&path, self.to_json().to_string().as_bytes())?;
        Ok(path)
    }
}

/// Reads `REPRO_SAMPLE_TOLERANCE_PP` (strictly: a typo exits 2, like
/// every other knob).
fn tolerance_from_env() -> f64 {
    match std::env::var("REPRO_SAMPLE_TOLERANCE_PP") {
        Ok(v) if v.is_empty() => DEFAULT_TOLERANCE_PP,
        Ok(v) => v
            .parse::<f64>()
            .ok()
            .filter(|t| *t >= 0.0)
            .unwrap_or_else(|| {
                operator_error(&format!(
                "unrecognized REPRO_SAMPLE_TOLERANCE_PP value {v:?}; expected a non-negative number"
            ))
            }),
        Err(_) => DEFAULT_TOLERANCE_PP,
    }
}

/// Reads `REPRO_SAMPLE_EXACT` (`inline`, the default, computes the
/// exact baseline after the shard campaign; `off` skips it — and with
/// it the error report and its gate).
fn exact_inline_from_env() -> bool {
    match std::env::var("REPRO_SAMPLE_EXACT") {
        Ok(v) if v.is_empty() => true,
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "inline" => true,
            "off" => false,
            _ => operator_error(&format!(
                "unrecognized REPRO_SAMPLE_EXACT value {v:?}; accepted values: inline, off"
            )),
        },
        Err(_) => true,
    }
}

/// Where error reports are written (`REPRO_SAMPLE_DIR` override).
fn sampling_dir_from_env() -> PathBuf {
    match std::env::var("REPRO_SAMPLE_DIR") {
        Ok(v) if !v.is_empty() => PathBuf::from(v),
        _ => PathBuf::from(DEFAULT_SAMPLING_DIR),
    }
}

/// One benchmark's sampled-campaign plan: the shared trace, its phase
/// map, and the exact (non-simulated) characterization fields.
struct BenchPlan {
    label: &'static str,
    trace: Arc<VecTrace>,
    map: PhaseMap,
}

/// The sampled campaign driver behind `REPRO_SAMPLE=simpoint`: shard
/// cells on the worker pool, weighted recombination, the sampled
/// Table 1, and the exact-vs-sampled error report. Exits like
/// [`epilogue`], plus status 1 when the report exceeds tolerance.
pub(crate) fn drive_sampled(tool: &str, defs: &[ExperimentDef], scale: Scale) -> i32 {
    for def in defs {
        if def.name != "table1" {
            operator_error(&format!(
                "REPRO_SAMPLE=simpoint shards only the table1 experiment, not {:?}; \
                 run `REPRO_SAMPLE=simpoint table1` (the simpoint experiment reports \
                 sampled-vs-exact itself and needs no knob)",
                def.name
            ));
        }
    }
    let tolerance_pp = tolerance_from_env();
    let exact_inline = exact_inline_from_env();
    let session = telemetry::session_or_exit(tool, scale);
    let ctx = session.ctx();

    // Phase maps must exist before shard tasks can be enumerated. Trace
    // generation is store-cached, phase maps are cached next to the
    // store files, and a cold map clusters the store-borne record-time
    // fingerprints — this sequential prologue costs a small fraction of
    // one exact simulation pass.
    let plans: Vec<BenchPlan> = table1::cell_labels()
        .into_iter()
        .map(|label| {
            let bench = crate::jobs::benchmark(label);
            let (t, bbv) = trace_with_fingerprints(&ctx, bench, scale);
            let map = stored_phase_map(&ctx, bench, scale, &t, bbv.as_ref());
            BenchPlan {
                label,
                trace: Arc::new(t),
                map,
            }
        })
        .collect();

    let frontend = FrontEndConfig::isca97_baseline();
    let mut tasks: Vec<CellTask> = Vec::new();
    for plan in &plans {
        for rep in representatives(&plan.map) {
            let weight = rep.multiplier as f64 / plan.map.chunks.max(1) as f64;
            let id = shard_cell_id("table1", plan.label, rep.cluster, rep.chunk, weight);
            let t = Arc::clone(&plan.trace);
            let ctx = ctx.clone();
            tasks.push(CellTask::new(id, move || {
                let counters = measure_phase(&ctx, &t, rep.chunk, WARMUP_RECORDS, frontend);
                let mut d = CellData::new();
                d.set("multiplier", rep.multiplier as f64);
                d.set("ij_executed", counters.executed as f64);
                d.set("ij_correct", counters.correct as f64);
                d
            }));
        }
    }
    if let Some(hub) = ctx.hub() {
        hub.registry()
            .counter("sampling.shards")
            .add(tasks.len() as u64);
    }

    let driven = drive_campaign(tool, scale, &session, tasks);

    // Recombine each benchmark's shard cells into a sampled Table 1. A
    // benchmark with any failed shard renders as ERR: a partial
    // recombination would silently re-weight the surviving phases.
    let mut cells = CellSet::new();
    let mut sampled_rates: BTreeMap<&str, (f64, u64, u64)> = BTreeMap::new();
    for plan in &plans {
        let mut slices = Vec::new();
        let mut failure = None;
        let reps = representatives(&plan.map);
        for rep in &reps {
            let weight = rep.multiplier as f64 / plan.map.chunks.max(1) as f64;
            let id = shard_cell_id("table1", plan.label, rep.cluster, rep.chunk, weight);
            let report = driven
                .outcome
                .report(&id)
                .expect("every enumerated shard was scheduled");
            match &report.outcome {
                Ok(d) => slices.push(SliceStats {
                    multiplier: rep.multiplier,
                    counts: d.0.clone(),
                }),
                Err(reason) => {
                    failure = Some(format!("shard p{}c{}: {reason}", rep.cluster, rep.chunk))
                }
            }
        }
        match failure {
            Some(reason) => cells.insert(plan.label, Err(reason)),
            None => {
                let rate = rate_from_slices(&slices);
                sampled_rates.insert(plan.label, (rate, reps.len() as u64, sampled_ij(&slices)));
                let stats = plan.trace.stats();
                let mut d = CellData::new();
                d.set("instructions", stats.instructions() as f64);
                d.set("branches", stats.branches() as f64);
                d.set("indirect_jumps", stats.indirect_jumps() as f64);
                d.set("static_sites", stats.static_indirect_jumps() as f64);
                d.set("btb_mispred", rate);
                cells.insert(plan.label, Ok(d));
            }
        }
    }

    println!(
        "sampled table1 (REPRO_SAMPLE=simpoint): rates recombined from phase representatives\n"
    );
    println!("{}", table1::render_cells(&cells));

    let status = epilogue(
        tool,
        &driven.run_id,
        scale,
        &driven.journal_dir,
        &driven.outcome,
    );
    if status != 0 {
        return status;
    }

    if !exact_inline {
        println!("sampling: exact baseline skipped (REPRO_SAMPLE_EXACT=off); no error report");
        return 0;
    }

    // The mandatory error report: exact rates computed inline, compared
    // per benchmark, written next to the campaign's other artifacts.
    let rows: Vec<BenchError> = plans
        .iter()
        .map(|plan| {
            let exact = functional(&ctx, &plan.trace, frontend).indirect_jump_misprediction_rate();
            let (sampled, shards, ij) = sampled_rates[plan.label];
            BenchError {
                bench: plan.label.to_string(),
                exact,
                sampled,
                chunks: plan.map.chunks,
                phases: plan.map.phases.len() as u64,
                shards,
                sampled_ij: ij,
            }
        })
        .collect();
    let report = ErrorReport {
        tool: tool.to_string(),
        run_id: driven.run_id.clone(),
        scale: scale.name().to_string(),
        tolerance_pp,
        rows,
    };
    println!("{}", report.render());
    match report.write(&sampling_dir_from_env()) {
        Ok(path) => println!("error report: {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write the sampling error report: {e}");
            return 2;
        }
    }
    if !report.within_tolerance() {
        eprintln!(
            "error: sampled misprediction rates deviate from exact by up to {:.3} pp (tolerance {:.2} pp)",
            report.worst_abs_err_pp(),
            report.tolerance_pp
        );
        return 1;
    }
    0
}

// --- The `simpoint` registry experiment: sampled-vs-exact per benchmark ---

/// The benchmark labels the `simpoint` experiment enumerates cells over.
pub fn cell_labels() -> Vec<&'static str> {
    table1::cell_labels()
}

/// Computes one benchmark's sampled-vs-exact cell.
pub fn cell(ctx: &TelemetryCtx, label: &str, scale: Scale) -> CellData {
    let bench = crate::jobs::benchmark(label);
    let (t, bbv) = trace_with_fingerprints(ctx, bench, scale);
    let map = stored_phase_map(ctx, bench, scale, &t, bbv.as_ref());
    let frontend = FrontEndConfig::isca97_baseline();
    let slices = sampled_slices(ctx, &t, &map, WARMUP_RECORDS, frontend);
    let sampled = rate_from_slices(&slices);
    let exact = functional(ctx, &t, frontend).indirect_jump_misprediction_rate();
    let row = BenchError {
        bench: label.to_string(),
        exact,
        sampled,
        chunks: map.chunks,
        phases: map.phases.len() as u64,
        shards: slices.len() as u64,
        sampled_ij: sampled_ij(&slices),
    };
    let mut d = CellData::new();
    d.set("chunks", map.chunks as f64);
    d.set("phases", map.phases.len() as f64);
    d.set("coverage", simulated_fraction(&map));
    d.set("sampled_mispred", sampled);
    d.set("exact_mispred", exact);
    d.set("abs_err_pp", row.abs_err_pp());
    d.set("rel_err", row.rel_err());
    d
}

/// Runs the experiment sequentially at the given scale.
pub fn run(scale: Scale) -> CellSet {
    CellSet::compute(&cell_labels(), |l| cell(&TelemetryCtx::off(), l, scale))
}

/// Renders a (possibly partial) cell set as the sampled-vs-exact table.
pub fn render_cells(cells: &CellSet) -> String {
    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "chunks".into(),
        "phases".into(),
        "coverage".into(),
        "sampled".into(),
        "exact".into(),
        "abs err (pp)".into(),
    ]);
    for &b in &sim_workloads::Benchmark::ALL {
        let n = b.name();
        table.row(vec![
            n.into(),
            cells.fmt(n, "chunks", |v| count(v as u64)),
            cells.fmt(n, "phases", |v| (v as u64).to_string()),
            cells.fmt(n, "coverage", pct),
            cells.fmt(n, "sampled_mispred", pct),
            cells.fmt(n, "exact_mispred", pct),
            cells.fmt(n, "abs_err_pp", |v| format!("{v:.3}")),
        ]);
    }
    format!(
        "SimPoint phase sampling: sampled vs exact BTB indirect misprediction\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::trace;
    use sim_workloads::Benchmark;

    #[test]
    fn shard_ids_round_trip() {
        let id = shard_cell_id("table1", "perl", 3, 37, 0.30612);
        assert_eq!(id, "table1/perl#p3c37@0.3061");
        let (base, cluster, chunk, weight) = parse_shard(&id).unwrap();
        assert_eq!(base, "table1/perl");
        assert_eq!(cluster, 3);
        assert_eq!(chunk, 37);
        assert!((weight - 0.3061).abs() < 1e-9);
        assert_eq!(parse_shard("table1/perl"), None);
        assert_eq!(parse_shard("table1/perl#p3"), None);
        assert_eq!(parse_shard("table1/perl#p3@0.5"), None);
    }

    #[test]
    fn representative_plan_covers_every_chunk_exactly_once() {
        // Multipliers across the plan partition the chunk count, each
        // slice belongs to its own phase, and the exhaustive map
        // expands to the identity plan.
        let ctx = TelemetryCtx::off();
        let t = trace(&ctx, Benchmark::Gcc, Scale::Standard);
        let map = phase_map(&ctx, &t);
        let plan = representatives(&map);
        assert_eq!(
            plan.iter().map(|r| r.multiplier).sum::<u64>(),
            map.chunks,
            "multipliers partition the trace"
        );
        for r in &plan {
            assert_eq!(map.assignments[r.chunk as usize], r.cluster);
        }
        assert!(plan.len() as u64 <= map.chunks);
        assert!(
            plan.len() >= map.chunks.div_ceil(REP_SPACING as u64) as usize,
            "at least one slice per {REP_SPACING} chunks"
        );

        let exhaustive = PhaseMap::exhaustive(9);
        let identity = representatives(&exhaustive);
        assert_eq!(identity.len(), 9);
        for (i, r) in identity.iter().enumerate() {
            assert_eq!((r.chunk, r.multiplier), (i as u64, 1));
        }
    }

    #[test]
    fn exhaustive_sampling_is_bit_identical_to_exact() {
        // The recombination-identity invariant at the experiments level:
        // every chunk its own phase + full-prefix warm-up must reproduce
        // the exact misprediction rate bit for bit.
        let ctx = TelemetryCtx::off();
        let t = trace(&ctx, Benchmark::M88ksim, Scale::Quick);
        let chunks = t.len().div_ceil(CHUNK_RECORDS as usize);
        let map = PhaseMap::exhaustive(chunks);
        let frontend = FrontEndConfig::isca97_baseline();
        let sampled = sampled_indirect_mispred(&ctx, &t, &map, FULL_WARMUP, frontend);
        let exact = functional(&ctx, &t, frontend).indirect_jump_misprediction_rate();
        assert_eq!(sampled, exact, "exhaustive sampling must be exact");
    }

    #[test]
    fn stored_fingerprints_reproduce_the_recomputed_phase_map() {
        // The campaign prologue clusters the store-borne side-section;
        // the fallback fingerprints in memory. Same builder, same map —
        // otherwise a store hit would silently change the sampling plan.
        let ctx = TelemetryCtx::off();
        let (t, bbv) = trace_with_fingerprints(&ctx, Benchmark::Xlisp, Scale::Quick);
        if let Some(stored) = &bbv {
            assert_eq!(
                stored.chunks,
                sim_trace::fingerprint_trace(&t).chunks,
                "record-time and in-memory fingerprints agree"
            );
        }
        let from_store = phase_map_with(&ctx, &t, bbv.as_ref());
        let recomputed = phase_map(&ctx, &t);
        assert_eq!(from_store.assignments, recomputed.assignments);
        assert_eq!(from_store.k, recomputed.k);
        assert_eq!(from_store.phases, recomputed.phases);
    }

    #[test]
    fn phase_map_cache_round_trips_and_heals_corruption() {
        // First call populates `<stem>.phases.json` beside the store
        // file; the second parses it back bit-identical (Rust's float
        // Display is shortest-round-trip). A corrupted cache must be
        // recomputed and rewritten, never trusted.
        let ctx = TelemetryCtx::off();
        let (t, bbv) = trace_with_fingerprints(&ctx, Benchmark::Vortex, Scale::Quick);
        let fresh = phase_map_with(&ctx, &t, bbv.as_ref());
        let first = stored_phase_map(&ctx, Benchmark::Vortex, Scale::Quick, &t, bbv.as_ref());
        assert_eq!(first, fresh);
        let second = stored_phase_map(&ctx, Benchmark::Vortex, Scale::Quick, &t, bbv.as_ref());
        assert_eq!(
            second, fresh,
            "cached map must reproduce the computed one exactly"
        );

        let path = crate::runner::trace_store_path(Benchmark::Vortex, Scale::Quick)
            .with_extension("phases.json");
        if path.exists() {
            std::fs::write(&path, "not a phase map").unwrap();
            let healed = stored_phase_map(&ctx, Benchmark::Vortex, Scale::Quick, &t, bbv.as_ref());
            assert_eq!(healed, fresh, "corrupt cache falls back to recompute");
            let reparsed = PhaseMap::parse(&std::fs::read_to_string(&path).unwrap())
                .expect("healed cache is valid JSON again");
            assert_eq!(reparsed, fresh);
        }
    }

    #[test]
    fn sampled_rate_tracks_exact_on_perl() {
        // The real sampled configuration (clustered map, 1024-record
        // warm-up)
        // stays within the documented 1 pp bound on the hardest benchmark.
        let ctx = TelemetryCtx::off();
        let t = trace(&ctx, Benchmark::Perl, Scale::Quick);
        let map = phase_map(&ctx, &t);
        assert!(!map.phases.is_empty());
        let frontend = FrontEndConfig::isca97_baseline();
        let sampled = sampled_indirect_mispred(&ctx, &t, &map, WARMUP_RECORDS, frontend);
        let exact = functional(&ctx, &t, frontend).indirect_jump_misprediction_rate();
        assert!(
            (sampled - exact).abs() * 100.0 <= DEFAULT_TOLERANCE_PP,
            "sampled {sampled} vs exact {exact}"
        );
    }

    #[test]
    fn error_report_round_trips_and_gates() {
        let report = ErrorReport {
            tool: "table1".into(),
            run_id: "r-42".into(),
            scale: "quick".into(),
            tolerance_pp: 1.0,
            rows: vec![
                BenchError {
                    bench: "perl".into(),
                    exact: 0.762,
                    sampled: 0.7575,
                    chunks: 25,
                    phases: 4,
                    shards: 6,
                    sampled_ij: 800,
                },
                BenchError {
                    bench: "gcc".into(),
                    exact: 0.66,
                    sampled: 0.675,
                    chunks: 25,
                    phases: 5,
                    shards: 7,
                    sampled_ij: 500,
                },
            ],
        };
        assert!((report.worst_abs_err_pp() - 1.5).abs() < 1e-9);
        assert!(!report.within_tolerance());
        let parsed = ErrorReport::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(parsed, report);
        let text = report.render();
        assert!(text.contains("OVER TOLERANCE"), "{text}");
        assert!(text.contains("perl"), "{text}");
    }

    #[test]
    fn low_signal_rows_are_reported_but_not_gated() {
        // compress at small scales: the sampled slices see a handful of
        // indirect jumps, so a single flip overwhelms any pp tolerance.
        // The row must show up in the report without tripping the gate.
        let sparse = BenchError {
            bench: "compress".into(),
            exact: 0.054,
            sampled: 0.0,
            chunks: 98,
            phases: 3,
            shards: 7,
            sampled_ij: 20,
        };
        assert!(
            !sparse.gated(1.0),
            "resolution {} pp",
            sparse.resolution_pp()
        );
        let report = ErrorReport {
            tool: "table1".into(),
            run_id: "r-43".into(),
            scale: "standard".into(),
            tolerance_pp: 1.0,
            rows: vec![sparse],
        };
        assert!(report.within_tolerance(), "low-signal rows never gate");
        assert_eq!(report.worst_abs_err_pp(), 0.0);
        let text = report.render();
        assert!(text.contains("low-signal (n=20)"), "{text}");
        assert!(text.contains("within tolerance"), "{text}");
    }

    #[test]
    fn simpoint_cells_render_with_err_markers() {
        let mut cells = CellSet::new();
        for label in cell_labels() {
            cells.insert(label, Err("synthetic failure".to_string()));
        }
        let out = render_cells(&cells);
        assert!(out.contains("ERR(synthetic failure)"), "{out}");
    }
}
