//! Figures 12 & 13: tagless vs tagged target caches at equal hardware
//! budget.
//!
//! "For a given implementation cost, a tagless target cache can have more
//! entries than a tagged target cache. ... The tagless target cache
//! outperforms tagged target caches with a small degree of
//! set-associativity. On the other hand, a tagged target cache with \[4\] or
//! more entries per set outperforms the tagless target cache."
//!
//! Series: a 512-entry tagless gshare cache (flat line) vs 256-entry
//! History-Xor tagged caches across associativities; cells are
//! execution-time reduction vs the BTB baseline.

use crate::report::{pct, TextTable};
use crate::runner::{exec_reduction_with_base, timing, trace, Scale};
use sim_workloads::Benchmark;
use target_cache::harness::FrontEndConfig;
use target_cache::TargetCacheConfig;

/// Associativities swept for the tagged series (the figures use 1..=256).
pub const ASSOCS: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// One benchmark's two series.
#[derive(Clone, Debug)]
pub struct Series {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The 512-entry tagless cache's execution-time reduction.
    pub tagless: f64,
    /// The 256-entry tagged cache's reduction at each associativity, in
    /// [`ASSOCS`] order.
    pub tagged: Vec<f64>,
}

impl Series {
    /// The smallest associativity at which the tagged cache matches or
    /// beats the tagless one (the figures' crossover), if any.
    pub fn crossover_assoc(&self) -> Option<usize> {
        ASSOCS
            .iter()
            .zip(&self.tagged)
            .find(|(_, &red)| red >= self.tagless)
            .map(|(&a, _)| a)
    }
}

/// Runs the comparison for the focus benchmarks.
pub fn run(scale: Scale) -> Vec<Series> {
    Benchmark::FOCUS
        .iter()
        .map(|&benchmark| {
            let t = trace(benchmark, scale);
            let base = timing(&t, FrontEndConfig::isca97_baseline());
            let tagless =
                exec_reduction_with_base(&t, &base, TargetCacheConfig::isca97_tagless_gshare());
            let tagged = ASSOCS
                .iter()
                .map(|&assoc| {
                    exec_reduction_with_base(&t, &base, TargetCacheConfig::isca97_tagged(assoc))
                })
                .collect();
            Series {
                benchmark,
                tagless,
                tagged,
            }
        })
        .collect()
}

/// Renders both figures' series.
pub fn render(series: &[Series]) -> String {
    let mut out = String::from(
        "Figures 12-13: tagless (512 entries) vs tagged (256 entries) target caches\n\
         equal hardware budget; execution-time reduction vs BTB baseline\n",
    );
    for s in series {
        let mut table = TextTable::new(vec![
            "set-assoc".into(),
            "tagged 256".into(),
            "tagless 512".into(),
        ]);
        for (&assoc, &red) in ASSOCS.iter().zip(&s.tagged) {
            table.row(vec![assoc.to_string(), pct(red), pct(s.tagless)]);
        }
        out.push_str(&format!(
            "\n[{}]  (crossover at {} ways)\n{}",
            s.benchmark,
            s.crossover_assoc()
                .map_or("no".to_string(), |a| a.to_string()),
            table.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_catches_tagless_as_associativity_grows() {
        let series = run(Scale::Quick);
        for s in &series {
            // Both organizations beat the baseline.
            assert!(
                s.tagless > 0.0,
                "{}: tagless reduction {}",
                s.benchmark,
                s.tagless
            );
            // The tagged series is (weakly) increasing from direct-mapped
            // to fully associative.
            let first = s.tagged[0];
            let last = *s.tagged.last().unwrap();
            assert!(
                last >= first - 0.005,
                "{}: tagged should not degrade with associativity ({first} -> {last})",
                s.benchmark
            );
            // At full associativity the tagged cache is at least close to
            // the tagless one (the paper's crossover claim).
            assert!(
                last >= s.tagless * 0.8,
                "{}: fully-associative tagged ({last}) should approach tagless ({})",
                s.benchmark,
                s.tagless
            );
        }
    }
}
