//! Figures 12 & 13: tagless vs tagged target caches at equal hardware
//! budget.
//!
//! "For a given implementation cost, a tagless target cache can have more
//! entries than a tagged target cache. ... The tagless target cache
//! outperforms tagged target caches with a small degree of
//! set-associativity. On the other hand, a tagged target cache with \[4\] or
//! more entries per set outperforms the tagless target cache."
//!
//! Series: a 512-entry tagless gshare cache (flat line) vs 256-entry
//! History-Xor tagged caches across associativities; cells are
//! execution-time reduction vs the BTB baseline.

use crate::jobs::{CellData, CellSet};
use crate::report::{pct, TextTable};
use crate::runner::{exec_reduction_with_base, timing, trace, Scale};
use crate::telemetry::TelemetryCtx;
use sim_workloads::Benchmark;
use target_cache::harness::FrontEndConfig;
use target_cache::TargetCacheConfig;

/// Associativities swept for the tagged series (the figures use 1..=256).
pub const ASSOCS: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// One benchmark's two series.
#[derive(Clone, Debug)]
pub struct Series {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The 512-entry tagless cache's execution-time reduction.
    pub tagless: f64,
    /// The 256-entry tagged cache's reduction at each associativity, in
    /// [`ASSOCS`] order.
    pub tagged: Vec<f64>,
}

impl Series {
    /// The smallest associativity at which the tagged cache matches or
    /// beats the tagless one (the figures' crossover), if any.
    pub fn crossover_assoc(&self) -> Option<usize> {
        ASSOCS
            .iter()
            .zip(&self.tagged)
            .find(|(_, &red)| red >= self.tagless)
            .map(|(&a, _)| a)
    }
}

/// The benchmark labels this experiment enumerates cells over.
pub fn cell_labels() -> Vec<&'static str> {
    Benchmark::FOCUS.iter().map(|b| b.name()).collect()
}

/// Computes one benchmark's cell: the tagless reduction (`tagless`) plus
/// the tagged reduction per associativity (`tagged.<assoc>`).
pub fn cell(ctx: &TelemetryCtx, label: &str, scale: Scale) -> CellData {
    let benchmark = crate::jobs::benchmark(label);
    let t = trace(ctx, benchmark, scale);
    let base = timing(ctx, &t, FrontEndConfig::isca97_baseline());
    let mut d = CellData::new();
    d.set(
        "tagless",
        exec_reduction_with_base(ctx, &t, &base, TargetCacheConfig::isca97_tagless_gshare()),
    );
    for &assoc in &ASSOCS {
        d.set(
            format!("tagged.{assoc}"),
            exec_reduction_with_base(ctx, &t, &base, TargetCacheConfig::isca97_tagged(assoc)),
        );
    }
    d
}

/// Runs the comparison for the focus benchmarks.
pub fn run(scale: Scale) -> Vec<Series> {
    rows_from_cells(&CellSet::compute(&cell_labels(), |l| {
        cell(&TelemetryCtx::off(), l, scale)
    }))
}

/// Reconstructs the series from a fully-successful cell set.
pub fn rows_from_cells(cells: &CellSet) -> Vec<Series> {
    Benchmark::FOCUS
        .iter()
        .map(|&benchmark| {
            let d = cells.data(benchmark.name()).unwrap_or_else(|| {
                panic!("fig_tagless_vs_tagged cell for {benchmark} missing or failed")
            });
            Series {
                benchmark,
                tagless: d.req("tagless"),
                tagged: ASSOCS
                    .iter()
                    .map(|a| d.req(&format!("tagged.{a}")))
                    .collect(),
            }
        })
        .collect()
}

/// Converts the series back to cells.
pub fn cells_from_rows(series: &[Series]) -> CellSet {
    let mut set = CellSet::new();
    for s in series {
        let mut d = CellData::new();
        d.set("tagless", s.tagless);
        for (&assoc, &red) in ASSOCS.iter().zip(&s.tagged) {
            d.set(format!("tagged.{assoc}"), red);
        }
        set.insert(s.benchmark.name(), Ok(d));
    }
    set
}

/// Renders both figures' series.
pub fn render(series: &[Series]) -> String {
    render_cells(&cells_from_rows(series))
}

/// Renders a (possibly partial) cell set as the figures' series.
pub fn render_cells(cells: &CellSet) -> String {
    let mut out = String::from(
        "Figures 12-13: tagless (512 entries) vs tagged (256 entries) target caches\n\
         equal hardware budget; execution-time reduction vs BTB baseline\n",
    );
    for &benchmark in &Benchmark::FOCUS {
        let n = benchmark.name();
        let mut table = TextTable::new(vec![
            "set-assoc".into(),
            "tagged 256".into(),
            "tagless 512".into(),
        ]);
        for &assoc in &ASSOCS {
            table.row(vec![
                assoc.to_string(),
                cells.fmt(n, &format!("tagged.{assoc}"), pct),
                cells.fmt(n, "tagless", pct),
            ]);
        }
        let crossover = match cells.data(n) {
            Some(d) => {
                let tagless = d.req("tagless");
                ASSOCS
                    .iter()
                    .find(|a| d.req(&format!("tagged.{a}")) >= tagless)
                    .map_or("no".to_string(), |a| a.to_string())
            }
            None => crate::jobs::err_marker(cells.failure(n).unwrap_or("cell missing")),
        };
        out.push_str(&format!(
            "\n[{benchmark}]  (crossover at {crossover} ways)\n{}",
            table.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_catches_tagless_as_associativity_grows() {
        let series = run(Scale::Quick);
        for s in &series {
            // Both organizations beat the baseline.
            assert!(
                s.tagless > 0.0,
                "{}: tagless reduction {}",
                s.benchmark,
                s.tagless
            );
            // The tagged series is (weakly) increasing from direct-mapped
            // to fully associative.
            let first = s.tagged[0];
            let last = *s.tagged.last().unwrap();
            assert!(
                last >= first - 0.005,
                "{}: tagged should not degrade with associativity ({first} -> {last})",
                s.benchmark
            );
            // At full associativity the tagged cache is at least close to
            // the tagless one (the paper's crossover claim).
            assert!(
                last >= s.tagless * 0.8,
                "{}: fully-associative tagged ({last}) should approach tagless ({})",
                s.benchmark,
                s.tagless
            );
        }
    }
}
