//! Table 9: tagged target caches — 9 vs 16 pattern-history bits.
//!
//! "For tagged target caches, the number of branch history bits used is not
//! limited to the size of the target cache because additional history bits
//! can be stored in the tag fields. ... For caches with a high degree of
//! set-associativity, using more history bits results in a significant
//! performance improvement. ... For target caches with a small degree of
//! set-associativity, using more history bits degrades performance"
//! (conflict misses outweigh the better identification).

use crate::jobs::{CellData, CellSet};
use crate::report::{pct, TextTable};
use crate::runner::{exec_reduction_with_base, timing, trace, Scale};
use crate::telemetry::TelemetryCtx;
use sim_workloads::Benchmark;
use target_cache::harness::FrontEndConfig;
use target_cache::{HistorySource, Organization, TaggedIndexScheme, TargetCacheConfig};

/// Associativities studied.
pub const ASSOCS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// History lengths compared.
pub const HISTORY_BITS: [u32; 2] = [9, 16];

/// One row: a benchmark × associativity pair of reductions (9-bit, 16-bit).
#[derive(Clone, Debug)]
pub struct Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Ways per set.
    pub assoc: usize,
    /// Execution-time reduction with 9 and 16 history bits respectively.
    pub reductions: [f64; 2],
}

/// The cell key for one (associativity × history length) slot.
fn key(assoc: usize, bits: u32) -> String {
    format!("a{assoc}.h{bits}")
}

/// The benchmark labels this experiment enumerates cells over.
pub fn cell_labels() -> Vec<&'static str> {
    Benchmark::FOCUS.iter().map(|b| b.name()).collect()
}

/// Computes one benchmark's cell: execution-time reductions for every
/// (associativity × history length) combination, keyed `a<assoc>.h<bits>`.
pub fn cell(ctx: &TelemetryCtx, label: &str, scale: Scale) -> CellData {
    let benchmark = crate::jobs::benchmark(label);
    let t = trace(ctx, benchmark, scale);
    let base = timing(ctx, &t, FrontEndConfig::isca97_baseline());
    let mut d = CellData::new();
    for &assoc in &ASSOCS {
        for &bits in &HISTORY_BITS {
            let config = TargetCacheConfig::new(
                Organization::Tagged {
                    entries: 256,
                    assoc,
                    scheme: TaggedIndexScheme::HistoryXor,
                },
                HistorySource::Pattern { bits },
            );
            d.set(
                key(assoc, bits),
                exec_reduction_with_base(ctx, &t, &base, config),
            );
        }
    }
    d
}

/// Runs the experiment: 256-entry History-Xor tagged caches.
pub fn run(scale: Scale) -> Vec<Row> {
    rows_from_cells(&CellSet::compute(&cell_labels(), |l| {
        cell(&TelemetryCtx::off(), l, scale)
    }))
}

/// Reconstructs rows from a fully-successful cell set.
pub fn rows_from_cells(cells: &CellSet) -> Vec<Row> {
    let mut rows = Vec::new();
    for &benchmark in &Benchmark::FOCUS {
        let d = cells
            .data(benchmark.name())
            .unwrap_or_else(|| panic!("table9 cell for {benchmark} missing or failed"));
        for &assoc in &ASSOCS {
            rows.push(Row {
                benchmark,
                assoc,
                reductions: [
                    d.req(&key(assoc, HISTORY_BITS[0])),
                    d.req(&key(assoc, HISTORY_BITS[1])),
                ],
            });
        }
    }
    rows
}

/// Converts rows back to cells.
pub fn cells_from_rows(rows: &[Row]) -> CellSet {
    let mut set = CellSet::new();
    for &benchmark in &Benchmark::FOCUS {
        let mut d = CellData::new();
        for r in rows.iter().filter(|r| r.benchmark == benchmark) {
            for (&bits, &x) in HISTORY_BITS.iter().zip(&r.reductions) {
                d.set(key(r.assoc, bits), x);
            }
        }
        set.insert(benchmark.name(), Ok(d));
    }
    set
}

/// Renders the rows as the paper's Table 9.
pub fn render(rows: &[Row]) -> String {
    render_cells(&cells_from_rows(rows))
}

/// Renders a (possibly partial) cell set as the paper's Table 9.
pub fn render_cells(cells: &CellSet) -> String {
    let mut out = String::from(
        "Table 9: tagged target cache, 9 vs 16 pattern-history bits\n\
         256 entries, History-Xor (execution-time reduction vs BTB baseline)\n",
    );
    for &benchmark in &Benchmark::FOCUS {
        let mut table = TextTable::new(vec!["set-assoc".into(), "9 bits".into(), "16 bits".into()]);
        for &assoc in &ASSOCS {
            table.row(vec![
                assoc.to_string(),
                cells.fmt(benchmark.name(), &key(assoc, HISTORY_BITS[0]), pct),
                cells.fmt(benchmark.name(), &key(assoc, HISTORY_BITS[1]), pct),
            ]);
        }
        out.push_str(&format!("\n[{}]\n{}", benchmark, table.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_history_gains_more_from_associativity_than_short() {
        // The paper's core observation, in relative form: going from
        // direct-mapped to highly-associative helps the 16-bit cache more
        // than the 9-bit cache (long histories need associativity to
        // contain the conflict misses they create).
        let rows = run(Scale::Quick);
        for &bench in &Benchmark::FOCUS {
            let get = |assoc: usize| {
                rows.iter()
                    .find(|r| r.benchmark == bench && r.assoc == assoc)
                    .unwrap()
            };
            let gain9 = get(32).reductions[0] - get(1).reductions[0];
            let gain16 = get(32).reductions[1] - get(1).reductions[1];
            assert!(
                gain16 >= gain9 - 0.01,
                "{bench}: assoc gain with 16 bits ({gain16}) should be at least the 9-bit gain ({gain9})"
            );
        }
    }
}
