//! Two-level adaptive conditional-direction predictors (Yeh & Patt).
//!
//! The paper's machine uses a two-level predictor for conditional-branch
//! directions, and the target cache borrows its *global pattern history
//! register*: "No extra hardware is required to maintain the branch history
//! for the target cache if the branch prediction mechanism already contains
//! this information."

use crate::counter::SaturatingCounter;
use crate::history::PatternHistory;
use sim_isa::Addr;
use std::fmt;

/// First-level history / second-level table organization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TwoLevelScheme {
    /// Global history, single global pattern table indexed by history alone.
    GAg,
    /// Global history, per-address pattern tables: the low `addr_bits` of
    /// the branch address select a table, history selects the entry.
    GAs {
        /// Number of branch-address bits concatenated into the index.
        addr_bits: u32,
    },
    /// Global history XORed with the branch address (McFarling).
    Gshare,
    /// Per-address history, single global pattern table.
    PAg {
        /// Number of per-address history registers (power of two).
        history_regs: usize,
    },
    /// Per-address history, per-address-set pattern tables: the low
    /// `addr_bits` of the branch address select a table, the per-address
    /// history selects the entry within.
    PAs {
        /// Number of per-address history registers (power of two).
        history_regs: usize,
        /// Number of branch-address bits selecting the pattern table.
        addr_bits: u32,
    },
}

/// Configuration of a [`TwoLevelPredictor`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TwoLevelConfig {
    /// History register length in bits.
    pub history_bits: u32,
    /// Table organization.
    pub scheme: TwoLevelScheme,
    /// Width of the pattern-history-table counters (2 is standard).
    pub counter_bits: u8,
}

impl TwoLevelConfig {
    /// A gshare predictor with the given history length — the configuration
    /// used for the paper's machine model in this reproduction.
    pub fn gshare(history_bits: u32) -> Self {
        TwoLevelConfig {
            history_bits,
            scheme: TwoLevelScheme::Gshare,
            counter_bits: 2,
        }
    }

    /// A GAg predictor with the given history length.
    pub fn gag(history_bits: u32) -> Self {
        TwoLevelConfig {
            history_bits,
            scheme: TwoLevelScheme::GAg,
            counter_bits: 2,
        }
    }

    /// Number of pattern-history-table entries implied by the scheme.
    pub fn table_entries(&self) -> usize {
        let index_bits = match self.scheme {
            TwoLevelScheme::GAg | TwoLevelScheme::Gshare | TwoLevelScheme::PAg { .. } => {
                self.history_bits
            }
            TwoLevelScheme::GAs { addr_bits } | TwoLevelScheme::PAs { addr_bits, .. } => {
                self.history_bits + addr_bits
            }
        };
        1usize << index_bits
    }

    fn validate(&self) {
        assert!(
            (1..=30).contains(&self.history_bits),
            "history length must be 1..=30 bits (table must fit in memory)"
        );
        if let TwoLevelScheme::GAs { addr_bits } | TwoLevelScheme::PAs { addr_bits, .. } =
            self.scheme
        {
            assert!(
                self.history_bits + addr_bits <= 30,
                "GAs/PAs index (history + address bits) must be at most 30 bits"
            );
        }
        if let TwoLevelScheme::PAg { history_regs } | TwoLevelScheme::PAs { history_regs, .. } =
            self.scheme
        {
            assert!(
                history_regs.is_power_of_two(),
                "per-address history register count must be a power of two"
            );
        }
    }
}

/// A two-level adaptive branch-direction predictor.
///
/// # Example
///
/// ```
/// use branch_predictors::{TwoLevelConfig, TwoLevelPredictor};
/// use sim_isa::Addr;
///
/// let mut p = TwoLevelPredictor::new(TwoLevelConfig::gshare(8));
/// let pc = Addr::new(0x400);
/// // Train an always-taken branch until the history register saturates
/// // and the steady-state pattern-table entry is warm.
/// for _ in 0..12 {
///     let _ = p.predict(pc);
///     p.update(pc, true);
/// }
/// assert!(p.predict(pc));
/// ```
#[derive(Clone)]
pub struct TwoLevelPredictor {
    config: TwoLevelConfig,
    global_history: PatternHistory,
    per_address_history: Vec<PatternHistory>,
    table: Vec<SaturatingCounter>,
}

impl TwoLevelPredictor {
    /// Creates a predictor with all counters in the weakly-not-taken state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (history length out of range,
    /// non-power-of-two PAg register count).
    pub fn new(config: TwoLevelConfig) -> Self {
        config.validate();
        let per_address_history = match config.scheme {
            TwoLevelScheme::PAg { history_regs } | TwoLevelScheme::PAs { history_regs, .. } => {
                vec![PatternHistory::new(config.history_bits); history_regs]
            }
            _ => Vec::new(),
        };
        TwoLevelPredictor {
            config,
            global_history: PatternHistory::new(config.history_bits),
            per_address_history,
            table: vec![SaturatingCounter::new(config.counter_bits); config.table_entries()],
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> TwoLevelConfig {
        self.config
    }

    /// The current global pattern history value (what the target cache
    /// borrows).
    pub fn global_history(&self) -> u64 {
        self.global_history.value()
    }

    fn index(&self, pc: Addr) -> usize {
        let h = match self.config.scheme {
            TwoLevelScheme::PAg { history_regs } | TwoLevelScheme::PAs { history_regs, .. } => {
                let reg = (pc.word_index() as usize) & (history_regs - 1);
                self.per_address_history[reg].value()
            }
            _ => self.global_history.value(),
        };
        let idx = match self.config.scheme {
            TwoLevelScheme::GAg | TwoLevelScheme::PAg { .. } => h,
            TwoLevelScheme::Gshare => {
                h ^ (pc.word_index() & ((1u64 << self.config.history_bits) - 1))
            }
            TwoLevelScheme::GAs { addr_bits } | TwoLevelScheme::PAs { addr_bits, .. } => {
                let addr = pc.word_index() & ((1u64 << addr_bits) - 1);
                (addr << self.config.history_bits) | h
            }
        };
        (idx as usize) & (self.table.len() - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: Addr) -> bool {
        self.table[self.index(pc)].is_high()
    }

    /// Trains the predictor with the resolved direction and shifts the
    /// history register(s).
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
        self.global_history.push(taken);
        if let TwoLevelScheme::PAg { history_regs } | TwoLevelScheme::PAs { history_regs, .. } =
            self.config.scheme
        {
            let reg = (pc.word_index() as usize) & (history_regs - 1);
            self.per_address_history[reg].push(taken);
        }
    }
}

impl fmt::Debug for TwoLevelPredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TwoLevelPredictor({:?}, {} history bits, {} PHT entries)",
            self.config.scheme,
            self.config.history_bits,
            self.table.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut TwoLevelPredictor, pc: Addr, pattern: &[bool], reps: usize) {
        for _ in 0..reps {
            for &taken in pattern {
                p.update(pc, taken);
            }
        }
    }

    #[test]
    fn learns_always_taken() {
        for config in [
            TwoLevelConfig::gag(6),
            TwoLevelConfig::gshare(6),
            TwoLevelConfig {
                history_bits: 4,
                scheme: TwoLevelScheme::GAs { addr_bits: 2 },
                counter_bits: 2,
            },
            TwoLevelConfig {
                history_bits: 4,
                scheme: TwoLevelScheme::PAg { history_regs: 16 },
                counter_bits: 2,
            },
        ] {
            let mut p = TwoLevelPredictor::new(config);
            let pc = Addr::new(0x100);
            train(&mut p, pc, &[true], 32);
            assert!(p.predict(pc), "{config:?} failed to learn always-taken");
        }
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // T,N,T,N... is 50% for a bimodal predictor but perfectly
        // predictable with 1+ bits of history.
        let mut p = TwoLevelPredictor::new(TwoLevelConfig::gshare(4));
        let pc = Addr::new(0x100);
        let pattern = [true, false];
        train(&mut p, pc, &pattern, 64);
        // Measure accuracy over two more periods.
        let mut correct = 0;
        for _ in 0..8 {
            for &taken in &pattern {
                if p.predict(pc) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
        }
        assert_eq!(
            correct, 16,
            "gshare must perfectly predict a period-2 pattern"
        );
    }

    #[test]
    fn learns_loop_exit_pattern() {
        // Period-4 loop: taken 3x then not-taken. Needs >= 2 history bits...
        // use 4 to be safe against aliasing.
        let mut p = TwoLevelPredictor::new(TwoLevelConfig::gag(4));
        let pc = Addr::new(0x200);
        let pattern = [true, true, true, false];
        train(&mut p, pc, &pattern, 64);
        let mut correct = 0;
        for _ in 0..4 {
            for &taken in &pattern {
                if p.predict(pc) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
        }
        assert_eq!(correct, 16, "GAg(4) must perfectly predict a period-4 loop");
    }

    #[test]
    fn history_register_tracks_updates() {
        let mut p = TwoLevelPredictor::new(TwoLevelConfig::gshare(8));
        p.update(Addr::new(0), true);
        p.update(Addr::new(0), true);
        p.update(Addr::new(0), false);
        assert_eq!(p.global_history(), 0b110);
    }

    #[test]
    fn gshare_separates_entries_that_gag_aliases() {
        // Train branch `a` taken while the global history is 0, then steer
        // the history back to 0 and consult a *different* branch `b`:
        // GAg's index ignores the address, so `b` inherits `a`'s training;
        // gshare XORs in the address, so `b` hits an untouched (cold,
        // weakly-not-taken) counter.
        let mut gag = TwoLevelPredictor::new(TwoLevelConfig::gag(4));
        let mut gshare = TwoLevelPredictor::new(TwoLevelConfig::gshare(4));
        let a = Addr::from_word_index(0); // gshare index 0 when history is 0
        let b = Addr::from_word_index(5); // gshare index 5 when history is 0
        for p in [&mut gag, &mut gshare] {
            p.update(a, true); // trains entry for history 0; history -> 1
            for _ in 0..4 {
                p.update(a, false); // flush history back to 0
            }
            assert_eq!(p.global_history(), 0);
        }
        assert!(gag.predict(b), "GAg aliases b onto a's trained entry");
        assert!(!gshare.predict(b), "gshare keeps b's entry cold");
    }

    #[test]
    fn gas_table_sizing() {
        let c = TwoLevelConfig {
            history_bits: 7,
            scheme: TwoLevelScheme::GAs { addr_bits: 2 },
            counter_bits: 2,
        };
        assert_eq!(c.table_entries(), 512);
        let c = TwoLevelConfig::gag(9);
        assert_eq!(c.table_entries(), 512);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn rejects_oversized_history() {
        TwoLevelPredictor::new(TwoLevelConfig::gag(31));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_pag() {
        TwoLevelPredictor::new(TwoLevelConfig {
            history_bits: 4,
            scheme: TwoLevelScheme::PAg { history_regs: 3 },
            counter_bits: 2,
        });
    }

    #[test]
    fn pas_learns_two_branches_with_identical_per_address_patterns() {
        // Two branches, both strictly alternating but out of phase:
        // per-address history gives each a clean view; PAs's address bits
        // keep their pattern tables apart.
        let mut p = TwoLevelPredictor::new(TwoLevelConfig {
            history_bits: 4,
            scheme: TwoLevelScheme::PAs {
                history_regs: 16,
                addr_bits: 2,
            },
            counter_bits: 2,
        });
        let a = Addr::from_word_index(1);
        let b = Addr::from_word_index(2);
        for i in 0..64u32 {
            p.update(a, i % 2 == 0);
            p.update(b, i % 2 == 1);
        }
        let mut correct = 0;
        for i in 64..96u32 {
            correct += (p.predict(a) == (i % 2 == 0)) as u32;
            p.update(a, i % 2 == 0);
            correct += (p.predict(b) == (i % 2 == 1)) as u32;
            p.update(b, i % 2 == 1);
        }
        assert_eq!(correct, 64, "PAs must perfectly track both phases");
    }

    #[test]
    fn pas_table_sizing_includes_address_bits() {
        let c = TwoLevelConfig {
            history_bits: 6,
            scheme: TwoLevelScheme::PAs {
                history_regs: 64,
                addr_bits: 3,
            },
            counter_bits: 2,
        };
        assert_eq!(c.table_entries(), 512);
    }

    #[test]
    fn pag_keeps_separate_histories() {
        let mut p = TwoLevelPredictor::new(TwoLevelConfig {
            history_bits: 4,
            scheme: TwoLevelScheme::PAg { history_regs: 16 },
            counter_bits: 2,
        });
        // Branch A alternates, branch B is always taken; with per-address
        // history both should become predictable.
        let a = Addr::from_word_index(1);
        let b = Addr::from_word_index(2);
        for _ in 0..64 {
            let a_taken = true;
            p.update(a, a_taken);
            p.update(b, true);
            p.update(a, false);
        }
        assert!(p.predict(b));
    }
}
