#![warn(missing_docs)]

//! Baseline branch-prediction hardware for the indirect-jump-prediction
//! workspace.
//!
//! This crate implements every prediction structure the paper's machine
//! model uses *besides* the target cache itself (which lives in the
//! `target-cache` crate):
//!
//! * [`SaturatingCounter`] — n-bit saturating counters,
//! * [`PatternHistory`] — the global branch (pattern) history register of
//!   two-level predictors,
//! * [`PathHistory`] / [`PerAddressPathHistory`] — the path-history
//!   registers of Section 3.1 of the paper, with the Control / Branch /
//!   Call-ret / Ind-jmp recording filters,
//! * [`Btb`] — a set-associative branch target buffer with the *default*
//!   and *2-bit* (Calder & Grunwald) target-update strategies,
//! * [`TwoLevelPredictor`] — GAg / GAs / gshare / PAg conditional-direction
//!   predictors,
//! * [`ReturnAddressStack`] — the return stack that excuses returns from
//!   the target cache.
//!
//! # Example: a BTB mispredicting a polymorphic indirect jump
//!
//! ```
//! use branch_predictors::{Btb, BtbConfig, UpdatePolicy};
//! use sim_isa::{Addr, BranchClass};
//!
//! let mut btb = Btb::new(BtbConfig::new(256, 4, UpdatePolicy::Always));
//! let jump = Addr::new(0x1000);
//!
//! btb.update(jump, BranchClass::IndirectJump, Addr::new(0x2000), Addr::new(0x1004));
//! // The BTB predicts the *last* target — wrong as soon as the target moves.
//! assert_eq!(btb.lookup(jump).unwrap().target, Addr::new(0x2000));
//! btb.update(jump, BranchClass::IndirectJump, Addr::new(0x3000), Addr::new(0x1004));
//! assert_eq!(btb.lookup(jump).unwrap().target, Addr::new(0x3000));
//! ```

pub mod btb;
pub mod counter;
pub mod direction;
pub mod history;
pub mod ras;
pub mod stats;
pub mod tournament;
pub mod twolevel;

pub use btb::{Btb, BtbConfig, BtbHit, BtbStats, UpdatePolicy};
pub use counter::SaturatingCounter;
pub use direction::{DirectionConfig, DirectionPredictor, DirectionStats};
pub use history::{
    PathFilter, PathHistory, PathHistoryConfig, PatternHistory, PerAddressPathHistory,
};
pub use ras::{RasStats, ReturnAddressStack};
pub use stats::{BranchClassStats, ClassCounters};
pub use tournament::{TournamentConfig, TournamentPredictor};
pub use twolevel::{TwoLevelConfig, TwoLevelPredictor, TwoLevelScheme};
