//! Branch history registers: pattern history and path history.
//!
//! Section 3.1 of the paper considers two kinds of history for indexing the
//! target cache:
//!
//! * **Pattern history** — "a recording of the last *n* conditional
//!   branches" (their taken/not-taken directions), exactly the global
//!   history register of a two-level predictor. Implemented by
//!   [`PatternHistory`].
//! * **Path history** — "the target addresses of branches that lead to the
//!   current branch": a shift register into which a few bits of each
//!   relevant target address are shifted. The paper studies a *global*
//!   register shared by all indirect jumps (with four recording filters:
//!   Control, Branch, Call/ret, Ind jmp) and a *per-address* register that
//!   records the past targets of each static indirect jump individually.
//!   Implemented by [`PathHistory`] and [`PerAddressPathHistory`].

use sim_isa::{Addr, BranchClass};
use std::collections::HashMap;
use std::fmt;

/// Maximum supported history length, in bits.
pub const MAX_HISTORY_BITS: u32 = 64;

/// A global branch (pattern) history register: the directions of the last
/// `bits` conditional branches, newest in the least-significant bit.
///
/// # Example
///
/// ```
/// use branch_predictors::PatternHistory;
///
/// let mut h = PatternHistory::new(4);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// assert_eq!(h.value(), 0b101);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternHistory {
    bits: u32,
    value: u64,
}

impl PatternHistory {
    /// Creates an all-zero history register of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds [`MAX_HISTORY_BITS`].
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=MAX_HISTORY_BITS).contains(&bits),
            "history width must be 1..={MAX_HISTORY_BITS} bits"
        );
        PatternHistory { bits, value: 0 }
    }

    /// The register width in bits.
    #[inline]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The current history value (only the low `bits` bits are ever set).
    #[inline]
    pub fn value(self) -> u64 {
        self.value
    }

    /// The low `n` bits of the history — lets a consumer configured for a
    /// shorter history share a wider physical register.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or wider than the register.
    #[inline]
    pub fn low_bits(self, n: u32) -> u64 {
        assert!(
            n >= 1 && n <= self.bits,
            "requested {n} bits from a {}-bit register",
            self.bits
        );
        if n == 64 {
            self.value
        } else {
            self.value & ((1u64 << n) - 1)
        }
    }

    /// Shifts in the direction of a newly-resolved conditional branch.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.value = (self.value << 1) | taken as u64;
        if self.bits < 64 {
            self.value &= (1u64 << self.bits) - 1;
        }
    }

    /// Clears the register.
    pub fn clear(&mut self) {
        self.value = 0;
    }
}

impl fmt::Debug for PatternHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PatternHistory({:0width$b})",
            self.value,
            width = self.bits as usize
        )
    }
}

/// Which control instructions a global path-history register records — the
/// four variations of Section 3.1 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PathFilter {
    /// "The Control scheme records the target address of all instructions
    /// that can redirect the instruction stream."
    Control,
    /// "The Branch scheme only records the targets of conditional branches."
    ConditionalOnly,
    /// "The Call/ret scheme records only the targets of procedure calls and
    /// returns."
    CallReturn,
    /// "The Ind jmp scheme records only the targets of indirect jumps."
    IndirectJump,
}

impl PathFilter {
    /// All filters, in the order the paper's tables list them.
    pub const ALL: [PathFilter; 4] = [
        PathFilter::ConditionalOnly,
        PathFilter::Control,
        PathFilter::IndirectJump,
        PathFilter::CallReturn,
    ];

    /// Whether a branch of the given class is recorded under this filter.
    #[inline]
    pub fn accepts(self, class: BranchClass) -> bool {
        match self {
            PathFilter::Control => true,
            PathFilter::ConditionalOnly => class.is_conditional(),
            PathFilter::CallReturn => class.is_call() || class.is_return(),
            PathFilter::IndirectJump => class.uses_target_cache(),
        }
    }

    /// The label the paper's tables use for this filter.
    pub const fn label(self) -> &'static str {
        match self {
            PathFilter::Control => "control",
            PathFilter::ConditionalOnly => "branch",
            PathFilter::CallReturn => "call/ret",
            PathFilter::IndirectJump => "ind jmp",
        }
    }
}

impl fmt::Display for PathFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of a path-history register.
///
/// `total_bits` is the register length; `bits_per_target` is how many bits
/// of each recorded target are shifted in ("increasing the number of bits
/// recorded per address results in fewer branch targets being recorded" —
/// the trade-off of Table 6); `target_bit_lo` selects *which* bits of the
/// word-aligned target are recorded (the address-bit-selection study of
/// Table 5 — 0 means the lowest useful bits, "the least significant bits
/// from each address are ignored because instructions are aligned on word
/// boundaries" is already handled by [`Addr::bits`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PathHistoryConfig {
    /// Register length in bits (the paper mostly uses 9).
    pub total_bits: u32,
    /// Bits of each target shifted in per recorded branch (1..=total_bits).
    pub bits_per_target: u32,
    /// Which slice of the target's word index to record (0 = lowest bits).
    pub target_bit_lo: u32,
    /// Which branches are recorded.
    pub filter: PathFilter,
}

impl PathHistoryConfig {
    /// A 9-bit register recording 1 low bit per target — the configuration
    /// Section 4.3.2 of the paper found best for most path schemes.
    pub fn isca97_default(filter: PathFilter) -> Self {
        PathHistoryConfig {
            total_bits: 9,
            bits_per_target: 1,
            target_bit_lo: 0,
            filter,
        }
    }

    fn validate(&self) {
        assert!(
            (1..=MAX_HISTORY_BITS).contains(&self.total_bits),
            "path history width must be 1..={MAX_HISTORY_BITS} bits"
        );
        assert!(
            self.bits_per_target >= 1 && self.bits_per_target <= self.total_bits,
            "bits per target must be 1..=total_bits"
        );
        assert!(
            self.target_bit_lo < 32,
            "target bit offset must be below 32"
        );
    }
}

/// A global path-history register: a shift register of target-address
/// fragments of the branches that led here.
///
/// # Example
///
/// ```
/// use branch_predictors::{PathFilter, PathHistory, PathHistoryConfig};
/// use sim_isa::{Addr, BranchClass};
///
/// let mut h = PathHistory::new(PathHistoryConfig {
///     total_bits: 6,
///     bits_per_target: 2,
///     target_bit_lo: 0,
///     filter: PathFilter::IndirectJump,
/// });
/// // Conditional branches are ignored under the Ind jmp filter.
/// h.record(BranchClass::CondDirect, Addr::from_word_index(0b11));
/// assert_eq!(h.value(), 0);
/// h.record(BranchClass::IndirectJump, Addr::from_word_index(0b01));
/// h.record(BranchClass::IndirectJump, Addr::from_word_index(0b10));
/// assert_eq!(h.value(), 0b0110);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PathHistory {
    config: PathHistoryConfig,
    value: u64,
}

impl PathHistory {
    /// Creates an all-zero path history register.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero widths, bits-per-target
    /// wider than the register, bit offset ≥ 32).
    pub fn new(config: PathHistoryConfig) -> Self {
        config.validate();
        PathHistory { config, value: 0 }
    }

    /// The register's configuration.
    #[inline]
    pub fn config(&self) -> PathHistoryConfig {
        self.config
    }

    /// The current history value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Records a resolved control instruction: if the filter accepts its
    /// class, shifts `bits_per_target` bits of `next_pc` (the address the
    /// branch actually led to) into the register.
    #[inline]
    pub fn record(&mut self, class: BranchClass, next_pc: Addr) {
        if self.config.filter.accepts(class) {
            self.force_record(next_pc);
        }
    }

    /// Shifts in a target unconditionally (used by the per-address scheme,
    /// which records the owning jump's own targets).
    #[inline]
    pub fn force_record(&mut self, next_pc: Addr) {
        let frag = next_pc.bits(self.config.target_bit_lo, self.config.bits_per_target);
        self.value = (self.value << self.config.bits_per_target) | frag;
        if self.config.total_bits < 64 {
            self.value &= (1u64 << self.config.total_bits) - 1;
        }
    }

    /// Clears the register.
    pub fn clear(&mut self) {
        self.value = 0;
    }
}

/// Per-address path history: "one path history register is associated with
/// each distinct static indirect branch. Each n-bit path history register
/// records the last k target addresses for the associated indirect jump."
///
/// The table is unbounded (one register per static jump site); real hardware
/// would bound it, but static indirect-jump counts are small (hundreds even
/// in gcc) so this models an adequately-sized table.
#[derive(Clone, Debug)]
pub struct PerAddressPathHistory {
    config: PathHistoryConfig,
    registers: HashMap<Addr, PathHistory>,
}

impl PerAddressPathHistory {
    /// Creates an empty per-address history table.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PathHistoryConfig) -> Self {
        config.validate();
        PerAddressPathHistory {
            config,
            registers: HashMap::new(),
        }
    }

    /// The configuration shared by all registers.
    #[inline]
    pub fn config(&self) -> PathHistoryConfig {
        self.config
    }

    /// The history value for the static jump at `pc` (zero if never seen).
    #[inline]
    pub fn value(&self, pc: Addr) -> u64 {
        self.registers.get(&pc).map_or(0, |h| h.value())
    }

    /// Records a resolved target of the static jump at `pc`.
    pub fn record(&mut self, pc: Addr, target: Addr) {
        self.registers
            .entry(pc)
            .or_insert_with(|| PathHistory::new(self.config))
            .force_record(target);
    }

    /// Number of distinct jump sites tracked so far.
    pub fn tracked_sites(&self) -> usize {
        self.registers.len()
    }

    /// Clears all registers.
    pub fn clear(&mut self) {
        self.registers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_history_shifts_newest_into_lsb() {
        let mut h = PatternHistory::new(4);
        h.push(true);
        assert_eq!(h.value(), 0b1);
        h.push(true);
        h.push(false);
        assert_eq!(h.value(), 0b110);
    }

    #[test]
    fn pattern_history_wraps_at_width() {
        let mut h = PatternHistory::new(3);
        for _ in 0..10 {
            h.push(true);
        }
        assert_eq!(h.value(), 0b111);
        h.push(false);
        assert_eq!(h.value(), 0b110);
    }

    #[test]
    fn pattern_history_low_bits() {
        let mut h = PatternHistory::new(8);
        for taken in [true, false, true, true] {
            h.push(taken);
        }
        assert_eq!(h.value(), 0b1011);
        assert_eq!(h.low_bits(2), 0b11);
        assert_eq!(h.low_bits(3), 0b011);
        assert_eq!(h.low_bits(8), 0b1011);
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn pattern_history_low_bits_rejects_wider_request() {
        PatternHistory::new(4).low_bits(5);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn pattern_history_rejects_zero_width() {
        PatternHistory::new(0);
    }

    #[test]
    fn pattern_history_64_bit_register() {
        let mut h = PatternHistory::new(64);
        for _ in 0..100 {
            h.push(true);
        }
        assert_eq!(h.value(), u64::MAX);
        assert_eq!(h.low_bits(64), u64::MAX);
    }

    #[test]
    fn filters_accept_documented_classes() {
        use BranchClass::*;
        assert!(PathFilter::Control.accepts(CondDirect));
        assert!(PathFilter::Control.accepts(UncondDirect));
        assert!(PathFilter::Control.accepts(Return));
        assert!(PathFilter::ConditionalOnly.accepts(CondDirect));
        assert!(!PathFilter::ConditionalOnly.accepts(UncondDirect));
        assert!(PathFilter::CallReturn.accepts(Call));
        assert!(PathFilter::CallReturn.accepts(IndirectCall));
        assert!(PathFilter::CallReturn.accepts(Return));
        assert!(!PathFilter::CallReturn.accepts(CondDirect));
        assert!(PathFilter::IndirectJump.accepts(IndirectJump));
        assert!(PathFilter::IndirectJump.accepts(IndirectCall));
        assert!(!PathFilter::IndirectJump.accepts(Return));
        assert!(!PathFilter::IndirectJump.accepts(CondDirect));
    }

    #[test]
    fn path_history_records_target_fragments() {
        let mut h = PathHistory::new(PathHistoryConfig {
            total_bits: 9,
            bits_per_target: 3,
            target_bit_lo: 0,
            filter: PathFilter::Control,
        });
        h.record(BranchClass::UncondDirect, Addr::from_word_index(0b101));
        h.record(BranchClass::CondDirect, Addr::from_word_index(0b010));
        h.record(BranchClass::Return, Addr::from_word_index(0b111));
        assert_eq!(h.value(), 0b101_010_111);
    }

    #[test]
    fn path_history_bit_offset_selects_higher_bits() {
        let mut lo = PathHistory::new(PathHistoryConfig {
            total_bits: 4,
            bits_per_target: 2,
            target_bit_lo: 0,
            filter: PathFilter::Control,
        });
        let mut hi = PathHistory::new(PathHistoryConfig {
            total_bits: 4,
            bits_per_target: 2,
            target_bit_lo: 4,
            filter: PathFilter::Control,
        });
        let t = Addr::from_word_index(0b11_0010);
        lo.record(BranchClass::UncondDirect, t);
        hi.record(BranchClass::UncondDirect, t);
        assert_eq!(lo.value(), 0b10);
        assert_eq!(hi.value(), 0b11);
    }

    #[test]
    fn path_history_filter_skips_unrecorded_classes() {
        let mut h = PathHistory::new(PathHistoryConfig::isca97_default(PathFilter::CallReturn));
        h.record(BranchClass::CondDirect, Addr::from_word_index(1));
        h.record(BranchClass::IndirectJump, Addr::from_word_index(1));
        assert_eq!(h.value(), 0);
        h.record(BranchClass::Call, Addr::from_word_index(1));
        assert_eq!(h.value(), 1);
    }

    #[test]
    fn path_history_wraps_at_total_bits() {
        let mut h = PathHistory::new(PathHistoryConfig {
            total_bits: 4,
            bits_per_target: 2,
            target_bit_lo: 0,
            filter: PathFilter::Control,
        });
        for frag in [0b01u64, 0b10, 0b11] {
            h.record(BranchClass::UncondDirect, Addr::from_word_index(frag));
        }
        // Oldest fragment (01) has been shifted out.
        assert_eq!(h.value(), 0b1011);
    }

    #[test]
    #[should_panic(expected = "bits per target")]
    fn path_history_rejects_fragment_wider_than_register() {
        PathHistory::new(PathHistoryConfig {
            total_bits: 4,
            bits_per_target: 5,
            target_bit_lo: 0,
            filter: PathFilter::Control,
        });
    }

    #[test]
    fn per_address_registers_are_independent() {
        let mut h =
            PerAddressPathHistory::new(PathHistoryConfig::isca97_default(PathFilter::IndirectJump));
        let a = Addr::new(0x100);
        let b = Addr::new(0x200);
        h.record(a, Addr::from_word_index(1));
        h.record(a, Addr::from_word_index(0));
        h.record(b, Addr::from_word_index(1));
        assert_eq!(h.value(a), 0b10);
        assert_eq!(h.value(b), 0b1);
        assert_eq!(h.value(Addr::new(0x300)), 0);
        assert_eq!(h.tracked_sites(), 2);
    }

    #[test]
    fn per_address_clear_resets_everything() {
        let mut h =
            PerAddressPathHistory::new(PathHistoryConfig::isca97_default(PathFilter::IndirectJump));
        h.record(Addr::new(0x100), Addr::from_word_index(1));
        h.clear();
        assert_eq!(h.tracked_sites(), 0);
        assert_eq!(h.value(Addr::new(0x100)), 0);
    }

    #[test]
    fn filter_labels_match_paper() {
        assert_eq!(PathFilter::Control.label(), "control");
        assert_eq!(PathFilter::ConditionalOnly.label(), "branch");
        assert_eq!(PathFilter::CallReturn.label(), "call/ret");
        assert_eq!(PathFilter::IndirectJump.label(), "ind jmp");
    }
}
