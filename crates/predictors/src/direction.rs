//! A unified front over the conditional-direction predictor families, so
//! machine configurations can select any of them.

use crate::tournament::{TournamentConfig, TournamentPredictor};
use crate::twolevel::{TwoLevelConfig, TwoLevelPredictor};
use sim_isa::Addr;
use std::cell::Cell;

/// Which direction predictor the front end uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DirectionConfig {
    /// A two-level adaptive predictor (GAg / GAs / gshare / PAg / PAs).
    TwoLevel(TwoLevelConfig),
    /// McFarling's combining predictor.
    Tournament(TournamentConfig),
}

impl DirectionConfig {
    /// The reproduction's default: gshare with the given history length.
    pub fn gshare(history_bits: u32) -> Self {
        DirectionConfig::TwoLevel(TwoLevelConfig::gshare(history_bits))
    }
}

/// Lookup/update counters for a direction predictor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirectionStats {
    /// Directions predicted.
    pub predictions: u64,
    /// Training updates applied.
    pub updates: u64,
}

#[derive(Clone, Debug)]
enum Engine {
    TwoLevel(TwoLevelPredictor),
    Tournament(TournamentPredictor),
}

/// A constructed direction predictor.
#[derive(Clone, Debug)]
pub struct DirectionPredictor {
    engine: Engine,
    /// `Cell` because `predict` is a logically-read-only probe.
    predictions: Cell<u64>,
    updates: u64,
}

impl DirectionPredictor {
    /// Builds the configured predictor, cold.
    ///
    /// # Panics
    ///
    /// Panics if the underlying configuration is invalid.
    pub fn new(config: DirectionConfig) -> Self {
        let engine = match config {
            DirectionConfig::TwoLevel(c) => Engine::TwoLevel(TwoLevelPredictor::new(c)),
            DirectionConfig::Tournament(c) => Engine::Tournament(TournamentPredictor::new(c)),
        };
        DirectionPredictor {
            engine,
            predictions: Cell::new(0),
            updates: 0,
        }
    }

    /// Predicts the direction of the conditional branch at `pc`.
    #[inline]
    pub fn predict(&self, pc: Addr) -> bool {
        self.predictions.set(self.predictions.get() + 1);
        match &self.engine {
            Engine::TwoLevel(p) => p.predict(pc),
            Engine::Tournament(p) => p.predict(pc),
        }
    }

    /// Trains the predictor and shifts its history register(s).
    #[inline]
    pub fn update(&mut self, pc: Addr, taken: bool) {
        self.updates += 1;
        match &mut self.engine {
            Engine::TwoLevel(p) => p.update(pc, taken),
            Engine::Tournament(p) => p.update(pc, taken),
        }
    }

    /// The global pattern history value (what the target cache borrows).
    #[inline]
    pub fn global_history(&self) -> u64 {
        match &self.engine {
            Engine::TwoLevel(p) => p.global_history(),
            Engine::Tournament(p) => p.global_history(),
        }
    }

    /// Mechanical prediction/update counters.
    pub fn stats(&self) -> DirectionStats {
        DirectionStats {
            predictions: self.predictions.get(),
            updates: self.updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_learn_a_stable_branch() {
        for config in [
            DirectionConfig::gshare(8),
            DirectionConfig::Tournament(TournamentConfig::mcfarling()),
        ] {
            let mut p = DirectionPredictor::new(config);
            let pc = Addr::new(0x40);
            for _ in 0..16 {
                p.update(pc, true);
            }
            assert!(p.predict(pc), "{config:?}");
        }
    }

    #[test]
    fn history_is_exposed_by_both_variants() {
        for config in [
            DirectionConfig::gshare(8),
            DirectionConfig::Tournament(TournamentConfig::mcfarling()),
        ] {
            let mut p = DirectionPredictor::new(config);
            p.update(Addr::new(0), true);
            assert_eq!(p.global_history() & 1, 1, "{config:?}");
        }
    }

    #[test]
    fn stats_count_predictions_and_updates() {
        let mut p = DirectionPredictor::new(DirectionConfig::gshare(8));
        assert_eq!(p.stats(), DirectionStats::default());
        p.predict(Addr::new(0x40));
        p.predict(Addr::new(0x40));
        p.update(Addr::new(0x40), true);
        let s = p.stats();
        assert_eq!(s.predictions, 2);
        assert_eq!(s.updates, 1);
    }
}
