//! A unified front over the conditional-direction predictor families, so
//! machine configurations can select any of them.

use crate::tournament::{TournamentConfig, TournamentPredictor};
use crate::twolevel::{TwoLevelConfig, TwoLevelPredictor};
use sim_isa::Addr;

/// Which direction predictor the front end uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DirectionConfig {
    /// A two-level adaptive predictor (GAg / GAs / gshare / PAg / PAs).
    TwoLevel(TwoLevelConfig),
    /// McFarling's combining predictor.
    Tournament(TournamentConfig),
}

impl DirectionConfig {
    /// The reproduction's default: gshare with the given history length.
    pub fn gshare(history_bits: u32) -> Self {
        DirectionConfig::TwoLevel(TwoLevelConfig::gshare(history_bits))
    }
}

/// A constructed direction predictor.
#[derive(Clone, Debug)]
pub enum DirectionPredictor {
    /// A two-level adaptive predictor.
    TwoLevel(TwoLevelPredictor),
    /// A tournament predictor.
    Tournament(TournamentPredictor),
}

impl DirectionPredictor {
    /// Builds the configured predictor, cold.
    ///
    /// # Panics
    ///
    /// Panics if the underlying configuration is invalid.
    pub fn new(config: DirectionConfig) -> Self {
        match config {
            DirectionConfig::TwoLevel(c) => DirectionPredictor::TwoLevel(TwoLevelPredictor::new(c)),
            DirectionConfig::Tournament(c) => {
                DirectionPredictor::Tournament(TournamentPredictor::new(c))
            }
        }
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: Addr) -> bool {
        match self {
            DirectionPredictor::TwoLevel(p) => p.predict(pc),
            DirectionPredictor::Tournament(p) => p.predict(pc),
        }
    }

    /// Trains the predictor and shifts its history register(s).
    pub fn update(&mut self, pc: Addr, taken: bool) {
        match self {
            DirectionPredictor::TwoLevel(p) => p.update(pc, taken),
            DirectionPredictor::Tournament(p) => p.update(pc, taken),
        }
    }

    /// The global pattern history value (what the target cache borrows).
    pub fn global_history(&self) -> u64 {
        match self {
            DirectionPredictor::TwoLevel(p) => p.global_history(),
            DirectionPredictor::Tournament(p) => p.global_history(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_learn_a_stable_branch() {
        for config in [
            DirectionConfig::gshare(8),
            DirectionConfig::Tournament(TournamentConfig::mcfarling()),
        ] {
            let mut p = DirectionPredictor::new(config);
            let pc = Addr::new(0x40);
            for _ in 0..16 {
                p.update(pc, true);
            }
            assert!(p.predict(pc), "{config:?}");
        }
    }

    #[test]
    fn history_is_exposed_by_both_variants() {
        for config in [
            DirectionConfig::gshare(8),
            DirectionConfig::Tournament(TournamentConfig::mcfarling()),
        ] {
            let mut p = DirectionPredictor::new(config);
            p.update(Addr::new(0), true);
            assert_eq!(p.global_history() & 1, 1, "{config:?}");
        }
    }
}
