//! McFarling's combining ("tournament") predictor — reference [6] of the
//! paper (*Combining Branch Predictors*, DEC WRL TN-36).
//!
//! Two component predictors — a per-address bimodal table and a gshare
//! two-level predictor — run in parallel; a chooser table of 2-bit
//! counters, indexed by branch address, learns per branch which component
//! to trust. The combination captures both branches with stable bias
//! (bimodal wins, no history warmup) and history-correlated branches
//! (gshare wins).

use crate::counter::SaturatingCounter;
use crate::twolevel::{TwoLevelConfig, TwoLevelPredictor};
use sim_isa::Addr;
use std::fmt;

/// Configuration of a [`TournamentPredictor`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TournamentConfig {
    /// Entries in the bimodal component (power of two).
    pub bimodal_entries: usize,
    /// The history-based component.
    pub gshare: TwoLevelConfig,
    /// Entries in the chooser table (power of two).
    pub chooser_entries: usize,
}

impl TournamentConfig {
    /// McFarling's canonical shape: 4K bimodal, gshare(12), 4K chooser.
    pub fn mcfarling() -> Self {
        TournamentConfig {
            bimodal_entries: 4096,
            gshare: TwoLevelConfig::gshare(12),
            chooser_entries: 4096,
        }
    }

    fn validate(&self) {
        assert!(
            self.bimodal_entries.is_power_of_two() && self.bimodal_entries >= 2,
            "bimodal entries must be a power of two >= 2"
        );
        assert!(
            self.chooser_entries.is_power_of_two() && self.chooser_entries >= 2,
            "chooser entries must be a power of two >= 2"
        );
    }
}

/// A combining predictor: bimodal + gshare + per-address chooser.
///
/// # Example
///
/// ```
/// use branch_predictors::{TournamentConfig, TournamentPredictor};
/// use sim_isa::Addr;
///
/// let mut p = TournamentPredictor::new(TournamentConfig::mcfarling());
/// let pc = Addr::new(0x40);
/// for _ in 0..8 {
///     p.update(pc, true);
/// }
/// assert!(p.predict(pc), "a stable branch is learned immediately by bimodal");
/// ```
#[derive(Clone)]
pub struct TournamentPredictor {
    config: TournamentConfig,
    bimodal: Vec<SaturatingCounter>,
    gshare: TwoLevelPredictor,
    /// High = trust gshare; low = trust bimodal.
    chooser: Vec<SaturatingCounter>,
}

impl TournamentPredictor {
    /// Creates a predictor with both components cold and the chooser
    /// neutral.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: TournamentConfig) -> Self {
        config.validate();
        TournamentPredictor {
            config,
            bimodal: vec![SaturatingCounter::new(2); config.bimodal_entries],
            gshare: TwoLevelPredictor::new(config.gshare),
            chooser: vec![SaturatingCounter::new(2); config.chooser_entries],
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> TournamentConfig {
        self.config
    }

    /// The gshare component's global history (for target-cache sharing).
    pub fn global_history(&self) -> u64 {
        self.gshare.global_history()
    }

    fn bimodal_index(&self, pc: Addr) -> usize {
        (pc.word_index() as usize) & (self.bimodal.len() - 1)
    }

    fn chooser_index(&self, pc: Addr) -> usize {
        (pc.word_index() as usize) & (self.chooser.len() - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: Addr) -> bool {
        if self.chooser[self.chooser_index(pc)].is_high() {
            self.gshare.predict(pc)
        } else {
            self.bimodal[self.bimodal_index(pc)].is_high()
        }
    }

    /// Trains both components; the chooser moves toward whichever
    /// component was right when they disagree.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let bimodal_idx = self.bimodal_index(pc);
        let chooser_idx = self.chooser_index(pc);
        let bimodal_pred = self.bimodal[bimodal_idx].is_high();
        let gshare_pred = self.gshare.predict(pc);
        if bimodal_pred != gshare_pred {
            self.chooser[chooser_idx].train(gshare_pred == taken);
        }
        self.bimodal[bimodal_idx].train(taken);
        self.gshare.update(pc, taken);
    }
}

impl fmt::Debug for TournamentPredictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TournamentPredictor({} bimodal, gshare({}), {} chooser)",
            self.bimodal.len(),
            self.config.gshare.history_bits,
            self.chooser.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_branch_is_learned_immediately() {
        let mut p = TournamentPredictor::new(TournamentConfig::mcfarling());
        let pc = Addr::new(0x100);
        for _ in 0..4 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn alternating_branch_is_learned_via_gshare() {
        let mut p = TournamentPredictor::new(TournamentConfig::mcfarling());
        let pc = Addr::new(0x100);
        for i in 0..256 {
            p.update(pc, i % 2 == 0);
        }
        let mut correct = 0;
        for i in 256..288 {
            correct += (p.predict(pc) == (i % 2 == 0)) as u32;
            p.update(pc, i % 2 == 0);
        }
        assert!(
            correct >= 30,
            "tournament should track the alternation, got {correct}/32"
        );
    }

    #[test]
    fn chooser_prefers_bimodal_for_noisy_but_biased_branches() {
        // A branch taken 7 of 8 times in a pattern too long for the
        // history: bimodal predicts "taken" at ~87%, gshare flails during
        // warmup. After training, the tournament should be at least as
        // good as the best component.
        let mut p = TournamentPredictor::new(TournamentConfig {
            bimodal_entries: 64,
            gshare: TwoLevelConfig::gshare(4),
            chooser_entries: 64,
        });
        let pc = Addr::new(0x100);
        // Noise from many other branches pollutes gshare's tiny table.
        let noise: Vec<Addr> = (0..16).map(|i| Addr::from_word_index(100 + i)).collect();
        let mut correct = 0;
        let mut total = 0;
        for round in 0..200 {
            for (k, &n) in noise.iter().enumerate() {
                p.update(n, (round + k) % 3 == 0);
            }
            let taken = round % 8 != 0;
            if round > 100 {
                correct += (p.predict(pc) == taken) as u32;
                total += 1;
            }
            p.update(pc, taken);
        }
        let rate = correct as f64 / total as f64;
        assert!(rate > 0.8, "tournament accuracy {rate} on a biased branch");
    }

    #[test]
    fn global_history_tracks_updates() {
        let mut p = TournamentPredictor::new(TournamentConfig::mcfarling());
        p.update(Addr::new(0), true);
        p.update(Addr::new(0), false);
        assert_eq!(p.global_history(), 0b10);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_bimodal_size() {
        TournamentPredictor::new(TournamentConfig {
            bimodal_entries: 100,
            gshare: TwoLevelConfig::gshare(8),
            chooser_entries: 64,
        });
    }
}
