//! Per-branch-class prediction statistics.

use sim_isa::BranchClass;
use std::fmt;

/// Prediction counters for one branch class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Dynamic executions of this class.
    pub executed: u64,
    /// Executions whose *complete* prediction (direction and target) was
    /// correct.
    pub correct: u64,
}

impl ClassCounters {
    /// Mispredicted executions.
    pub fn mispredicted(&self) -> u64 {
        self.executed - self.correct
    }

    /// Misprediction rate in `[0, 1]`; zero if never executed.
    pub fn misprediction_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.mispredicted() as f64 / self.executed as f64
        }
    }
}

/// Prediction statistics broken down by branch class, as the paper reports
/// them (Table 1's "Ind. Jump Mispred. Rate" is
/// `stats.indirect_jump_misprediction_rate()`).
///
/// # Example
///
/// ```
/// use branch_predictors::BranchClassStats;
/// use sim_isa::BranchClass;
///
/// let mut stats = BranchClassStats::default();
/// stats.record(BranchClass::IndirectJump, true);
/// stats.record(BranchClass::IndirectJump, false);
/// assert_eq!(stats.indirect_jump_misprediction_rate(), 0.5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchClassStats {
    counters: [ClassCounters; 6],
}

impl BranchClassStats {
    /// Records the outcome of one predicted branch.
    pub fn record(&mut self, class: BranchClass, correct: bool) {
        let c = &mut self.counters[class.index()];
        c.executed += 1;
        c.correct += correct as u64;
    }

    /// The counters for one class.
    pub fn class(&self, class: BranchClass) -> ClassCounters {
        self.counters[class.index()]
    }

    /// Total dynamic branches recorded.
    pub fn total_executed(&self) -> u64 {
        self.counters.iter().map(|c| c.executed).sum()
    }

    /// Total mispredictions across all classes.
    pub fn total_mispredicted(&self) -> u64 {
        self.counters.iter().map(|c| c.mispredicted()).sum()
    }

    /// Overall misprediction rate across all branch classes.
    pub fn overall_misprediction_rate(&self) -> f64 {
        let n = self.total_executed();
        if n == 0 {
            0.0
        } else {
            self.total_mispredicted() as f64 / n as f64
        }
    }

    /// Combined counters for the target-cache-eligible classes (indirect
    /// jumps + indirect calls).
    pub fn indirect_jump_counters(&self) -> ClassCounters {
        let j = self.class(BranchClass::IndirectJump);
        let c = self.class(BranchClass::IndirectCall);
        ClassCounters {
            executed: j.executed + c.executed,
            correct: j.correct + c.correct,
        }
    }

    /// Misprediction rate over indirect jumps and indirect calls — the
    /// paper's headline metric.
    pub fn indirect_jump_misprediction_rate(&self) -> f64 {
        self.indirect_jump_counters().misprediction_rate()
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &BranchClassStats) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            a.executed += b.executed;
            a.correct += b.correct;
        }
    }
}

impl fmt::Display for BranchClassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in BranchClass::ALL {
            let c = self.class(class);
            if c.executed > 0 {
                writeln!(
                    f,
                    "{:>6}: {:>10} executed, {:>8} mispredicted ({:.2}%)",
                    class.mnemonic(),
                    c.executed,
                    c.mispredicted(),
                    c.misprediction_rate() * 100.0
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_class() {
        let mut s = BranchClassStats::default();
        s.record(BranchClass::CondDirect, true);
        s.record(BranchClass::CondDirect, false);
        s.record(BranchClass::Return, true);
        assert_eq!(s.class(BranchClass::CondDirect).executed, 2);
        assert_eq!(s.class(BranchClass::CondDirect).mispredicted(), 1);
        assert_eq!(s.class(BranchClass::Return).misprediction_rate(), 0.0);
        assert_eq!(s.total_executed(), 3);
        assert_eq!(s.total_mispredicted(), 1);
    }

    #[test]
    fn indirect_rate_combines_jumps_and_calls() {
        let mut s = BranchClassStats::default();
        s.record(BranchClass::IndirectJump, false);
        s.record(BranchClass::IndirectCall, true);
        s.record(BranchClass::IndirectCall, false);
        s.record(BranchClass::Return, false); // excluded
        let c = s.indirect_jump_counters();
        assert_eq!(c.executed, 3);
        assert_eq!(c.mispredicted(), 2);
        assert!((s.indirect_jump_misprediction_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = BranchClassStats::default();
        assert_eq!(s.overall_misprediction_rate(), 0.0);
        assert_eq!(s.indirect_jump_misprediction_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = BranchClassStats::default();
        a.record(BranchClass::IndirectJump, true);
        let mut b = BranchClassStats::default();
        b.record(BranchClass::IndirectJump, false);
        a.merge(&b);
        assert_eq!(a.indirect_jump_counters().executed, 2);
        assert_eq!(a.indirect_jump_misprediction_rate(), 0.5);
    }

    #[test]
    fn display_lists_only_executed_classes() {
        let mut s = BranchClassStats::default();
        s.record(BranchClass::IndirectJump, false);
        let text = s.to_string();
        assert!(text.contains("ijmp"));
        assert!(!text.contains("ret"));
    }
}
