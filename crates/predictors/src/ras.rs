//! The return address stack.
//!
//! The paper excludes returns from the target cache "because they are
//! effectively handled with the return address stack" (citing Webb, and
//! Kaeli & Emma). This is a bounded circular stack: pushing past capacity
//! silently overwrites the oldest entry (as real hardware does), and popping
//! an empty stack returns `None`.

use sim_isa::Addr;
use std::fmt;

/// Push/pop counters for a [`ReturnAddressStack`], including the
/// capacity events that corrupt predictions: overflows (a push wrapped
/// around and destroyed the oldest entry) and underflows (a pop found the
/// stack empty, leaving the return unpredicted).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RasStats {
    /// Return addresses pushed.
    pub pushes: u64,
    /// Pop attempts (successful or not).
    pub pops: u64,
    /// Pushes that overwrote the oldest live entry.
    pub overflows: u64,
    /// Pops of an empty stack.
    pub underflows: u64,
}

/// A bounded return address stack with wrap-around overwrite.
///
/// # Example
///
/// ```
/// use branch_predictors::ReturnAddressStack;
/// use sim_isa::Addr;
///
/// let mut ras = ReturnAddressStack::new(8);
/// ras.push(Addr::new(0x104)); // call at 0x100
/// ras.push(Addr::new(0x204)); // nested call at 0x200
/// assert_eq!(ras.pop(), Some(Addr::new(0x204)));
/// assert_eq!(ras.pop(), Some(Addr::new(0x104)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone)]
pub struct ReturnAddressStack {
    slots: Vec<Addr>,
    /// Index of the next free slot (mod capacity).
    top: usize,
    /// Number of live entries (saturates at capacity).
    depth: usize,
    stats: RasStats,
}

/// Equality compares predictive content (live entries and their order),
/// not the statistics counters.
impl PartialEq for ReturnAddressStack {
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots && self.top == other.top && self.depth == other.depth
    }
}

impl Eq for ReturnAddressStack {}

impl ReturnAddressStack {
    /// Creates an empty stack with room for `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "return stack capacity must be at least 1");
        ReturnAddressStack {
            slots: vec![Addr::NULL; capacity],
            top: 0,
            depth: 0,
            stats: RasStats::default(),
        }
    }

    /// Push/pop counters, including overflow and underflow events.
    pub fn stats(&self) -> RasStats {
        self.stats
    }

    /// The stack's capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// Pushes a return address (the fall-through of a call). If the stack is
    /// full, the oldest entry is silently overwritten.
    #[inline]
    pub fn push(&mut self, return_addr: Addr) {
        self.stats.pushes += 1;
        self.stats.overflows += (self.depth == self.slots.len()) as u64;
        self.slots[self.top] = return_addr;
        self.top = (self.top + 1) % self.slots.len();
        self.depth = (self.depth + 1).min(self.slots.len());
    }

    /// Pops the most recent return address, or `None` if the stack is empty
    /// (in which case the fetch engine has no prediction for the return).
    #[inline]
    pub fn pop(&mut self) -> Option<Addr> {
        self.stats.pops += 1;
        if self.depth == 0 {
            self.stats.underflows += 1;
            return None;
        }
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.depth -= 1;
        Some(self.slots[self.top])
    }

    /// The address a pop *would* return, without popping.
    #[inline]
    pub fn peek(&self) -> Option<Addr> {
        if self.depth == 0 {
            None
        } else {
            let i = (self.top + self.slots.len() - 1) % self.slots.len();
            Some(self.slots[i])
        }
    }

    /// Empties the stack.
    pub fn clear(&mut self) {
        self.top = 0;
        self.depth = 0;
    }
}

impl fmt::Debug for ReturnAddressStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReturnAddressStack({}/{})", self.depth, self.slots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = ReturnAddressStack::new(4);
        s.push(Addr::new(0x10));
        s.push(Addr::new(0x20));
        s.push(Addr::new(0x30));
        assert_eq!(s.pop(), Some(Addr::new(0x30)));
        assert_eq!(s.pop(), Some(Addr::new(0x20)));
        assert_eq!(s.pop(), Some(Addr::new(0x10)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn overflow_overwrites_oldest() {
        let mut s = ReturnAddressStack::new(2);
        s.push(Addr::new(0x10));
        s.push(Addr::new(0x20));
        s.push(Addr::new(0x30)); // overwrites 0x10
        assert_eq!(s.depth(), 2);
        assert_eq!(s.pop(), Some(Addr::new(0x30)));
        assert_eq!(s.pop(), Some(Addr::new(0x20)));
        assert_eq!(s.pop(), None, "the overwritten entry is gone");
    }

    #[test]
    fn peek_does_not_pop() {
        let mut s = ReturnAddressStack::new(4);
        assert_eq!(s.peek(), None);
        s.push(Addr::new(0x10));
        assert_eq!(s.peek(), Some(Addr::new(0x10)));
        assert_eq!(s.depth(), 1);
        assert_eq!(s.pop(), Some(Addr::new(0x10)));
    }

    #[test]
    fn clear_empties() {
        let mut s = ReturnAddressStack::new(4);
        s.push(Addr::new(0x10));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn capacity_one_behaves() {
        let mut s = ReturnAddressStack::new(1);
        s.push(Addr::new(0x10));
        s.push(Addr::new(0x20));
        assert_eq!(s.pop(), Some(Addr::new(0x20)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        ReturnAddressStack::new(0);
    }

    #[test]
    fn stats_count_capacity_events() {
        let mut s = ReturnAddressStack::new(2);
        s.pop(); // underflow
        s.push(Addr::new(0x10));
        s.push(Addr::new(0x20));
        s.push(Addr::new(0x30)); // overflow
        s.pop();
        let st = s.stats();
        assert_eq!(st.pushes, 3);
        assert_eq!(st.pops, 2);
        assert_eq!(st.overflows, 1);
        assert_eq!(st.underflows, 1);
    }

    #[test]
    fn deep_call_chain_round_trip() {
        let mut s = ReturnAddressStack::new(64);
        for i in 0..64u64 {
            s.push(Addr::from_word_index(i));
        }
        for i in (0..64u64).rev() {
            assert_eq!(s.pop(), Some(Addr::from_word_index(i)));
        }
    }
}
