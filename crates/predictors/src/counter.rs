//! Saturating counters, the workhorse state element of dynamic predictors.

use std::fmt;

/// An `n`-bit saturating up/down counter.
///
/// Two-bit saturating counters are the classic pattern-history-table entry
/// of two-level predictors (Yeh & Patt); the BTB's 2-bit target-update
/// strategy (Calder & Grunwald) uses a 1-bit instance.
///
/// The counter saturates at `0` and `2^bits - 1`. Values in the upper half
/// are "high" (predict taken / replace target); values in the lower half are
/// "low".
///
/// # Example
///
/// ```
/// use branch_predictors::SaturatingCounter;
///
/// let mut c = SaturatingCounter::new(2); // starts weakly-low at 1
/// assert!(!c.is_high());
/// c.increment();
/// c.increment();
/// assert!(c.is_high());
/// assert_eq!(c.value(), 3); // saturated
/// c.increment();
/// assert_eq!(c.value(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates a counter of the given width, initialized *weakly low*
    /// (`2^(bits-1) - 1`), the conventional cold state.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7.
    pub fn new(bits: u8) -> Self {
        assert!((1..=7).contains(&bits), "counter width must be 1..=7 bits");
        let max = (1u8 << bits) - 1;
        SaturatingCounter {
            value: (1u8 << (bits - 1)) - 1,
            max,
        }
    }

    /// Creates a counter with an explicit initial value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is out of range or `value > 2^bits - 1`.
    pub fn with_value(bits: u8, value: u8) -> Self {
        let mut c = SaturatingCounter::new(bits);
        assert!(
            value <= c.max,
            "initial value {value} exceeds counter max {}",
            c.max
        );
        c.value = value;
        c
    }

    /// The current count.
    #[inline]
    pub fn value(self) -> u8 {
        self.value
    }

    /// The saturation maximum (`2^bits - 1`).
    #[inline]
    pub fn max(self) -> u8 {
        self.max
    }

    /// Whether the counter is in its upper half (e.g. "predict taken").
    #[inline]
    pub fn is_high(self) -> bool {
        self.value > self.max / 2
    }

    /// Whether the counter is saturated at its maximum.
    #[inline]
    pub fn is_saturated_high(self) -> bool {
        self.value == self.max
    }

    /// Whether the counter is saturated at zero.
    #[inline]
    pub fn is_saturated_low(self) -> bool {
        self.value == 0
    }

    /// Counts up, saturating at the maximum.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Counts down, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Trains toward `outcome`: increment if true, decrement if false.
    #[inline]
    pub fn train(&mut self, outcome: bool) {
        if outcome {
            self.increment();
        } else {
            self.decrement();
        }
    }

    /// Resets to the weakly-low cold state.
    pub fn reset(&mut self) {
        let bits = self.max.trailing_ones() as u8;
        self.value = (1u8 << (bits - 1)) - 1;
    }
}

impl fmt::Debug for SaturatingCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SaturatingCounter({}/{})", self.value, self.max)
    }
}

impl Default for SaturatingCounter {
    /// A two-bit counter in the weakly-low state.
    fn default() -> Self {
        SaturatingCounter::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_starts_weakly_low() {
        let c = SaturatingCounter::new(2);
        assert_eq!(c.value(), 1);
        assert!(!c.is_high());
        let c1 = SaturatingCounter::new(1);
        assert_eq!(c1.value(), 0);
        let c3 = SaturatingCounter::new(3);
        assert_eq!(c3.value(), 3);
        assert!(!c3.is_high());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        SaturatingCounter::new(0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn oversized_width_rejected() {
        SaturatingCounter::new(8);
    }

    #[test]
    fn saturates_both_ends() {
        let mut c = SaturatingCounter::new(2);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated_high());
        for _ in 0..10 {
            c.decrement();
        }
        assert_eq!(c.value(), 0);
        assert!(c.is_saturated_low());
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        // Classic 2-bit behaviour: one contrary outcome does not flip a
        // saturated prediction.
        let mut c = SaturatingCounter::with_value(2, 3);
        c.train(false);
        assert!(c.is_high(), "still predicts high after one miss");
        c.train(false);
        assert!(!c.is_high(), "flips after two misses");
    }

    #[test]
    fn one_bit_counter_flips_immediately() {
        let mut c = SaturatingCounter::new(1);
        assert!(!c.is_high());
        c.train(true);
        assert!(c.is_high());
        c.train(false);
        assert!(!c.is_high());
    }

    #[test]
    fn with_value_validates() {
        let c = SaturatingCounter::with_value(2, 2);
        assert_eq!(c.value(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn with_value_rejects_overflow() {
        SaturatingCounter::with_value(2, 4);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut c = SaturatingCounter::new(2);
        c.increment();
        c.increment();
        c.reset();
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn default_is_two_bit() {
        let c = SaturatingCounter::default();
        assert_eq!(c.max(), 3);
        assert_eq!(c.value(), 1);
    }
}
