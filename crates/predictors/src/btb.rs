//! Set-associative branch target buffer.
//!
//! The paper's baseline machine uses a 1K-entry, 4-way set-associative BTB
//! (256 sets). Each entry stores the branch's taken target, fall-through
//! address, and branch type; for indirect jumps "the taken address is the
//! last computed target for the indirect jump" — which is precisely why a
//! BTB mispredicts polymorphic indirect jumps so badly (Table 1).
//!
//! Two target-update strategies are modelled (Table 2):
//!
//! * [`UpdatePolicy::Always`] — the default: the stored target is replaced
//!   on every target mismatch.
//! * [`UpdatePolicy::TwoBit`] — Calder & Grunwald's 2-bit strategy: an
//!   entry's target is only replaced after **two consecutive** incorrect
//!   predictions with that target.

use crate::counter::SaturatingCounter;
use sim_isa::{Addr, BranchClass};
use std::fmt;

/// BTB target-update strategy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum UpdatePolicy {
    /// Replace the stored target on every mismatch (the paper's default).
    #[default]
    Always,
    /// Calder & Grunwald: replace only after two consecutive mismatches.
    TwoBit,
}

/// Configuration of a [`Btb`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BtbConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (entries per set).
    pub ways: usize,
    /// Target-update strategy.
    pub update_policy: UpdatePolicy,
}

impl BtbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a nonzero power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize, update_policy: UpdatePolicy) -> Self {
        assert!(
            sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        assert!(ways >= 1, "BTB associativity must be at least 1");
        BtbConfig {
            sets,
            ways,
            update_policy,
        }
    }

    /// The paper's baseline: 1K entries, 4-way (256 sets), default update.
    pub fn isca97_baseline() -> Self {
        BtbConfig::new(256, 4, UpdatePolicy::Always)
    }

    /// Total entry count.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// A successful BTB lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BtbHit {
    /// The stored taken-path target (for indirect jumps: the last computed
    /// target).
    pub target: Addr,
    /// The stored fall-through address (needed for the return-address push
    /// of a jump-to-subroutine).
    pub fallthrough: Addr,
    /// The stored branch type, which the fetch engine uses to decide which
    /// predictor supplies the final target.
    pub class: BranchClass,
}

#[derive(Clone, Debug)]
struct BtbEntry {
    tag: u64,
    target: Addr,
    fallthrough: Addr,
    class: BranchClass,
    /// Hysteresis counter for the 2-bit update policy: counts consecutive
    /// mispredictions with the current target.
    miss_streak: SaturatingCounter,
    /// LRU timestamp (higher = more recently used).
    lru: u64,
}

/// A set-associative branch target buffer with true-LRU replacement.
///
/// # Example
///
/// ```
/// use branch_predictors::{Btb, BtbConfig, UpdatePolicy};
/// use sim_isa::{Addr, BranchClass};
///
/// let mut btb = Btb::new(BtbConfig::isca97_baseline());
/// assert!(btb.lookup(Addr::new(0x40)).is_none());
/// btb.update(Addr::new(0x40), BranchClass::CondDirect, Addr::new(0x80), Addr::new(0x44));
/// let hit = btb.lookup(Addr::new(0x40)).unwrap();
/// assert_eq!(hit.target, Addr::new(0x80));
/// assert_eq!(hit.class, BranchClass::CondDirect);
/// ```
#[derive(Clone)]
pub struct Btb {
    config: BtbConfig,
    sets: Vec<Vec<BtbEntry>>,
    clock: u64,
    stats: BtbStats,
}

/// Mechanical lookup/update counters for a [`Btb`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Fetch-time lookups performed.
    pub lookups: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Resolution-time updates (train or install).
    pub updates: u64,
    /// Updates that evicted a live entry.
    pub evictions: u64,
}

impl BtbStats {
    /// Lookups that found no entry.
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Fraction of lookups that hit.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

impl Btb {
    /// Creates an empty BTB.
    pub fn new(config: BtbConfig) -> Self {
        Btb {
            config,
            sets: vec![Vec::new(); config.sets],
            clock: 0,
            stats: BtbStats::default(),
        }
    }

    /// Mechanical lookup/update counters.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// The BTB's configuration.
    pub fn config(&self) -> BtbConfig {
        self.config
    }

    #[inline]
    fn set_index(&self, pc: Addr) -> usize {
        (pc.word_index() as usize) & (self.config.sets - 1)
    }

    #[inline]
    fn tag(&self, pc: Addr) -> u64 {
        pc.word_index() / self.config.sets as u64
    }

    /// Looks up `pc`, refreshing the entry's LRU state on a hit.
    ///
    /// A miss means the fetch engine does not know `pc` is a branch at all
    /// and will fall through.
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbHit> {
        let set = self.set_index(pc);
        let tag = self.tag(pc);
        self.clock += 1;
        self.stats.lookups += 1;
        let clock = self.clock;
        let hit = self.sets[set].iter_mut().find(|e| e.tag == tag).map(|e| {
            e.lru = clock;
            BtbHit {
                target: e.target,
                fallthrough: e.fallthrough,
                class: e.class,
            }
        });
        self.stats.hits += hit.is_some() as u64;
        hit
    }

    /// Looks up `pc` without disturbing LRU state (for instrumentation).
    pub fn peek(&self, pc: Addr) -> Option<BtbHit> {
        let set = self.set_index(pc);
        let tag = self.tag(pc);
        self.sets[set]
            .iter()
            .find(|e| e.tag == tag)
            .map(|e| BtbHit {
                target: e.target,
                fallthrough: e.fallthrough,
                class: e.class,
            })
    }

    /// Installs or trains the entry for a resolved branch.
    ///
    /// `actual_target` is the branch's computed taken-path target this
    /// execution; `fallthrough` is `pc.next()` (stored so a call can push
    /// its return address even on a BTB-supplied prediction).
    pub fn update(&mut self, pc: Addr, class: BranchClass, actual_target: Addr, fallthrough: Addr) {
        let set_index = self.set_index(pc);
        let tag = self.tag(pc);
        self.clock += 1;
        self.stats.updates += 1;
        let clock = self.clock;
        let policy = self.config.update_policy;
        let ways = self.config.ways;
        let set = &mut self.sets[set_index];

        if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
            e.lru = clock;
            e.class = class;
            e.fallthrough = fallthrough;
            if e.target == actual_target {
                e.miss_streak = SaturatingCounter::with_value(1, 0);
            } else {
                match policy {
                    UpdatePolicy::Always => {
                        e.target = actual_target;
                    }
                    UpdatePolicy::TwoBit => {
                        if e.miss_streak.is_high() {
                            // Second consecutive miss with this target.
                            e.target = actual_target;
                            e.miss_streak = SaturatingCounter::with_value(1, 0);
                        } else {
                            e.miss_streak = SaturatingCounter::with_value(1, 1);
                        }
                    }
                }
            }
            return;
        }

        let entry = BtbEntry {
            tag,
            target: actual_target,
            fallthrough,
            class,
            miss_streak: SaturatingCounter::with_value(1, 0),
            lru: clock,
        };
        if set.len() < ways {
            set.push(entry);
        } else {
            // Evict the least-recently-used way.
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            set[victim] = entry;
            self.stats.evictions += 1;
        }
    }

    /// Number of valid entries currently stored.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.clock = 0;
    }
}

impl fmt::Debug for Btb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Btb({} sets x {} ways, {:?}, {} valid)",
            self.config.sets,
            self.config.ways,
            self.config.update_policy,
            self.occupancy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb(sets: usize, ways: usize, policy: UpdatePolicy) -> Btb {
        Btb::new(BtbConfig::new(sets, ways, policy))
    }

    #[test]
    fn miss_then_hit_after_update() {
        let mut b = btb(16, 2, UpdatePolicy::Always);
        let pc = Addr::new(0x100);
        assert!(b.lookup(pc).is_none());
        b.update(pc, BranchClass::UncondDirect, Addr::new(0x200), pc.next());
        let hit = b.lookup(pc).unwrap();
        assert_eq!(hit.target, Addr::new(0x200));
        assert_eq!(hit.fallthrough, Addr::new(0x104));
        assert_eq!(hit.class, BranchClass::UncondDirect);
    }

    #[test]
    fn default_policy_tracks_last_target() {
        let mut b = btb(16, 2, UpdatePolicy::Always);
        let pc = Addr::new(0x100);
        b.update(pc, BranchClass::IndirectJump, Addr::new(0x200), pc.next());
        b.update(pc, BranchClass::IndirectJump, Addr::new(0x300), pc.next());
        assert_eq!(b.lookup(pc).unwrap().target, Addr::new(0x300));
    }

    #[test]
    fn two_bit_policy_survives_one_mismatch() {
        let mut b = btb(16, 2, UpdatePolicy::TwoBit);
        let pc = Addr::new(0x100);
        b.update(pc, BranchClass::IndirectJump, Addr::new(0x200), pc.next());
        // One deviation: target sticks.
        b.update(pc, BranchClass::IndirectJump, Addr::new(0x300), pc.next());
        assert_eq!(b.lookup(pc).unwrap().target, Addr::new(0x200));
        // Second consecutive deviation: target replaced.
        b.update(pc, BranchClass::IndirectJump, Addr::new(0x300), pc.next());
        assert_eq!(b.lookup(pc).unwrap().target, Addr::new(0x300));
    }

    #[test]
    fn two_bit_policy_streak_resets_on_correct_use() {
        let mut b = btb(16, 2, UpdatePolicy::TwoBit);
        let pc = Addr::new(0x100);
        b.update(pc, BranchClass::IndirectJump, Addr::new(0x200), pc.next());
        b.update(pc, BranchClass::IndirectJump, Addr::new(0x300), pc.next()); // miss 1
        b.update(pc, BranchClass::IndirectJump, Addr::new(0x200), pc.next()); // correct: reset
        b.update(pc, BranchClass::IndirectJump, Addr::new(0x300), pc.next()); // miss 1 again
        assert_eq!(
            b.lookup(pc).unwrap().target,
            Addr::new(0x200),
            "streak must reset after a correct prediction"
        );
    }

    #[test]
    fn alternating_targets_never_update_under_two_bit() {
        // The pathological A,B,A,B... pattern: 2-bit never replaces, so the
        // stored target stays A (and happens to be right half the time —
        // exactly the effect Calder & Grunwald exploit).
        let mut b = btb(16, 2, UpdatePolicy::TwoBit);
        let pc = Addr::new(0x100);
        let a = Addr::new(0x200);
        let t = Addr::new(0x300);
        b.update(pc, BranchClass::IndirectJump, a, pc.next());
        for _ in 0..10 {
            b.update(pc, BranchClass::IndirectJump, t, pc.next());
            b.update(pc, BranchClass::IndirectJump, a, pc.next());
        }
        assert_eq!(b.lookup(pc).unwrap().target, a);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut b = btb(1, 2, UpdatePolicy::Always);
        // Three branches mapping to the single set.
        let p1 = Addr::new(0x100);
        let p2 = Addr::new(0x200);
        let p3 = Addr::new(0x300);
        b.update(p1, BranchClass::UncondDirect, Addr::new(0x10), p1.next());
        b.update(p2, BranchClass::UncondDirect, Addr::new(0x20), p2.next());
        // Touch p1 so p2 is LRU.
        assert!(b.lookup(p1).is_some());
        b.update(p3, BranchClass::UncondDirect, Addr::new(0x30), p3.next());
        assert!(b.lookup(p1).is_some(), "p1 was recently used");
        assert!(b.lookup(p2).is_none(), "p2 was the LRU victim");
        assert!(b.lookup(p3).is_some());
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut b = btb(16, 1, UpdatePolicy::Always);
        // Consecutive instructions map to consecutive sets.
        for i in 0..16u64 {
            let pc = Addr::from_word_index(i);
            b.update(pc, BranchClass::UncondDirect, Addr::new(0x1000), pc.next());
        }
        assert_eq!(b.occupancy(), 16);
        for i in 0..16u64 {
            assert!(b.lookup(Addr::from_word_index(i)).is_some());
        }
    }

    #[test]
    fn tag_disambiguates_same_set_aliases() {
        let mut b = btb(16, 2, UpdatePolicy::Always);
        let p1 = Addr::from_word_index(5);
        let p2 = Addr::from_word_index(5 + 16); // same set, different tag
        b.update(p1, BranchClass::UncondDirect, Addr::new(0x10), p1.next());
        assert!(b.lookup(p2).is_none());
        b.update(p2, BranchClass::Call, Addr::new(0x20), p2.next());
        assert_eq!(b.lookup(p1).unwrap().target, Addr::new(0x10));
        assert_eq!(b.lookup(p2).unwrap().target, Addr::new(0x20));
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut b = btb(1, 2, UpdatePolicy::Always);
        let p1 = Addr::new(0x100);
        let p2 = Addr::new(0x200);
        let p3 = Addr::new(0x300);
        b.update(p1, BranchClass::UncondDirect, Addr::new(0x10), p1.next());
        b.update(p2, BranchClass::UncondDirect, Addr::new(0x20), p2.next());
        // Peek at p1 (no LRU refresh) — p1 is still LRU and gets evicted.
        assert!(b.peek(p1).is_some());
        b.update(p3, BranchClass::UncondDirect, Addr::new(0x30), p3.next());
        assert!(b.peek(p1).is_none());
        assert!(b.peek(p2).is_some());
    }

    #[test]
    fn clear_empties_the_btb() {
        let mut b = btb(16, 2, UpdatePolicy::Always);
        b.update(
            Addr::new(0x100),
            BranchClass::UncondDirect,
            Addr::new(0x10),
            Addr::new(0x104),
        );
        b.clear();
        assert_eq!(b.occupancy(), 0);
        assert!(b.lookup(Addr::new(0x100)).is_none());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        BtbConfig::new(100, 4, UpdatePolicy::Always);
    }

    #[test]
    fn baseline_config_matches_paper() {
        let c = BtbConfig::isca97_baseline();
        assert_eq!(c.entries(), 1024);
        assert_eq!(c.ways, 4);
    }

    #[test]
    fn stats_count_lookups_updates_and_evictions() {
        let mut b = btb(1, 1, UpdatePolicy::Always); // one entry total
        assert_eq!(b.stats(), BtbStats::default());
        b.lookup(Addr::new(0x100)); // miss
        b.update(
            Addr::new(0x100),
            BranchClass::UncondDirect,
            Addr::new(0x10),
            Addr::new(0x104),
        );
        b.lookup(Addr::new(0x100)); // hit
        b.update(
            Addr::new(0x200), // conflicts: evicts 0x100's entry
            BranchClass::UncondDirect,
            Addr::new(0x20),
            Addr::new(0x204),
        );
        let s = b.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.updates, 2);
        assert_eq!(s.evictions, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}
