//! Property-based tests for the baseline predictors.

use branch_predictors::{
    Btb, BtbConfig, PathFilter, PathHistory, PathHistoryConfig, PatternHistory, ReturnAddressStack,
    SaturatingCounter, TwoLevelConfig, TwoLevelPredictor, UpdatePolicy,
};
use proptest::prelude::*;
use sim_isa::{Addr, BranchClass};

fn arb_branch_class() -> impl Strategy<Value = BranchClass> {
    prop::sample::select(BranchClass::ALL.to_vec())
}

proptest! {
    #[test]
    fn counter_stays_in_range(bits in 1u8..=7, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SaturatingCounter::new(bits);
        for op in ops {
            c.train(op);
            prop_assert!(c.value() <= c.max());
        }
    }

    #[test]
    fn counter_monotone_under_increments(bits in 1u8..=7, n in 0u32..50) {
        let mut c = SaturatingCounter::new(bits);
        let mut last = c.value();
        for _ in 0..n {
            c.increment();
            prop_assert!(c.value() >= last);
            last = c.value();
        }
    }

    #[test]
    fn pattern_history_value_fits_width(bits in 1u32..=64, pushes in proptest::collection::vec(any::<bool>(), 0..150)) {
        let mut h = PatternHistory::new(bits);
        for p in pushes {
            h.push(p);
            if bits < 64 {
                prop_assert!(h.value() < (1u64 << bits));
            }
        }
    }

    #[test]
    fn pattern_history_reconstructs_recent_outcomes(
        pushes in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let bits = 16u32;
        let mut h = PatternHistory::new(bits);
        for &p in &pushes {
            h.push(p);
        }
        // The low min(len, bits) bits replay the most recent outcomes.
        let n = pushes.len().min(bits as usize);
        for k in 0..n {
            let expected = pushes[pushes.len() - 1 - k];
            let bit = (h.value() >> k) & 1 == 1;
            prop_assert_eq!(bit, expected, "bit {} disagrees", k);
        }
    }

    #[test]
    fn path_history_fits_width(
        total_bits in 1u32..=32,
        per in 1u32..=8,
        targets in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let per = per.min(total_bits);
        let mut h = PathHistory::new(PathHistoryConfig {
            total_bits,
            bits_per_target: per,
            target_bit_lo: 0,
            filter: PathFilter::Control,
        });
        for t in targets {
            h.record(BranchClass::UncondDirect, Addr::from_word_index(t));
            prop_assert!(total_bits == 64 || h.value() < (1u64 << total_bits));
        }
    }

    #[test]
    fn path_filter_is_consistent_with_class_predicates(class in arb_branch_class()) {
        prop_assert!(PathFilter::Control.accepts(class));
        prop_assert_eq!(PathFilter::ConditionalOnly.accepts(class), class.is_conditional());
        prop_assert_eq!(PathFilter::CallReturn.accepts(class), class.is_call() || class.is_return());
        prop_assert_eq!(PathFilter::IndirectJump.accepts(class), class.uses_target_cache());
    }

    #[test]
    fn btb_lookup_after_update_returns_latest_target_under_always(
        pcs in proptest::collection::vec(0u64..4096, 1..200),
    ) {
        use std::collections::HashMap;
        let mut btb = Btb::new(BtbConfig::new(64, 64, UpdatePolicy::Always)); // effectively unbounded
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (i, pc) in pcs.iter().enumerate() {
            let target = (i as u64) * 8 + 0x10000;
            btb.update(
                Addr::from_word_index(*pc),
                BranchClass::IndirectJump,
                Addr::new(target & !3),
                Addr::from_word_index(*pc).next(),
            );
            model.insert(*pc, target & !3);
        }
        for (pc, target) in model {
            let hit = btb.lookup(Addr::from_word_index(pc));
            prop_assert_eq!(hit.map(|h| h.target), Some(Addr::new(target)));
        }
    }

    #[test]
    fn btb_occupancy_never_exceeds_capacity(
        pcs in proptest::collection::vec(0u64..100_000, 0..500),
        sets_log2 in 0u32..6,
        ways in 1usize..5,
    ) {
        let sets = 1usize << sets_log2;
        let mut btb = Btb::new(BtbConfig::new(sets, ways, UpdatePolicy::Always));
        for pc in pcs {
            btb.update(
                Addr::from_word_index(pc),
                BranchClass::UncondDirect,
                Addr::new(0x40),
                Addr::from_word_index(pc).next(),
            );
        }
        prop_assert!(btb.occupancy() <= sets * ways);
    }

    #[test]
    fn two_bit_policy_requires_two_consecutive_misses(
        deviations in proptest::collection::vec(any::<bool>(), 1..60),
    ) {
        // Model: stored target only changes after two consecutive deviating
        // updates. `true` = deviate (use target B), `false` = confirm (A).
        let mut btb = Btb::new(BtbConfig::new(16, 4, UpdatePolicy::TwoBit));
        let pc = Addr::new(0x100);
        let a = Addr::new(0x1000);
        let b = Addr::new(0x2000);
        btb.update(pc, BranchClass::IndirectJump, a, pc.next());

        let mut stored = a;
        let mut streak = 0u32;
        for &dev in &deviations {
            let actual = if dev { b } else { a };
            btb.update(pc, BranchClass::IndirectJump, actual, pc.next());
            if actual == stored {
                streak = 0;
            } else {
                streak += 1;
                if streak >= 2 {
                    stored = actual;
                    streak = 0;
                }
            }
            prop_assert_eq!(btb.peek(pc).unwrap().target, stored);
        }
    }

    #[test]
    fn ras_matches_reference_stack_when_within_capacity(
        ops in proptest::collection::vec(prop_oneof![
            (0u64..10_000).prop_map(Some),
            Just(None),
        ], 0..200),
    ) {
        // As long as live depth never exceeds capacity, the RAS behaves as a
        // perfect stack.
        let mut ras = ReturnAddressStack::new(256);
        let mut model: Vec<Addr> = Vec::new();
        for op in ops {
            match op {
                Some(raw) => {
                    let a = Addr::from_word_index(raw);
                    ras.push(a);
                    model.push(a);
                    if model.len() > 256 {
                        model.remove(0);
                    }
                }
                None => {
                    prop_assert_eq!(ras.pop(), model.pop());
                }
            }
            prop_assert_eq!(ras.depth(), model.len());
        }
    }

    #[test]
    fn twolevel_predict_is_pure(pc in 0u64..1000, updates in proptest::collection::vec((0u64..1000, any::<bool>()), 0..100)) {
        let mut p = TwoLevelPredictor::new(TwoLevelConfig::gshare(8));
        for (upc, taken) in updates {
            p.update(Addr::from_word_index(upc), taken);
        }
        let pc = Addr::from_word_index(pc);
        let first = p.predict(pc);
        for _ in 0..5 {
            prop_assert_eq!(p.predict(pc), first, "predict must not mutate state");
        }
    }

    #[test]
    fn twolevel_history_only_records_updates(updates in proptest::collection::vec(any::<bool>(), 0..64)) {
        let mut p = TwoLevelPredictor::new(TwoLevelConfig::gag(16));
        let mut model = PatternHistory::new(16);
        for taken in updates {
            p.update(Addr::new(0x40), taken);
            model.push(taken);
            prop_assert_eq!(p.global_history(), model.value());
        }
    }
}
