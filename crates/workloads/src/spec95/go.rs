//! 099.go: a go-playing program.
//!
//! go is branch-heavy, data-driven code: board evaluation walks pattern
//! tables and tactical analyzers whose decisions depend on board state that
//! history predicts only weakly. Its indirect jumps (tactical dispatch,
//! pattern-class switches) see a moderate number of targets with weak
//! history correlation, giving a mid-range BTB misprediction rate (~38%)
//! and a smaller target-cache win than gcc/perl — the "hard" middle of the
//! suite.

use super::Workload;
use crate::mix::InstrMix;
use crate::program::{Cond, Effect, MarkovChain, ProgramBuilder, Selector};

pub(super) fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let mix = InstrMix::integer_heavy();

    let tactic = b.var();
    let pattern = b.var();
    let board = b.var();

    // Tactical situation: fairly sticky (reading the same fight for a
    // while), so the BTB is right roughly 60% of the time.
    let tactic_chain = b.chain(MarkovChain::sticky(7, 9.0));
    // Pattern class: weakly sticky.
    let pattern_chain = b.chain(MarkovChain::sticky(5, 7.0));
    // Board state: evolves slowly — consecutive liberty/pattern tests see
    // a mostly-unchanged position, so their outcomes come in runs (go is
    // still the hardest benchmark for direction prediction, just not a
    // pure coin flip).
    let board_chain = b.chain(MarkovChain::sticky(32, 160.0));

    let main = b.routine();
    let scan = b.routine(); // board scanner
    let read = b.routine(); // tactical reader

    // Block 0: per-move top loop.
    b.block(main)
        .body(6, mix)
        .call(scan)
        .call(read)
        .branch(Cond::Loop { count: 9 }, 0, 1);
    // Block 1: move selection — classify the tactical situation with a
    // couple of predicate tests (blocks 10..=12), then dispatch on it.
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: tactic_chain,
            var: tactic,
        })
        .body(8, mix)
        .branch(
            Cond::Bit {
                var: tactic,
                bit: 0,
            },
            10,
            10,
        );
    // Blocks 2..=8: tactical handlers with data-dependent conditionals.
    for k in 0..7u32 {
        b.block(main)
            .effect(Effect::MarkovStep {
                chain: board_chain,
                var: board,
            })
            .body(5 + (k * 5) % 11, mix)
            .branch(
                Cond::Bit {
                    var: board,
                    bit: k % 5,
                },
                9,
                0,
            );
    }
    // Block 9: extra evaluation work on the "interesting" arm.
    b.block(main).body(9, mix).goto(0);
    // Blocks 10..=12: the rest of the tactical classification and the
    // dispatch itself.
    b.block(main).body(2, mix).branch(
        Cond::Bit {
            var: tactic,
            bit: 1,
        },
        11,
        11,
    );
    b.block(main).body(1, mix).branch(
        Cond::Bit {
            var: tactic,
            bit: 2,
        },
        12,
        12,
    );
    b.block(main)
        .body(1, mix)
        .switch(Selector::var(tactic), vec![2, 3, 4, 5, 6, 7, 8]);

    // Board scanner: nested loop with a pattern-class switch, guarded by
    // pattern-class predicate tests (blocks 8..=9).
    b.block(scan)
        .effect(Effect::MarkovStep {
            chain: pattern_chain,
            var: pattern,
        })
        .body(7, mix)
        .branch(
            Cond::Bit {
                var: pattern,
                bit: 0,
            },
            8,
            8,
        );
    for k in 0..5u32 {
        b.block(scan).body(3 + (k * 3) % 7, mix).goto(6);
    }
    b.block(scan)
        .body(2, mix)
        .branch(Cond::Loop { count: 12 }, 0, 7);
    b.block(scan).ret();
    // Blocks 8..=9: second pattern predicate and the dispatch.
    b.block(scan).body(1, mix).branch(
        Cond::Bit {
            var: pattern,
            bit: 1,
        },
        9,
        9,
    );
    b.block(scan)
        .body(1, mix)
        .switch(Selector::var(pattern), vec![1, 2, 3, 4, 5]);

    // Tactical reader: a ladder of noisy conditionals (liberty counting).
    b.block(read)
        .effect(Effect::MarkovStep {
            chain: board_chain,
            var: board,
        })
        .body(4, mix)
        .branch(Cond::Bit { var: board, bit: 0 }, 1, 2);
    b.block(read)
        .body(6, mix)
        .branch(Cond::Bit { var: board, bit: 1 }, 3, 3);
    b.block(read)
        .body(3, mix)
        .branch(Cond::Bit { var: board, bit: 2 }, 3, 3);
    b.block(read)
        .body(2, mix)
        .branch(Cond::Loop { count: 4 }, 0, 4);
    b.block(read).ret();

    let program = b.build().expect("go model must validate");
    Workload::new("go", program, 0x60_60_60, 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moderate_indirect_jump_behaviour() {
        let stats = workload().generate(200_000).stats();
        assert!(stats.static_indirect_jumps() >= 2);
        let max_targets = stats
            .indirect_jump_census()
            .values()
            .map(|c| c.distinct_targets())
            .max()
            .unwrap();
        assert!((4..=10).contains(&max_targets), "max targets {max_targets}");
    }

    #[test]
    fn scanner_and_reader_call_balance() {
        use sim_isa::BranchClass;
        let stats = workload().generate(100_000).stats();
        let calls = stats.branch_count(BranchClass::Call);
        let rets = stats.branch_count(BranchClass::Return);
        assert!(calls > 400, "go calls its analyzers constantly: {calls}");
        assert!(calls.abs_diff(rets) <= 1);
    }

    #[test]
    fn branch_heavy_profile() {
        let stats = workload().generate(100_000).stats();
        let frac = stats.branches() as f64 / stats.instructions() as f64;
        assert!(frac > 0.12, "go should be branch-heavy, got {frac}");
    }
}
