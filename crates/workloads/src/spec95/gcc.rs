//! 126.gcc: a C compiler.
//!
//! gcc's indirect jumps are the switch statements that dispatch on IR node
//! kinds (tree codes, RTL codes, machine modes) inside dozens of separate
//! pass functions. The node-kind streams are bursty but change frequently,
//! so a BTB's last-target prediction fails 66.0% of the time (Table 1).
//! Crucially, each switch is preceded by conditional branches that test
//! *the same value* the switch dispatches on (`if (GET_CODE (x) == REG)`
//! chains, predicate macros) — so global **pattern** history encodes the
//! upcoming selector, which is why pattern-indexed target caches work so
//! well on gcc (Table 4) and why GAs is competitive with GAg here: "gcc ...
//! executes a large number of static indirect jumps", so address bits help
//! separate them.
//!
//! The model: eight pass routines, each with its own switch over node kinds
//! drawn from per-pass Markov chains, preceded by two or three bit-test
//! conditionals on the selector. `main` runs the passes in a loop and makes
//! indirect calls through a language-hooks table.

use super::Workload;
use crate::mix::InstrMix;
use crate::program::{Cond, Effect, MarkovChain, ProgramBuilder, RoutineId, Selector};
use rand::{Rng, SeedableRng};

/// Number of pass routines, each contributing one static switch.
const PASSES: usize = 8;

pub(super) fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let mix = InstrMix::integer_heavy();

    let node_kind = b.var();
    let mode = b.var();
    let hook = b.var();

    // Each pass re-walks the same functions' IR, so its node-kind stream is
    // *mostly periodic*: a fixed traversal cycle with a small substitution
    // noise (local differences between passes). The cycles are skewed
    // toward hot codes (SET/REG/MEM for RTL, common expression codes for
    // trees) and contain ~30% adjacent repeats, which yields the paper's
    // ~66% BTB misprediction; the noise is what keeps path history behind
    // pattern history on gcc, as the paper found.
    let mut cycle_rng = rand::rngs::SmallRng::seed_from_u64(0x6CC_C7C1E);
    let mut ir_cycle = |kinds: u32, len: usize| {
        let weights: Vec<f64> = (0..kinds)
            .map(|k| if k < 3 { 8.0 - k as f64 * 2.0 } else { 1.0 })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut tokens = Vec::with_capacity(len);
        let mut prev = 0u32;
        for i in 0..len {
            if i > 0 && cycle_rng.gen::<f64>() < 0.30 {
                tokens.push(prev);
                continue;
            }
            let mut roll = cycle_rng.gen::<f64>() * total;
            let mut pick = kinds - 1;
            for (k, &w) in weights.iter().enumerate() {
                if roll < w {
                    pick = k as u32;
                    break;
                }
                roll -= w;
            }
            tokens.push(pick);
            prev = pick;
        }
        b.cycle(tokens)
    };
    let pass_cycles: Vec<_> = (0..PASSES)
        .map(|i| ir_cycle(if i % 2 == 0 { 12 } else { 16 }, 24 + 3 * i))
        .collect();
    let mode_chain = b.chain(MarkovChain::sticky(6, 8.0));
    let hook_chain = b.chain(MarkovChain::categorical(vec![6.0, 2.0, 1.0, 1.0]));

    let main = b.routine();
    let passes: Vec<RoutineId> = (0..PASSES).map(|_| b.routine()).collect();
    let hooks: Vec<RoutineId> = (0..4).map(|_| b.routine()).collect();

    // main: run the passes over each "function" of the input, consult a
    // language hook between passes.
    {
        let mut blk = b.block(main).body(6, mix);
        for (i, &p) in passes.iter().enumerate() {
            blk = blk.body(3 + (i as u32 % 4), mix).call(p);
        }
        blk.effect(Effect::MarkovStep {
            chain: hook_chain,
            var: hook,
        })
        .call_indirect(Selector::var(hook), hooks.clone())
        .goto(0);
    }

    // Pass routines: walk the IR, test predicates on the node kind, then
    // dispatch on it. Odd passes walk the wider RTL alphabet.
    for (i, &p) in passes.iter().enumerate() {
        let kinds = if i % 2 == 0 { 12u32 } else { 16u32 };
        // Passes differ structurally, as real pass functions do: the
        // operand scan's trip count and the number of leading coarse
        // predicates vary per pass, so different switch sites see
        // differently-shaped history windows.
        let scan_trips = 2 + (i as u32 % 3);
        let extra_preds = i % 3; // 0..=2 coarse always-true range checks
                                 // Block layout per pass:
                                 //   0 = fetch the next node (effects) + leading body
                                 //   1 = operand scan loop
                                 //   2.. = `extra_preds` coarse checks, then the bit/range predicate
                                 //         chain, then the dispatch switch
                                 //   cases..cases+kinds = cases
                                 //   then: slow path, join/loop, return
        let cases = 9 + extra_preds;
        let slow = cases + kinds as usize;
        let join = slow + 1;
        let exit = join + 1;
        b.block(p)
            .effect(Effect::NoisyCycleNext {
                cycle: pass_cycles[i],
                var: node_kind,
                noise_p: 0.05,
                noise_n: kinds,
            })
            .effect(Effect::MarkovStep {
                chain: mode_chain,
                var: mode,
            })
            .body(5, mix)
            .goto(1);
        // Block 1: operand scan — a short conditional loop, as real pass
        // code walks a node's operands before classifying it.
        b.block(p)
            .body(3, mix)
            .branch(Cond::Loop { count: scan_trips }, 1, 2);
        // Coarse sanity checks (always true, like `code < MAX_RTX_CODE`):
        // their directions are fixed, but they shift each site's history
        // window differently.
        let mut next = 2usize;
        for _ in 0..extra_preds {
            b.block(p).body(1, mix).branch(
                Cond::Lt {
                    var: node_kind,
                    threshold: 1000,
                },
                next + 1,
                next + 1,
            );
            next += 1;
        }
        // The predicate chain (`GET_CODE (x) == ...` macros). Each tests one
        // bit of the very value the switch dispatches on; both arms rejoin
        // immediately, so each *direction* is one pure bit of the upcoming
        // target for the pattern history register.
        b.block(p).body(2, mix).branch(
            Cond::Bit {
                var: node_kind,
                bit: 0,
            },
            next + 1,
            next + 1,
        );
        b.block(p).body(1, mix).branch(
            Cond::Bit {
                var: node_kind,
                bit: 1,
            },
            next + 2,
            next + 2,
        );
        b.block(p).body(1, mix).branch(
            Cond::Bit {
                var: node_kind,
                bit: 2,
            },
            next + 3,
            next + 3,
        );
        b.block(p).body(1, mix).branch(
            Cond::Bit {
                var: node_kind,
                bit: 3,
            },
            next + 4,
            next + 4,
        );
        // Range checks (`code < FIRST_UNARY`-style tests) — more
        // selector-determined directions, so the newest history bits at the
        // switch are a pure function of the node kind.
        b.block(p).body(1, mix).branch(
            Cond::Lt {
                var: node_kind,
                threshold: 3,
            },
            next + 5,
            next + 5,
        );
        b.block(p).body(1, mix).branch(
            Cond::Lt {
                var: node_kind,
                threshold: 8,
            },
            next + 6,
            next + 6,
        );
        // The dispatch itself.
        b.block(p).body(1, mix).switch(
            Selector::var(node_kind),
            (cases..cases + kinds as usize).collect(),
        );
        debug_assert_eq!(next + 7, cases);
        // Case blocks: handle each node kind.
        for k in 0..kinds {
            let blk = b.block(p).body(3 + (k * 7) % 9, mix);
            if k % 5 == 4 {
                // A few cases take the slow path sometimes (mode-dependent).
                blk.branch(
                    Cond::Eq {
                        var: mode,
                        value: 0,
                    },
                    slow,
                    join,
                );
            } else {
                blk.goto(join);
            }
        }
        // Slow path reached from some cases.
        b.block(p).body(14, mix).goto(join);
        // Join block: loop over a few nodes per call, then return.
        b.block(p)
            .body(4, mix)
            .branch(Cond::Loop { count: 6 }, 0, exit);
        b.block(p).body(2, mix).ret();
    }

    // Language hooks: small leaf routines of differing shapes.
    for (i, &h) in hooks.iter().enumerate() {
        b.block(h).body(4 + 3 * i as u32, mix).ret();
    }

    let program = b.build().expect("gcc model must validate");
    Workload::new("gcc", program, 0xC0_FFEE, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_static_indirect_jump_sites() {
        let stats = workload().generate(300_000).stats();
        // 8 pass switches + 1 indirect call site.
        assert!(
            stats.static_indirect_jumps() >= PASSES,
            "expected at least {PASSES} sites, got {}",
            stats.static_indirect_jumps()
        );
    }

    #[test]
    fn switches_have_many_targets() {
        let stats = workload().generate(300_000).stats();
        let wide_sites = stats
            .indirect_jump_census()
            .values()
            .filter(|c| c.distinct_targets() >= 8)
            .count();
        assert!(
            wide_sites >= 4,
            "only {wide_sites} wide switch sites observed"
        );
    }

    #[test]
    fn conditional_branches_outnumber_indirect_jumps() {
        // The predicate chains before each switch must dominate, as in real
        // compiler code.
        let stats = workload().generate(200_000).stats();
        assert!(stats.branch_count(sim_isa::BranchClass::CondDirect) > 5 * stats.indirect_jumps());
    }

    #[test]
    fn selector_bits_appear_in_conditional_directions() {
        // The correlation hook: the direction of the bit-0 predicate branch
        // must equal bit 0 of the subsequent switch's selected case index.
        // We verify statistically: group switch executions by the direction
        // of the immediately preceding conditional; the target sets should
        // differ strongly.
        use sim_isa::BranchClass;
        use std::collections::HashMap;
        let trace = workload().generate(300_000);
        let mut last_cond_dir = false;
        let mut by_dir: [HashMap<sim_isa::Addr, u64>; 2] = [HashMap::new(), HashMap::new()];
        for i in trace.iter() {
            if let Some(be) = i.branch_exec() {
                match be.class {
                    BranchClass::CondDirect => last_cond_dir = be.taken,
                    BranchClass::IndirectJump => {
                        *by_dir[last_cond_dir as usize].entry(be.target).or_insert(0) += 1;
                    }
                    _ => {}
                }
            }
        }
        // Jaccard-style overlap of the two conditional-direction target
        // multisets should be well below 1.
        let keys: std::collections::HashSet<_> = by_dir[0].keys().chain(by_dir[1].keys()).collect();
        let mut overlap = 0.0;
        let mut total = 0.0;
        for k in keys {
            let a = *by_dir[0].get(k).unwrap_or(&0) as f64;
            let b = *by_dir[1].get(k).unwrap_or(&0) as f64;
            overlap += a.min(b);
            total += a.max(b);
        }
        assert!(
            overlap / total < 0.6,
            "conditional direction carries too little selector information: {}",
            overlap / total
        );
    }
}
