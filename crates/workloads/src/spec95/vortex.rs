//! 147.vortex: an object-oriented database.
//!
//! vortex executes many indirect *calls* — method dispatch through object
//! tables — but each call site is heavily skewed toward one receiver class
//! (the classic "mostly monomorphic" OO profile), so the BTB's last-target
//! prediction is already decent (~12% misprediction). Deep call chains
//! exercise the return address stack, and the transaction loop provides
//! long runs of similar behaviour.

use super::Workload;
use crate::mix::InstrMix;
use crate::program::{Cond, Effect, MarkovChain, ProgramBuilder, RoutineId, Selector};

pub(super) fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let mix = InstrMix::load_heavy();

    let op = b.var();
    let class_a = b.var();
    let class_b = b.var();
    let found = b.var();

    // Transaction kinds: lookups dominate.
    let op_chain = b.chain(MarkovChain::sticky_categorical(
        vec![10.0, 3.0, 2.0, 1.0],
        2.0,
    ));
    // Receiver classes at two dispatch sites: heavily skewed.
    let recv_a = b.chain(MarkovChain::sticky_categorical(vec![18.0, 2.0, 1.0], 1.5));
    let recv_b = b.chain(MarkovChain::sticky_categorical(vec![12.0, 1.0], 1.5));
    let found_chain = b.chain(MarkovChain::sticky(2, 4.0));

    let main = b.routine();
    // Method implementations for the two virtual sites.
    let methods_a: Vec<RoutineId> = (0..3).map(|_| b.routine()).collect();
    let methods_b: Vec<RoutineId> = (0..2).map(|_| b.routine()).collect();
    let tree_walk = b.routine();
    let validate = b.routine();

    // Transaction dispatch is guarded by op-kind tests (`if (op ==
    // UPDATE)` chains) and every virtual call by receiver type guards
    // (null/type checks) — this is what lets pattern history see the
    // receiver class, as it does in real database code.
    // Block 0: fetch the transaction, first op test.
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: op_chain,
            var: op,
        })
        .body(6, mix)
        .branch(Cond::Bit { var: op, bit: 0 }, 6, 6);
    // Block 1: LOOKUP — type guards then the virtual call + tree walk.
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: recv_a,
            var: class_a,
        })
        .body(5, mix)
        .branch(
            Cond::Bit {
                var: class_a,
                bit: 0,
            },
            8,
            8,
        );
    // Block 2: INSERT — two guarded virtual calls (allocate + index update).
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: recv_a,
            var: class_a,
        })
        .effect(Effect::MarkovStep {
            chain: recv_b,
            var: class_b,
        })
        .body(7, mix)
        .branch(
            Cond::Bit {
                var: class_a,
                bit: 0,
            },
            10,
            10,
        );
    // Block 3: DELETE — validation then guarded virtual destructor.
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: recv_b,
            var: class_b,
        })
        .body(4, mix)
        .call(validate)
        .branch(
            Cond::Bit {
                var: class_b,
                bit: 0,
            },
            12,
            12,
        );
    // Block 4: COMMIT — straight-line bookkeeping.
    b.block(main).body(15, mix).goto(5);
    // Block 5: transaction epilogue.
    b.block(main).body(3, mix).goto(0);
    // Block 6..=7: second op test, then the transaction switch.
    b.block(main)
        .body(1, mix)
        .branch(Cond::Bit { var: op, bit: 1 }, 7, 7);
    b.block(main)
        .body(1, mix)
        .switch(Selector::var(op), vec![1, 2, 3, 4]);
    // Blocks 8..=9: LOOKUP's second guard and dispatch.
    b.block(main).body(1, mix).branch(
        Cond::Bit {
            var: class_a,
            bit: 1,
        },
        9,
        9,
    );
    b.block(main)
        .body(1, mix)
        .call_indirect(Selector::var(class_a), methods_a.clone())
        .call(tree_walk)
        .goto(5);
    // Blocks 10..=11: INSERT's dispatches (second guarded by class_b).
    b.block(main)
        .body(1, mix)
        .call_indirect(Selector::var(class_a), methods_a.clone())
        .branch(
            Cond::Bit {
                var: class_b,
                bit: 0,
            },
            11,
            11,
        );
    b.block(main)
        .body(1, mix)
        .call_indirect(Selector::var(class_b), methods_b.clone())
        .goto(5);
    // Block 12: DELETE's dispatch.
    b.block(main)
        .body(1, mix)
        .call_indirect(Selector::var(class_b), methods_b.clone())
        .goto(5);

    // Method bodies: leaf-ish routines of differing shapes.
    for (i, &m) in methods_a.iter().enumerate() {
        b.block(m).body(4 + 4 * i as u32, mix).call(validate).ret();
    }
    for (i, &m) in methods_b.iter().enumerate() {
        b.block(m).body(6 + 3 * i as u32, mix).ret();
    }

    // B-tree walk: a found/not-found probe loop (deepens call chains).
    b.block(tree_walk)
        .effect(Effect::MarkovStep {
            chain: found_chain,
            var: found,
        })
        .body(5, mix)
        .branch(
            Cond::Eq {
                var: found,
                value: 0,
            },
            1,
            2,
        );
    b.block(tree_walk)
        .body(3, mix)
        .branch(Cond::Loop { count: 4 }, 0, 2);
    b.block(tree_walk).ret();

    // Field validation: short leaf.
    b.block(validate).body(5, mix).ret();

    let program = b.build().expect("vortex model must validate");
    Workload::new("vortex", program, 0xBEEF_1234, 1_200_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::BranchClass;

    #[test]
    fn indirect_calls_dominate_indirect_jumps() {
        let stats = workload().generate(200_000).stats();
        assert!(
            stats.branch_count(BranchClass::IndirectCall)
                > stats.branch_count(BranchClass::IndirectJump)
        );
    }

    #[test]
    fn dispatch_sites_are_mostly_monomorphic() {
        let stats = workload().generate(300_000).stats();
        // Weighted dominant-target share across indirect-call sites should
        // be high (the OO mostly-monomorphic profile).
        let mut dominant = 0u64;
        let mut total = 0u64;
        for c in stats.indirect_jump_census().values() {
            dominant += c.targets.values().max().copied().unwrap_or(0);
            total += c.executions;
        }
        let share = dominant as f64 / total as f64;
        assert!(share > 0.6, "dominant-target share {share}");
    }

    #[test]
    fn deep_call_chains_balance() {
        let stats = workload().generate(200_000).stats();
        let calls =
            stats.branch_count(BranchClass::Call) + stats.branch_count(BranchClass::IndirectCall);
        let rets = stats.branch_count(BranchClass::Return);
        assert!(calls.abs_diff(rets) <= 2, "calls {calls} vs returns {rets}");
    }
}
