//! 124.m88ksim: a Motorola 88100 instruction-set simulator.
//!
//! The hot loop is instruction decode: fetch a simulated opcode, switch on
//! it, execute the handler. The simulated program's opcode stream is
//! bursty — runs of loads, runs of ALU ops — so consecutive dispatches
//! often repeat (BTB right ~63% of the time, mispredicting 37.3% per the
//! paper) but change often enough to hurt. The decode switch's selector is
//! tested by predicate conditionals first (privilege/format checks), giving
//! pattern history solid predictive power.

use super::Workload;
use crate::mix::InstrMix;
use crate::program::{Cond, Effect, MarkovChain, ProgramBuilder, Selector};

/// Opcode classes the decode switch dispatches over.
const OPCODES: usize = 9;

pub(super) fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let mix = InstrMix::integer_heavy();

    let opcode = b.var();
    let trap = b.var();

    // Simulated opcode stream: sticky runs (P(stay) = 14/(14+8) ≈ 0.64).
    let op_chain = b.chain(MarkovChain::sticky(OPCODES, 14.0));
    // Trap/exception state: rare.
    let trap_chain = b.chain(MarkovChain::categorical(vec![50.0, 1.0]));

    let main = b.routine();
    let mem_helper = b.routine(); // simulated memory access
    let alu_helper = b.routine(); // flag computation

    // Block 0: fetch the simulated instruction; privilege/format predicate
    // branches test bits of the opcode (correlation for pattern history);
    // then decode-dispatch.
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: op_chain,
            var: opcode,
        })
        .effect(Effect::MarkovStep {
            chain: trap_chain,
            var: trap,
        })
        .body(7, mix)
        .branch(
            Cond::Bit {
                var: opcode,
                bit: 0,
            },
            1,
            1,
        );
    b.block(main).body(2, mix).branch(
        Cond::Bit {
            var: opcode,
            bit: 2,
        },
        2,
        2,
    );
    // Block 2: the decode switch (handlers are blocks 3..3+OPCODES).
    b.block(main)
        .body(2, mix)
        .switch(Selector::var(opcode), (3..3 + OPCODES).collect());
    // Handlers: loads/stores call the memory helper, ALU ops the flag
    // helper, branches update the simulated PC.
    for k in 0..OPCODES {
        let blk = b.block(main).body(3 + (k as u32 * 5) % 8, mix);
        let join = 3 + OPCODES;
        match k % 3 {
            0 => blk.call(mem_helper).goto(join),
            1 => blk.call(alu_helper).goto(join),
            _ => blk.goto(join),
        };
    }
    // Join block: trap check, then loop.
    b.block(main).body(3, mix).branch(
        Cond::Eq {
            var: trap,
            value: 1,
        },
        4 + OPCODES,
        0,
    );
    // Trap path: rare, long.
    b.block(main).body(25, mix).goto(0);

    // Simulated memory access: TLB-ish probe with a short loop.
    b.block(mem_helper)
        .body(5, InstrMix::load_heavy())
        .branch(Cond::Loop { count: 2 }, 0, 1);
    b.block(mem_helper).ret();

    // Flag computation.
    b.block(alu_helper).body(6, mix).ret();

    let program = b.build().expect("m88ksim model must validate");
    Workload::new("m88ksim", program, 0x88_88_88, 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::BranchClass;

    #[test]
    fn decode_switch_covers_all_opcodes() {
        let stats = workload().generate(300_000).stats();
        let census = stats.indirect_jump_census();
        assert_eq!(census.len(), 1);
        assert_eq!(census.values().next().unwrap().distinct_targets(), OPCODES);
    }

    #[test]
    fn predicate_directions_encode_the_opcode() {
        // The privilege/format checks test opcode bits: given the two
        // preceding conditional directions, the dispatch target's low two
        // selector bits are determined.
        use sim_isa::BranchClass;
        let trace = workload().generate(200_000);
        let mut last_two = [false; 2];
        let mut consistent = 0u64;
        let mut total = 0u64;
        let mut mapping: std::collections::HashMap<(bool, bool), sim_isa::Addr> =
            std::collections::HashMap::new();
        for i in trace.iter() {
            if let Some(b) = i.branch_exec() {
                match b.class {
                    BranchClass::CondDirect => {
                        last_two = [last_two[1], b.taken];
                    }
                    BranchClass::IndirectJump => {
                        // Bits 0 and 2 of the opcode split the 9 targets
                        // into 4 groups; within a group the target varies,
                        // so measure: same predicate pair -> same *group*?
                        // Simplest robust check: the mapping pair->target
                        // repeats far above chance.
                        let e = mapping
                            .entry((last_two[0], last_two[1]))
                            .or_insert(b.target);
                        consistent += (*e == b.target) as u64;
                        *e = b.target;
                        total += 1;
                    }
                    _ => {}
                }
            }
        }
        let rate = consistent as f64 / total as f64;
        // Chance level for 9 targets would be ~0.11 plus stickiness ~0.64;
        // predicate knowledge must push well above stickiness alone.
        assert!(rate > 0.6, "predicate->target consistency {rate}");
    }

    #[test]
    fn dispatch_repeats_at_sticky_rate() {
        // Consecutive same-target rate should sit near the chain's
        // stay probability (~0.64), the property that yields the paper's
        // 37.3% BTB misprediction.
        let trace = workload().generate(400_000);
        let mut last = None;
        let mut same = 0u64;
        let mut total = 0u64;
        for i in trace.iter() {
            if let Some(be) = i.branch_exec() {
                if be.class == BranchClass::IndirectJump {
                    if last == Some(be.target) {
                        same += 1;
                    }
                    total += 1;
                    last = Some(be.target);
                }
            }
        }
        let rate = same as f64 / total as f64;
        assert!((0.5..0.8).contains(&rate), "repeat rate {rate}");
    }
}
