//! 130.li (xlisp): a lisp interpreter.
//!
//! xlisp's `eval` dispatches on the expression type — but lisp programs are
//! overwhelmingly cons cells and symbols, so the dispatch is heavily skewed
//! and the BTB does respectably (10.7% misprediction in Table 1; the paper
//! also notes the 2-bit update strategy *hurts* xlisp). Evaluation recurses
//! (`eval` → `evlist` → `eval`), exercising the return stack, and a
//! garbage-collection pass runs periodically.

use super::Workload;
use crate::mix::InstrMix;
use crate::program::{Cond, Effect, MarkovChain, ProgramBuilder, Selector};

pub(super) fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let mix = InstrMix::load_heavy();

    let expr_type = b.var();
    let builtin = b.var();

    // Expression types: cons-dominated (cons, symbol, fixnum, string,
    // subr, fsubr).
    let type_chain = b.chain(MarkovChain::sticky_categorical(
        vec![24.0, 8.0, 3.0, 1.0, 2.0, 1.0],
        8.0,
    ));
    // Builtin selector when a subr is applied.
    let builtin_chain = b.chain(MarkovChain::sticky(6, 30.0));

    let main = b.routine();
    let evlist = b.routine(); // evaluate an argument list (recursion proxy)
    let apply = b.routine(); // apply a builtin
    let gc = b.routine(); // mark-and-sweep pass

    // Block 0: eval — type-check predicates, then the type dispatch.
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: type_chain,
            var: expr_type,
        })
        .body(5, mix)
        .branch(
            Cond::Eq {
                var: expr_type,
                value: 0,
            },
            1,
            1,
        );
    // Block 1: the eval switch (handlers 2..=7).
    b.block(main)
        .body(2, mix)
        .switch(Selector::var(expr_type), vec![2, 3, 4, 5, 6, 7]);
    // Block 2: cons — evaluate the list then apply.
    b.block(main).body(4, mix).call(evlist).call(apply).goto(8);
    // Block 3: symbol — environment lookup.
    b.block(main).body(7, mix).goto(8);
    // Block 4: fixnum — self-evaluating.
    b.block(main).body(2, mix).goto(8);
    // Block 5: string — self-evaluating.
    b.block(main).body(3, mix).goto(8);
    // Block 6: subr — apply directly.
    b.block(main).body(3, mix).call(apply).goto(8);
    // Block 7: fsubr — special form, more work.
    b.block(main).body(9, mix).goto(8);
    // Block 8: allocation check; run GC every ~400 evals.
    b.block(main)
        .body(3, mix)
        .branch(Cond::Loop { count: 400 }, 0, 9);
    b.block(main).body(5, mix).call(gc).goto(0);

    // evlist: walk the argument list (bounded loop).
    b.block(evlist)
        .body(6, mix)
        .branch(Cond::Loop { count: 3 }, 0, 1);
    b.block(evlist).ret();

    // apply: dispatch over builtins (second, stickier switch).
    b.block(apply)
        .effect(Effect::MarkovStep {
            chain: builtin_chain,
            var: builtin,
        })
        .body(3, mix)
        .switch(Selector::var(builtin), vec![1, 2, 3, 4, 5, 6]);
    for k in 0..6u32 {
        b.block(apply).body(2 + (k * 3) % 6, mix).goto(7);
    }
    b.block(apply).ret();

    // gc: long mark loop then sweep loop.
    b.block(gc)
        .body(8, mix)
        .branch(Cond::Loop { count: 20 }, 0, 1);
    b.block(gc)
        .body(6, mix)
        .branch(Cond::Loop { count: 10 }, 0, 2);
    b.block(gc).ret();

    let program = b.build().expect("xlisp model must validate");
    Workload::new("xlisp", program, 0x0715_9A3B, 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_dispatch_is_cons_skewed() {
        let stats = workload().generate(300_000).stats();
        // Find the main eval switch: the site with 6 targets and the most
        // executions.
        let c = stats
            .indirect_jump_census()
            .values()
            .max_by_key(|c| c.executions)
            .unwrap();
        let dominant = *c.targets.values().max().unwrap();
        let share = dominant as f64 / c.executions as f64;
        assert!((0.45..0.85).contains(&share), "cons share {share}");
    }

    #[test]
    fn two_dispatch_sites() {
        let stats = workload().generate(200_000).stats();
        assert_eq!(
            stats.static_indirect_jumps(),
            2,
            "eval switch + apply switch"
        );
    }

    #[test]
    fn apply_dispatch_is_stickier_than_eval_dispatch() {
        use sim_isa::BranchClass;
        use std::collections::HashMap;
        let trace = workload().generate(300_000);
        let stats = trace.stats();
        // Identify the two sites and their consecutive-repeat rates.
        let mut last: HashMap<sim_isa::Addr, sim_isa::Addr> = HashMap::new();
        let mut same: HashMap<sim_isa::Addr, u64> = HashMap::new();
        let mut total: HashMap<sim_isa::Addr, u64> = HashMap::new();
        for i in trace.iter() {
            if let Some(b) = i.branch_exec() {
                if b.class == BranchClass::IndirectJump {
                    if last.get(&i.pc()) == Some(&b.target) {
                        *same.entry(i.pc()).or_insert(0) += 1;
                    }
                    *total.entry(i.pc()).or_insert(0) += 1;
                    last.insert(i.pc(), b.target);
                }
            }
        }
        let mut rates: Vec<f64> = stats
            .indirect_jump_census()
            .keys()
            .map(|pc| *same.get(pc).unwrap_or(&0) as f64 / *total.get(pc).unwrap() as f64)
            .collect();
        rates.sort_by(f64::total_cmp);
        assert_eq!(rates.len(), 2);
        assert!(rates[1] > rates[0], "one site must be stickier: {rates:?}");
        assert!(rates[1] > 0.8, "apply dispatch is very sticky: {rates:?}");
    }

    #[test]
    fn gc_runs_periodically() {
        use sim_isa::BranchClass;
        let trace = workload().generate(500_000);
        let stats = trace.stats();
        // Calls exist and balance with returns.
        assert!(stats.branch_count(BranchClass::Call) > 1000);
        assert!(
            stats
                .branch_count(BranchClass::Call)
                .abs_diff(stats.branch_count(BranchClass::Return))
                <= 2
        );
    }
}
