//! The eight SPECint95-like benchmark models.
//!
//! Each module builds a synthetic [`Program`] whose control-flow statistics
//! are calibrated to the paper's characterization of the corresponding
//! SPECint95 benchmark (Table 1 and Figures 1–8): the rough fraction of
//! branches and indirect jumps, the number of static indirect-jump sites,
//! the per-site target counts, and the history↔target correlation structure
//! that determines how predictable the jumps are:
//!
//! | Benchmark  | Modelled as | BTB indirect mispred (paper) |
//! |------------|-------------|------------------------------|
//! | `compress` | LZW coder: sticky hash-hit loop, near-monomorphic dispatch | low (~14%) |
//! | `gcc`      | many switch statements over IR node kinds; conditionals test the same value | 66.0% |
//! | `go`       | board evaluator: tactical dispatch with weakly-correlated data | ~38% |
//! | `ijpeg`    | DCT kernels: fixed-trip loops, skewed color-space dispatch | ~12% |
//! | `m88ksim`  | CPU simulator: decode switch over a sticky opcode stream | 37.3% |
//! | `perl`     | interpreter: dispatch driven by a repeating token cycle | 76.2% |
//! | `vortex`   | OO database: skewed virtual calls, deep call chains | ~12% |
//! | `xlisp`    | lisp eval: mostly-cons dispatch, recursive evaluation | ~11% |

mod compress;
mod gcc;
mod go;
mod ijpeg;
mod m88ksim;
mod perl;
mod vortex;
mod xlisp;

use crate::exec::Executor;
use crate::program::Program;
use sim_isa::VecTrace;
use std::fmt;

/// Version of the workload generators, part of the trace store's cache
/// key. Bump this whenever any change — to a benchmark model, the
/// executor, or the vendored RNG — alters the instructions a
/// `(benchmark, seed, budget)` triple generates, so stale cached traces
/// become unreachable instead of silently wrong.
pub const GENERATOR_VERSION: u16 = 1;

/// A benchmark model: a program plus the seed and default trace length that
/// define its canonical run.
#[derive(Clone, Debug)]
pub struct Workload {
    name: &'static str,
    program: Program,
    seed: u64,
    default_budget: usize,
}

impl Workload {
    pub(crate) fn new(
        name: &'static str,
        program: Program,
        seed: u64,
        default_budget: usize,
    ) -> Self {
        Workload {
            name,
            program,
            seed,
            default_budget,
        }
    }

    /// The benchmark's name ("perl", "gcc", ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The underlying synthetic program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The canonical trace length used by the experiment harness.
    pub fn default_budget(&self) -> usize {
        self.default_budget
    }

    /// The canonical generator seed. Together with the program (named by
    /// the benchmark), the budget, and [`GENERATOR_VERSION`] this fully
    /// determines a generated trace — which is exactly the content
    /// address the `sim-trace` store caches under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the first `budget` instructions of the canonical run.
    pub fn generate(&self, budget: usize) -> VecTrace {
        Executor::new(&self.program, self.seed).generate(budget)
    }

    /// Generates the canonical trace (`default_budget` instructions).
    pub fn generate_default(&self) -> VecTrace {
        self.generate(self.default_budget)
    }

    /// Generates a truncated canonical run: the first `fraction` of
    /// `budget` instructions (at least one — downstream statistics
    /// normalize by executed counts and an empty trace would leave them
    /// undefined). The prefix is bit-identical to the untruncated run's,
    /// so truncation degrades resolution, never determinism.
    pub fn generate_truncated(&self, budget: usize, fraction: f64) -> VecTrace {
        let kept = (budget as f64 * fraction.clamp(0.0, 1.0)) as usize;
        self.generate(kept.max(1))
    }

    /// Generates a trace with a different seed (for sensitivity studies).
    pub fn generate_seeded(&self, seed: u64, budget: usize) -> VecTrace {
        Executor::new(&self.program, seed).generate(budget)
    }
}

/// The SPECint95 benchmark suite.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Benchmark {
    /// 129.compress — LZW compression.
    Compress,
    /// 126.gcc — C compiler.
    Gcc,
    /// 099.go — go-playing program.
    Go,
    /// 132.ijpeg — JPEG codec.
    Ijpeg,
    /// 124.m88ksim — Motorola 88100 simulator.
    M88ksim,
    /// 134.perl — Perl interpreter.
    Perl,
    /// 147.vortex — object-oriented database.
    Vortex,
    /// 130.li (xlisp) — lisp interpreter.
    Xlisp,
}

impl Benchmark {
    /// All benchmarks, in the paper's Table 1 order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Ijpeg,
        Benchmark::M88ksim,
        Benchmark::Perl,
        Benchmark::Vortex,
        Benchmark::Xlisp,
    ];

    /// The two benchmarks the paper concentrates on ("the two benchmarks
    /// with the largest number of indirect jumps").
    pub const FOCUS: [Benchmark; 2] = [Benchmark::Gcc, Benchmark::Perl];

    /// The benchmark's name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Compress => "compress",
            Benchmark::Gcc => "gcc",
            Benchmark::Go => "go",
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Perl => "perl",
            Benchmark::Vortex => "vortex",
            Benchmark::Xlisp => "xlisp",
        }
    }

    /// The input data set named in the paper's Table 1 (documentary — this
    /// reproduction synthesizes the workload instead of running it).
    pub fn reference_input(self) -> &'static str {
        match self {
            Benchmark::Compress => "test.in",
            Benchmark::Gcc => "jump.i",
            Benchmark::Go => "2stone9.in (9 levels)",
            Benchmark::Ijpeg => "specmun.ppm (quality 50)",
            Benchmark::M88ksim => "dcrand.train.big",
            Benchmark::Perl => "scrabbl.pl",
            Benchmark::Vortex => "vortex.in",
            Benchmark::Xlisp => "train.lsp",
        }
    }

    /// Looks up a benchmark by its printed name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Builds the benchmark's workload model.
    pub fn workload(self) -> Workload {
        match self {
            Benchmark::Compress => compress::workload(),
            Benchmark::Gcc => gcc::workload(),
            Benchmark::Go => go::workload(),
            Benchmark::Ijpeg => ijpeg::workload(),
            Benchmark::M88ksim => m88ksim::workload(),
            Benchmark::Perl => perl::workload(),
            Benchmark::Vortex => vortex::workload(),
            Benchmark::Xlisp => xlisp::workload(),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_builds_and_generates() {
        for bench in Benchmark::ALL {
            let w = bench.workload();
            assert_eq!(w.name(), bench.name());
            let trace = w.generate(5_000);
            assert_eq!(trace.len(), 5_000, "{bench}");
            let stats = trace.stats();
            assert!(stats.branches() > 0, "{bench} has no branches");
        }
    }

    #[test]
    fn every_benchmark_has_indirect_jumps() {
        for bench in Benchmark::ALL {
            let stats = bench.workload().generate(50_000).stats();
            assert!(stats.indirect_jumps() > 0, "{bench} has no indirect jumps");
        }
    }

    #[test]
    fn traces_are_sequentially_consistent() {
        for bench in Benchmark::ALL {
            let trace = bench.workload().generate(30_000);
            let mut prev: Option<sim_isa::Addr> = None;
            for i in trace.iter() {
                if let Some(expected) = prev {
                    assert_eq!(i.pc(), expected, "{bench}: discontinuity at {i:?}");
                }
                prev = Some(i.next_pc());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_benchmark() {
        for bench in [Benchmark::Perl, Benchmark::Gcc, Benchmark::Vortex] {
            let a = bench.workload().generate(20_000);
            let b = bench.workload().generate(20_000);
            assert_eq!(a, b, "{bench}");
        }
    }

    #[test]
    fn focus_benchmarks_have_the_most_indirect_jumps() {
        // gcc and perl are the paper's focus because they execute the most
        // indirect jumps; our models must preserve that ordering property
        // at least against the low-indirect benchmarks.
        let frac = |b: Benchmark| {
            let s = b.workload().generate(60_000).stats();
            s.indirect_jump_fraction()
        };
        let perl = frac(Benchmark::Perl);
        let gcc = frac(Benchmark::Gcc);
        let compress = frac(Benchmark::Compress);
        let ijpeg = frac(Benchmark::Ijpeg);
        assert!(perl > compress, "perl {perl} vs compress {compress}");
        assert!(gcc > compress, "gcc {gcc} vs compress {compress}");
        assert!(perl > ijpeg);
        assert!(gcc > ijpeg);
    }

    #[test]
    fn branch_fraction_is_plausible() {
        // SPECint branch fractions are roughly 10-30% of instructions.
        for bench in Benchmark::ALL {
            let s = bench.workload().generate(50_000).stats();
            let frac = s.branches() as f64 / s.instructions() as f64;
            assert!(
                (0.05..0.40).contains(&frac),
                "{bench}: branch fraction {frac} out of plausible range"
            );
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Perl.to_string(), "perl");
        assert_eq!(Benchmark::M88ksim.to_string(), "m88ksim");
    }

    #[test]
    fn from_name_roundtrips() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("spice"), None);
    }
}
