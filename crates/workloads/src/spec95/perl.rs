//! 134.perl: a script interpreter.
//!
//! "The main loop of the interpreter parses the perl script to be executed.
//! This parser consists of a set of indirect jumps whose targets are decided
//! by the tokens which make up the current line of the perl script. The perl
//! script used for our simulations contains a loop that executes for many
//! iterations. As a result, when the interpreter executes this loop, the
//! interpreter will process the same sequence of tokens for many iterations.
//! By capturing the path history in this situation, the target cache is able
//! to accurately predict the targets of the indirect jumps which process
//! these tokens." (Section 4.2.3)
//!
//! The model: the script's hot loop is a fixed 24-token cycle over 12
//! distinct operator kinds. The interpreter's main dispatch switch follows
//! the cycle, so its target changes on almost every iteration — a BTB's
//! last-target prediction is nearly always wrong (the paper measures
//! 76.2%), while the token sequence is perfectly periodic, so path history
//! over past dispatch targets pins down the position in the cycle exactly.
//! A secondary, stickier dispatch (string-ops) contributes the
//! easier-to-predict minority of indirect jumps. Handlers perform a few
//! data-dependent (Bernoulli) conditionals that no history can learn,
//! diluting *pattern* history's view — which is why path history beats
//! pattern history on perl, as the paper found.

use super::Workload;
use crate::mix::InstrMix;
use crate::program::{Cond, Effect, MarkovChain, ProgramBuilder, Selector};

pub(super) fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let token = b.var();
    let strop = b.var();
    let datum = b.var();

    // The scrabbl.pl hot loop as a token stream: 24 tokens over 12 operator
    // kinds. Several kinds appear at multiple positions with different
    // successors, which is exactly what defeats last-target prediction.
    let stream = b.cycle(vec![
        0, 1, 1, 2, 3, 1, 4, 4, 5, 3, 6, 1, 2, 2, 7, 8, 3, 3, 9, 1, 4, 10, 5, 5, 3, 11, 6, 2, 3, 3,
    ]);
    // String-op selector: sticky (mostly repeated concat/match on the same
    // string kind).
    let strop_chain = b.chain(MarkovChain::sticky(5, 12.0));
    // Interpreter-internal data (hash occupancy, ref counts): uncorrelated.
    let data_chain = b.chain(MarkovChain::uniform(16));

    let main = b.routine();
    let sv_helper = b.routine(); // scalar-value bookkeeping
    let str_helper = b.routine(); // string buffer management
                                  // Per-operator helper routines ("pp_push", "pp_add", ...): real perl
                                  // calls a pp_* function per op, which makes the call/return stream a
                                  // fingerprint of the recent op sequence (the Call/ret path filter
                                  // depends on this).
    let pp: Vec<_> = (0..8).map(|_| b.routine()).collect();

    let mix = InstrMix::load_heavy();

    // main block 0: fetch the next token, dispatch on it.
    // Handlers for the 12 operator kinds are blocks 1..=12.
    b.block(main)
        .effect(Effect::CycleNext {
            cycle: stream,
            var: token,
        })
        .effect(Effect::MarkovStep {
            chain: data_chain,
            var: datum,
        })
        .body(9, mix)
        .switch(Selector::var(token), (1..=12).collect());

    // Handlers. Each does some work and returns to the dispatch loop
    // (block 0). Most end with a *token-fingerprint* conditional — a test
    // of a bit of the token they handle, whose direction is therefore
    // constant per handler. Real interpreter handlers branch in
    // characteristic ways; these fingerprints are what let *pattern*
    // history identify the position in the token stream (though less
    // reliably than path history, because a few handlers also execute
    // data-dependent branches).
    // 1: PUSH
    b.block(main)
        .body(4, mix)
        .call(pp[0])
        .branch(Cond::Bit { var: token, bit: 0 }, 0, 0);
    // 2: FETCH — hash lookup with a data-dependent hit/miss branch.
    b.block(main)
        .body(4, mix)
        .call(pp[6])
        .branch(Cond::Bit { var: datum, bit: 0 }, 13, 0);
    // 3: ADD
    b.block(main)
        .body(3, InstrMix::integer_heavy())
        .call(pp[1])
        .branch(Cond::Bit { var: token, bit: 1 }, 0, 0);
    // 4: ASSIGN — calls the scalar-value helper.
    b.block(main)
        .body(4, mix)
        .call(sv_helper)
        .branch(Cond::Bit { var: token, bit: 0 }, 0, 0);
    // 5: CONST
    b.block(main)
        .body(2, mix)
        .call(pp[2])
        .branch(Cond::Bit { var: token, bit: 2 }, 0, 0);
    // 6: MUL
    b.block(main)
        .body(4, InstrMix::integer_heavy())
        .call(pp[3])
        .branch(Cond::Bit { var: token, bit: 0 }, 0, 0);
    // 7: COND — interpreter-level conditional op (noisy direction).
    b.block(main)
        .body(2, mix)
        .call(pp[7])
        .branch(Cond::Bernoulli { p: 0.3 }, 13, 0);
    // 8: STRCAT — secondary dispatch over string-op kinds (blocks 15..=19).
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: strop_chain,
            var: strop,
        })
        .body(5, mix)
        .switch(Selector::var(strop), (15..=19).collect());
    // 9: INCR
    b.block(main)
        .body(1, InstrMix::integer_heavy())
        .call(pp[4])
        .branch(Cond::Bit { var: token, bit: 3 }, 0, 0);
    // 10: MATCH — calls the string helper, direction noise.
    b.block(main)
        .body(8, mix)
        .call(str_helper)
        .branch(Cond::Bernoulli { p: 0.15 }, 14, 0);
    // 11: PRINT
    b.block(main)
        .body(7, mix)
        .call(pp[5])
        .branch(Cond::Bit { var: token, bit: 1 }, 0, 0);
    // 12: LOOPCTL — loop bookkeeping with a long-period exit branch.
    b.block(main)
        .body(3, mix)
        .branch(Cond::Loop { count: 200 }, 0, 14);

    // 13: hash-miss / false-branch slow path.
    b.block(main).body(12, mix).goto(0);
    // 14: rare outer-loop maintenance (symbol table growth, GC nudge).
    b.block(main).body(20, mix).call(sv_helper).goto(0);

    // 15..=19: string-op bodies of varying length, with their own
    // fingerprints on the string-op kind.
    b.block(main)
        .body(5, mix)
        .branch(Cond::Bit { var: strop, bit: 0 }, 0, 0);
    b.block(main)
        .body(8, mix)
        .branch(Cond::Bit { var: strop, bit: 1 }, 0, 0);
    b.block(main)
        .body(3, mix)
        .branch(Cond::Bit { var: strop, bit: 0 }, 0, 0);
    b.block(main)
        .body(11, mix)
        .branch(Cond::Bit { var: strop, bit: 1 }, 0, 0);
    b.block(main)
        .body(6, mix)
        .branch(Cond::Bit { var: strop, bit: 0 }, 0, 0);

    // Scalar-value helper: small loop over reference counts.
    b.block(sv_helper)
        .body(4, mix)
        .branch(Cond::Loop { count: 3 }, 0, 1);
    b.block(sv_helper).body(2, mix).ret();

    // String helper: length-dependent copy loop.
    b.block(str_helper)
        .body(6, mix)
        .branch(Cond::Loop { count: 5 }, 0, 1);
    b.block(str_helper).ret();

    // pp_* operator bodies: small straight-line leaves of distinct sizes.
    for (i, &r) in pp.iter().enumerate() {
        b.block(r).body(3 + 2 * i as u32, mix).ret();
    }

    let program = b.build().expect("perl model must validate");
    Workload::new("perl", program, 0x9E5C_0FAE, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::BranchClass;

    #[test]
    fn dispatch_follows_the_token_cycle() {
        let w = workload();
        let trace = w.generate(100_000);
        let stats = trace.stats();
        // The main dispatch plus the string-op dispatch: exactly 2 static
        // indirect jump sites.
        assert_eq!(stats.static_indirect_jumps(), 2);
        // The main dispatch must exhibit many distinct targets.
        let max_targets = stats
            .indirect_jump_census()
            .values()
            .map(|c| c.distinct_targets())
            .max()
            .unwrap();
        assert!(max_targets >= 10, "main dispatch saw {max_targets} targets");
    }

    #[test]
    fn indirect_jump_fraction_is_interpreter_like() {
        let stats = workload().generate(200_000).stats();
        let f = stats.indirect_jump_fraction();
        assert!((0.005..0.06).contains(&f), "indirect fraction {f}");
    }

    #[test]
    fn consecutive_dispatch_targets_rarely_repeat() {
        // The property that breaks the BTB: the dominant dispatch site's
        // target changes nearly every execution.
        let trace = workload().generate(200_000);
        let mut last = None;
        let mut same = 0u64;
        let mut total = 0u64;
        // Find the busiest site.
        let stats = trace.stats();
        let (&site, _) = stats
            .indirect_jump_census()
            .iter()
            .max_by_key(|(_, c)| c.executions)
            .unwrap();
        for i in trace.iter() {
            if let Some(be) = i.branch_exec() {
                if i.pc() == site && be.class == BranchClass::IndirectJump {
                    if last == Some(be.target) {
                        same += 1;
                    }
                    total += 1;
                    last = Some(be.target);
                }
            }
        }
        let repeat_rate = same as f64 / total as f64;
        assert!(
            repeat_rate < 0.25,
            "dispatch repeats too often: {repeat_rate}"
        );
    }

    #[test]
    fn calls_and_returns_are_present() {
        let stats = workload().generate(100_000).stats();
        let calls = stats.branch_count(BranchClass::Call);
        let returns = stats.branch_count(BranchClass::Return);
        assert!(calls > 100);
        // The trace truncates at the budget, so calls still on the stack
        // at cutoff have no matching return; the perl model's call chains
        // are shallow (main → helper → leaf), so the imbalance is tiny.
        assert!(returns <= calls, "{returns} returns vs {calls} calls");
        assert!(
            calls - returns <= 4,
            "unbalanced beyond stack depth: {calls} calls, {returns} returns"
        );
    }
}
