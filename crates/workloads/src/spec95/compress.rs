//! 129.compress: LZW compression.
//!
//! compress executes almost no indirect jumps (Figure 1 shows nearly all of
//! its indirect-jump sites have a single dynamic target). The hot code is a
//! hash-table probe loop with data-dependent hit/miss conditionals. The one
//! meaningful dispatch — output-mode selection — is overwhelmingly
//! monomorphic, so the BTB's last-target prediction already works well and
//! the target cache has little to add (matching the paper, where compress
//! sees essentially no execution-time benefit).

use super::Workload;
use crate::mix::InstrMix;
use crate::program::{Cond, Effect, MarkovChain, ProgramBuilder, Selector};

pub(super) fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let mix = InstrMix::integer_heavy();

    let hash_hit = b.var();
    let out_mode = b.var();

    // Hash-probe outcomes: stickily alternating between runs of hits and
    // the occasional miss burst.
    let hit_chain = b.chain(MarkovChain::sticky(4, 6.0));
    // Output mode: almost always state 0 (emit code), very rarely state 1
    // (table reset) or 2 (flush).
    let mode_chain = b.chain(MarkovChain::categorical(vec![60.0, 1.0, 1.0]));

    let main = b.routine();
    let putcode = b.routine();

    // Block 0: read a byte, hash it, probe.
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: hit_chain,
            var: hash_hit,
        })
        .body(8, mix)
        .branch(
            Cond::Lt {
                var: hash_hit,
                threshold: 3,
            },
            1,
            2,
        );
    // Block 1: hash hit — extend the current string (fast path).
    b.block(main).body(5, mix).goto(3);
    // Block 2: hash miss — emit code, insert new entry (slow path).
    b.block(main).body(13, mix).call(putcode).goto(3);
    // Block 3: inner-loop bookkeeping, loop most of the time.
    b.block(main)
        .body(4, mix)
        .branch(Cond::Loop { count: 48 }, 0, 4);
    // Block 4: per-block output dispatch (near-monomorphic switch).
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: mode_chain,
            var: out_mode,
        })
        .body(6, mix)
        .switch(Selector::var(out_mode), vec![5, 6, 7]);
    // Block 5: normal emit. 6: table reset. 7: flush.
    b.block(main).body(7, mix).goto(0);
    b.block(main).body(22, mix).goto(0);
    b.block(main).body(11, mix).goto(0);

    // putcode: bit-packing helper with a short loop.
    b.block(putcode)
        .body(
            3,
            InstrMix {
                weights: [30, 0, 0, 0, 10, 12, 40],
            },
        )
        .branch(Cond::Loop { count: 2 }, 0, 1);
    b.block(putcode).ret();

    let program = b.build().expect("compress model must validate");
    Workload::new("compress", program, 0x1F2E_3D4C, 800_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indirect_jumps_are_rare_and_mostly_monomorphic() {
        let stats = workload().generate(200_000).stats();
        assert!(
            stats.indirect_jump_fraction() < 0.01,
            "{}",
            stats.indirect_jump_fraction()
        );
        // The single dispatch site sees its dominant target most of the time.
        let census = stats.indirect_jump_census();
        assert_eq!(census.len(), 1);
        let c = census.values().next().unwrap();
        let dominant = *c.targets.values().max().unwrap();
        assert!(
            dominant as f64 / c.executions as f64 > 0.85,
            "dispatch should be near-monomorphic: {dominant}/{}",
            c.executions
        );
    }

    #[test]
    fn integer_heavy_mix() {
        use sim_isa::InstrClass;
        let stats = workload().generate(100_000).stats();
        let int_frac = (stats.class_count(InstrClass::Integer)
            + stats.class_count(InstrClass::BitField)) as f64
            / stats.instructions() as f64;
        assert!(int_frac > 0.3, "compress is ALU-bound, got {int_frac}");
        let fp_frac = stats.class_count(InstrClass::FpAdd) as f64 / stats.instructions() as f64;
        assert!(fp_frac < 0.03, "compress has no FP, got {fp_frac}");
    }

    #[test]
    fn seed_changes_data_not_structure() {
        let w = workload();
        let a = w.generate_seeded(1, 50_000).stats();
        let b = w.generate_seeded(2, 50_000).stats();
        assert_eq!(a.static_indirect_jumps(), b.static_indirect_jumps());
        // Dynamic counts stay in the same ballpark.
        let ratio = a.indirect_jumps() as f64 / b.indirect_jumps().max(1) as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "indirect volume unstable: {ratio}"
        );
    }

    #[test]
    fn hot_loop_dominates() {
        let stats = workload().generate(100_000).stats();
        // The 48-iteration inner loop means conditional branches dominate
        // control flow.
        assert!(
            stats.branch_count(sim_isa::BranchClass::CondDirect) as f64 / stats.branches() as f64
                > 0.5
        );
    }
}
