//! 132.ijpeg: JPEG compression.
//!
//! ijpeg is kernel code: fixed-trip-count DCT/quantization loops dominated
//! by multiplies, with very few indirect jumps — a component-dispatch
//! switch that is heavily skewed toward the luma path. Conditionals are
//! loop back-edges (perfectly predictable), indirect jumps are rare and
//! mostly monomorphic (~12% BTB misprediction), so the target cache buys
//! almost nothing here, as the paper found.

use super::Workload;
use crate::mix::InstrMix;
use crate::program::{Cond, Effect, MarkovChain, ProgramBuilder, Selector};

pub(super) fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let dct_mix = InstrMix::multiply_heavy();
    let mix = InstrMix::integer_heavy();

    let component = b.var();
    let quality = b.var();

    // Component stream: luma-dominated (4:2:0-ish — Y, Y, Y, Y, Cb, Cr).
    let comp_chain = b.chain(MarkovChain::sticky_categorical(vec![8.0, 1.0, 1.0], 1.5));
    // Quantizer decisions: mildly varying.
    let q_chain = b.chain(MarkovChain::sticky(4, 5.0));

    let main = b.routine();
    let dct = b.routine();
    let huff = b.routine();

    // Block 0: per-MCU loop: pick the component, dispatch.
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: comp_chain,
            var: component,
        })
        .body(5, mix)
        .switch(Selector::var(component), vec![1, 2, 3]);
    // Blocks 1..=3: per-component processing (luma does more work).
    b.block(main).body(8, dct_mix).call(dct).call(huff).goto(4);
    b.block(main).body(4, dct_mix).call(dct).goto(4);
    b.block(main).body(4, dct_mix).call(dct).goto(4);
    // Block 4: row bookkeeping.
    b.block(main)
        .effect(Effect::MarkovStep {
            chain: q_chain,
            var: quality,
        })
        .body(3, mix)
        .branch(
            Cond::Lt {
                var: quality,
                threshold: 3,
            },
            0,
            5,
        );
    // Block 5: rare re-quantization path.
    b.block(main).body(10, dct_mix).goto(0);

    // DCT: two nested fixed-trip loops (8x8), multiply-heavy.
    b.block(dct)
        .body(9, dct_mix)
        .branch(Cond::Loop { count: 8 }, 0, 1);
    b.block(dct)
        .body(2, dct_mix)
        .branch(Cond::Loop { count: 8 }, 0, 2);
    b.block(dct).ret();

    // Huffman: bit-twiddling with a short data loop.
    b.block(huff)
        .body(
            6,
            InstrMix {
                weights: [25, 0, 0, 0, 15, 10, 50],
            },
        )
        .branch(Cond::Loop { count: 5 }, 0, 1);
    b.block(huff).ret();

    let program = b.build().expect("ijpeg model must validate");
    Workload::new("ijpeg", program, 0x1111_2222, 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::InstrClass;

    #[test]
    fn multiply_heavy_kernels() {
        let stats = workload().generate(100_000).stats();
        let mul_frac = stats.class_count(InstrClass::Mul) as f64 / stats.instructions() as f64;
        assert!(
            mul_frac > 0.05,
            "ijpeg should multiply a lot, got {mul_frac}"
        );
    }

    #[test]
    fn dispatch_is_luma_skewed() {
        let stats = workload().generate(200_000).stats();
        let census = stats.indirect_jump_census();
        assert_eq!(census.len(), 1);
        let c = census.values().next().unwrap();
        let dominant = *c.targets.values().max().unwrap();
        let skew = dominant as f64 / c.executions as f64;
        assert!((0.6..0.95).contains(&skew), "luma skew {skew}");
    }

    #[test]
    fn loop_backedges_dominate_conditionals() {
        // The DCT's fixed-trip loops: conditional branches are mostly
        // taken (back edges), the hallmark of kernel code.
        let trace = workload().generate(100_000);
        let mut taken = 0u64;
        let mut total = 0u64;
        for i in trace.iter() {
            if let Some(b) = i.branch_exec() {
                if b.class == sim_isa::BranchClass::CondDirect {
                    taken += b.taken as u64;
                    total += 1;
                }
            }
        }
        let rate = taken as f64 / total as f64;
        assert!(rate > 0.6, "ijpeg back-edge taken rate {rate}");
    }

    #[test]
    fn indirect_jumps_are_rare() {
        let stats = workload().generate(100_000).stats();
        assert!(stats.indirect_jump_fraction() < 0.01);
    }
}
