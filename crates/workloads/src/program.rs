//! The synthetic program model: routines, basic blocks, terminators, and
//! the deterministic value streams that drive control flow.
//!
//! A [`Program`] is a set of routines, each a list of [`Block`]s. A block
//! runs its entry [`Effect`]s (state-variable updates), then its [`Step`]s
//! (filler instructions and calls), then its [`Terminator`] (the block's
//! final control transfer). Conditionals read [`Cond`]s and switches read
//! [`Selector`]s over shared state variables, which are fed by token
//! *cycles* (repeating streams — an interpreter's input), *Markov chains*
//! (correlated categorical data — a compiler's IR node kinds), or uniform
//! random draws. This is what lets workloads express the history↔target
//! correlation the target cache exploits.

use crate::mix::InstrMix;
use sim_isa::Addr;
use std::fmt;

/// Index of a routine within its program. Routine 0 is `main`.
pub type RoutineId = usize;
/// Index of a block within its routine. Block 0 is the routine's entry.
pub type BlockId = usize;
/// Index of a shared state variable.
pub type VarId = usize;
/// Index of a token cycle.
pub type CycleId = usize;
/// Index of a Markov chain.
pub type ChainId = usize;

/// A state-variable update executed when control enters a block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Effect {
    /// Advance a token cycle and store the current token in `var`
    /// (an interpreter reading its input stream).
    CycleNext {
        /// Which cycle to advance.
        cycle: CycleId,
        /// Destination variable.
        var: VarId,
    },
    /// Step a Markov chain and store the new state in `var`.
    MarkovStep {
        /// Which chain to step.
        chain: ChainId,
        /// Destination variable.
        var: VarId,
    },
    /// Advance a token cycle, but with probability `noise_p` substitute a
    /// uniform draw from `0..noise_n` for the token (the cycle still
    /// advances). Models data that is *mostly* periodic — a compiler
    /// re-walking the same IR with small local differences — which is
    /// exactly the regime separating pattern history (robust to
    /// substitution) from path history (derailed by it).
    NoisyCycleNext {
        /// Which cycle to advance.
        cycle: CycleId,
        /// Destination variable.
        var: VarId,
        /// Substitution probability in `[0, 1]`.
        noise_p: f64,
        /// Exclusive upper bound of the substituted draw.
        noise_n: u32,
    },
    /// Draw uniformly from `0..n` into `var` (uncorrelated data).
    Uniform {
        /// Destination variable.
        var: VarId,
        /// Exclusive upper bound of the draw.
        n: u32,
    },
    /// Set `var` to a constant.
    Set {
        /// Destination variable.
        var: VarId,
        /// The constant.
        value: u32,
    },
    /// `var = (var + delta) % modulo` — counters, round-robin cursors.
    AddMod {
        /// Variable updated in place.
        var: VarId,
        /// Increment.
        delta: u32,
        /// Modulus (must be nonzero).
        modulo: u32,
    },
}

/// A boolean condition evaluated by a conditional branch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Cond {
    /// True iff bit `bit` of `var` is set — ties conditional-branch
    /// directions to the same value a later switch dispatches on, creating
    /// pattern-history correlation.
    Bit {
        /// Variable inspected.
        var: VarId,
        /// Bit position.
        bit: u32,
    },
    /// True iff `var < threshold`.
    Lt {
        /// Variable inspected.
        var: VarId,
        /// Threshold.
        threshold: u32,
    },
    /// True iff `var == value`.
    Eq {
        /// Variable inspected.
        var: VarId,
        /// Comparison value.
        value: u32,
    },
    /// A loop back-edge: true (branch back) `count - 1` consecutive times,
    /// then false once, then the counter resets.
    Loop {
        /// Loop trip count (must be nonzero).
        count: u32,
    },
    /// True with probability `p` (an independent seeded stream per block) —
    /// data-dependent branches no history can learn.
    Bernoulli {
        /// Probability of "taken", in `[0, 1]`.
        p: f64,
    },
    /// Always true.
    Always,
    /// Always false.
    Never,
}

/// How a switch (indirect jump) or indirect call picks its target: the
/// value of a state variable, reduced modulo the number of targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Selector {
    /// The variable whose value selects the target.
    pub var: VarId,
}

impl Selector {
    /// Selects on the given variable.
    pub fn var(var: VarId) -> Self {
        Selector { var }
    }
}

/// A non-terminator element of a block's body.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// `count` synthesized non-branch instructions drawn from `mix`.
    Body {
        /// Number of filler instructions.
        count: u32,
        /// Their class mix.
        mix: InstrMix,
    },
    /// A direct call; execution resumes after it when the callee returns.
    Call {
        /// The callee.
        routine: RoutineId,
    },
    /// An indirect call through a function-pointer table.
    CallIndirect {
        /// Selects which routine is called.
        selector: Selector,
        /// The candidate callees (the function-pointer table).
        routines: Vec<RoutineId>,
    },
}

impl Step {
    /// How many instructions this step occupies in the laid-out binary.
    pub fn len(&self) -> u32 {
        match self {
            Step::Body { count, .. } => *count,
            Step::Call { .. } | Step::CallIndirect { .. } => 1,
        }
    }

    /// The routines this step may transfer control to: the single callee of
    /// a direct call, the whole function-pointer table of an indirect call,
    /// and nothing for filler bodies. This is the step half of the static
    /// call graph.
    pub fn callees(&self) -> &[RoutineId] {
        match self {
            Step::Body { .. } => &[],
            Step::Call { routine } => std::slice::from_ref(routine),
            Step::CallIndirect { routines, .. } => routines,
        }
    }

    /// Whether the step emits no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A block's final control transfer.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional direct jump (1 instruction).
    Goto(BlockId),
    /// Conditional branch: `beq taken; goto not_taken` (2 instructions),
    /// exactly the shape of the paper's Figure 9 assembly.
    Branch {
        /// The condition deciding the direction.
        cond: Cond,
        /// Successor when the condition is true.
        taken: BlockId,
        /// Successor when the condition is false.
        not_taken: BlockId,
    },
    /// Indirect jump through a jump table (1 instruction) — the branch the
    /// target cache predicts.
    Switch {
        /// Selects the target.
        selector: Selector,
        /// The jump table (block entries).
        targets: Vec<BlockId>,
    },
    /// Subroutine return (1 instruction).
    Return,
}

impl Terminator {
    /// How many instructions this terminator occupies.
    pub fn len(&self) -> u32 {
        match self {
            Terminator::Branch { .. } => 2,
            _ => 1,
        }
    }

    /// The static successor blocks of this terminator, in declaration
    /// order and *including duplicates* (a jump table may list the same
    /// block several times; the duplicate entries matter to arity metrics).
    /// Returns are successor-less at the block level — their continuations
    /// live in the caller and are exposed by the call graph instead.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(t) => vec![*t],
            Terminator::Branch {
                taken, not_taken, ..
            } => vec![*taken, *not_taken],
            Terminator::Switch { targets, .. } => targets.clone(),
            Terminator::Return => Vec::new(),
        }
    }

    /// Whether the terminator emits no instructions (never: every
    /// terminator is at least one control instruction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A basic block (relaxed: may contain calls mid-block).
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// State updates applied when control enters the block.
    pub effects: Vec<Effect>,
    /// Body: filler instructions and calls, in order.
    pub steps: Vec<Step>,
    /// The block's final control transfer.
    pub terminator: Terminator,
}

impl Block {
    /// Total instructions this block occupies.
    pub fn len(&self) -> u32 {
        self.steps.iter().map(Step::len).sum::<u32>() + self.terminator.len()
    }

    /// Whether the block emits no instructions (never true: terminators
    /// always emit at least one).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A routine: a list of blocks, entered at block 0.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Routine {
    /// The routine's blocks. Block 0 is the entry.
    pub blocks: Vec<Block>,
}

/// A Markov chain over `0..states` with a row-stochastic transition matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct MarkovChain {
    /// `rows[s]` are the (unnormalized) transition weights out of state `s`.
    pub rows: Vec<Vec<f64>>,
}

impl MarkovChain {
    /// A chain where every state moves to a uniformly random state.
    pub fn uniform(states: usize) -> Self {
        MarkovChain {
            rows: vec![vec![1.0; states]; states],
        }
    }

    /// A "sticky" chain: stays in the current state with weight
    /// `stickiness`, moves to each other state with weight 1.
    pub fn sticky(states: usize, stickiness: f64) -> Self {
        let mut rows = vec![vec![1.0; states]; states];
        for (s, row) in rows.iter_mut().enumerate() {
            row[s] = stickiness;
        }
        MarkovChain { rows }
    }

    /// A skewed chain: every state moves to state `s` with weight
    /// `weights[s]` regardless of the current state (an i.i.d. categorical
    /// stream).
    pub fn categorical(weights: Vec<f64>) -> Self {
        let states = weights.len();
        MarkovChain {
            rows: vec![weights; states],
        }
    }

    /// A skewed *and* sticky chain: transitions follow `weights`, but every
    /// state keeps an extra self-weight of `stickiness × Σweights`, so
    /// `P(stay) ≈ stickiness / (stickiness + 1)` while the long-run visit
    /// distribution stays skewed toward the heavy states. This is the shape
    /// of real dispatch streams: bursty runs over a skewed alphabet.
    pub fn sticky_categorical(weights: Vec<f64>, stickiness: f64) -> Self {
        let total: f64 = weights.iter().sum();
        let states = weights.len();
        let mut rows = vec![weights; states];
        for (s, row) in rows.iter_mut().enumerate() {
            row[s] += stickiness * total;
        }
        MarkovChain { rows }
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.rows.len()
    }
}

/// A complete synthetic program.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// The routines; routine 0 is `main` and must loop forever.
    pub routines: Vec<Routine>,
    /// Repeating token streams.
    pub cycles: Vec<Vec<u32>>,
    /// Markov chains.
    pub chains: Vec<MarkovChain>,
    /// Number of shared state variables.
    pub vars: usize,
}

/// Base alignment of routine starts, in instruction words.
pub const ROUTINE_ALIGN_WORDS: u64 = 16;
/// Base address of routine 0.
pub const TEXT_BASE_WORDS: u64 = 0x1000;

/// Irregular per-routine padding, in instruction words, inserted before
/// routine `r`. Without this, structurally-identical routines would land at
/// addresses sharing their low bits — a layout pathology real programs do
/// not exhibit, which would make address-hashed predictors (gshare, GAs)
/// artificially degenerate to their address-free counterparts.
pub(crate) fn routine_stagger_words(r: usize) -> u64 {
    32 + (r as u64 * 61) % 397
}

/// Machine-readable category of a structural validation failure found by
/// [`Program::check`]. Static analyzers map these onto stable lint rule
/// IDs; the human-readable detail lives in [`CheckError`]'s `Display`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckCode {
    /// The program has no routines at all.
    NoRoutines,
    /// A routine has no blocks.
    EmptyRoutine,
    /// A token cycle is empty.
    EmptyCycle,
    /// A Markov chain is malformed (no states, ragged rows, or a row that
    /// is not a weight vector).
    BadMarkovChain,
    /// A call or indirect-call table references a routine that does not
    /// exist.
    MissingRoutine,
    /// A routine calls `main` (routine 0).
    CallsMain,
    /// An indirect call has an empty function-pointer table.
    EmptyCallTable,
    /// A terminator targets a block that does not exist in its routine.
    MissingBlock,
    /// A selector, condition, or effect references a missing variable.
    MissingVariable,
    /// An effect references a missing token cycle.
    MissingCycle,
    /// An effect references a missing Markov chain.
    MissingChain,
    /// A probability parameter is outside `[0, 1]`.
    BadProbability,
    /// A uniform or substitution draw has an empty range.
    EmptyRange,
    /// An `AddMod` effect has a zero modulus.
    ZeroModulus,
    /// A loop condition has a zero trip count.
    ZeroTripCount,
    /// A switch has an empty jump table.
    EmptyJumpTable,
    /// `main` (routine 0) can return.
    MainReturns,
}

impl CheckCode {
    /// A short stable name for the code (`missing-block`, `calls-main`, …).
    pub const fn name(self) -> &'static str {
        match self {
            CheckCode::NoRoutines => "no-routines",
            CheckCode::EmptyRoutine => "empty-routine",
            CheckCode::EmptyCycle => "empty-cycle",
            CheckCode::BadMarkovChain => "bad-markov-chain",
            CheckCode::MissingRoutine => "missing-routine",
            CheckCode::CallsMain => "calls-main",
            CheckCode::EmptyCallTable => "empty-call-table",
            CheckCode::MissingBlock => "missing-block",
            CheckCode::MissingVariable => "missing-variable",
            CheckCode::MissingCycle => "missing-cycle",
            CheckCode::MissingChain => "missing-chain",
            CheckCode::BadProbability => "bad-probability",
            CheckCode::EmptyRange => "empty-range",
            CheckCode::ZeroModulus => "zero-modulus",
            CheckCode::ZeroTripCount => "zero-trip-count",
            CheckCode::EmptyJumpTable => "empty-jump-table",
            CheckCode::MainReturns => "main-returns",
        }
    }
}

/// A structural validation failure: a machine-readable [`CheckCode`] plus
/// the human-readable description [`Program::check`] has always produced
/// (the `Display` output is byte-identical to the former bare-`String`
/// error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckError {
    /// What category of problem this is.
    pub code: CheckCode,
    message: String,
}

impl CheckError {
    fn new(code: CheckCode, message: impl Into<String>) -> Self {
        CheckError {
            code,
            message: message.into(),
        }
    }

    /// The human-readable description (what `Display` prints).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CheckError {}

impl From<CheckError> for String {
    fn from(e: CheckError) -> String {
        e.message
    }
}

/// The address layout of a program: where every routine, block, and step
/// lives.
#[derive(Clone, Debug)]
pub struct Layout {
    /// `block_base[r][b]` is the first instruction address of block `b` of
    /// routine `r`.
    pub block_base: Vec<Vec<Addr>>,
    /// `step_offset[r][b][s]` is the instruction offset of step `s` within
    /// its block; the entry one past the last step is the terminator
    /// offset.
    pub step_offset: Vec<Vec<Vec<u32>>>,
}

impl Layout {
    fn compute(program: &Program) -> Layout {
        let mut block_base = Vec::with_capacity(program.routines.len());
        let mut step_offset = Vec::with_capacity(program.routines.len());
        let mut cursor = TEXT_BASE_WORDS;
        for (r, routine) in program.routines.iter().enumerate() {
            // Irregular stagger, then align each routine's start.
            cursor += routine_stagger_words(r);
            cursor = cursor.div_ceil(ROUTINE_ALIGN_WORDS) * ROUTINE_ALIGN_WORDS;
            let mut bases = Vec::with_capacity(routine.blocks.len());
            let mut offsets = Vec::with_capacity(routine.blocks.len());
            for block in &routine.blocks {
                bases.push(Addr::from_word_index(cursor));
                let mut offs = Vec::with_capacity(block.steps.len() + 1);
                let mut off = 0u32;
                for step in &block.steps {
                    offs.push(off);
                    off += step.len();
                }
                offs.push(off); // terminator offset
                offsets.push(offs);
                cursor += block.len() as u64;
            }
            block_base.push(bases);
            step_offset.push(offsets);
        }
        Layout {
            block_base,
            step_offset,
        }
    }

    /// The address of a routine's entry instruction.
    pub fn routine_entry(&self, routine: RoutineId) -> Addr {
        self.block_base[routine][0]
    }

    /// The address of a block's terminator instruction.
    pub fn terminator_addr(&self, routine: RoutineId, block: BlockId) -> Addr {
        let base = self.block_base[routine][block];
        let off = *self.step_offset[routine][block]
            .last()
            .expect("offsets nonempty");
        base.offset(off as u64)
    }

    /// The address of step `step` of a block; `step == steps.len()`
    /// addresses the terminator (the one-past-the-end offset entry).
    pub fn step_addr(&self, routine: RoutineId, block: BlockId, step: usize) -> Addr {
        let base = self.block_base[routine][block];
        let off = self.step_offset[routine][block][step];
        base.offset(off as u64)
    }

    /// How many routines the layout covers.
    pub fn num_routines(&self) -> usize {
        self.block_base.len()
    }

    /// How many blocks routine `routine` has.
    pub fn num_blocks(&self, routine: RoutineId) -> usize {
        self.block_base[routine].len()
    }
}

impl Program {
    /// Validates the program and computes its address layout.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] describing the first structural problem
    /// found: out-of-range block/routine/variable/cycle/chain references,
    /// empty jump tables, empty cycles, zero loop counts, malformed Markov
    /// chains, or a `main` that can return. The `Display` text is the same
    /// human-readable description this method has always produced; the
    /// [`CheckCode`] adds a machine-readable category for lint tooling.
    pub fn check(&self) -> Result<Layout, CheckError> {
        if self.routines.is_empty() {
            return Err(CheckError::new(
                CheckCode::NoRoutines,
                "program has no routines",
            ));
        }
        for (c, cycle) in self.cycles.iter().enumerate() {
            if cycle.is_empty() {
                return Err(CheckError::new(
                    CheckCode::EmptyCycle,
                    format!("cycle {c} is empty"),
                ));
            }
        }
        for (c, chain) in self.chains.iter().enumerate() {
            if chain.states() == 0 {
                return Err(CheckError::new(
                    CheckCode::BadMarkovChain,
                    format!("markov chain {c} has no states"),
                ));
            }
            for (s, row) in chain.rows.iter().enumerate() {
                if row.len() != chain.states() {
                    return Err(CheckError::new(
                        CheckCode::BadMarkovChain,
                        format!("markov chain {c} row {s} has wrong width"),
                    ));
                }
                if row.iter().any(|&w| w < 0.0) || row.iter().sum::<f64>() <= 0.0 {
                    return Err(CheckError::new(
                        CheckCode::BadMarkovChain,
                        format!("markov chain {c} row {s} is not a weight vector"),
                    ));
                }
            }
        }
        for (r, routine) in self.routines.iter().enumerate() {
            if routine.blocks.is_empty() {
                return Err(CheckError::new(
                    CheckCode::EmptyRoutine,
                    format!("routine {r} has no blocks"),
                ));
            }
            for (b, block) in routine.blocks.iter().enumerate() {
                let loc = format!("routine {r} block {b}");
                for e in &block.effects {
                    self.check_effect(e, &loc)?;
                }
                for s in &block.steps {
                    match s {
                        Step::Body { .. } => {}
                        Step::Call { routine } => {
                            if *routine >= self.routines.len() {
                                return Err(CheckError::new(
                                    CheckCode::MissingRoutine,
                                    format!("{loc}: call to missing routine {routine}"),
                                ));
                            }
                            if *routine == 0 {
                                return Err(CheckError::new(
                                    CheckCode::CallsMain,
                                    format!("{loc}: routines may not call main"),
                                ));
                            }
                        }
                        Step::CallIndirect { selector, routines } => {
                            self.check_var(selector.var, &loc)?;
                            if routines.is_empty() {
                                return Err(CheckError::new(
                                    CheckCode::EmptyCallTable,
                                    format!("{loc}: empty indirect-call table"),
                                ));
                            }
                            for &t in routines {
                                if t >= self.routines.len() {
                                    return Err(CheckError::new(
                                        CheckCode::MissingRoutine,
                                        format!("{loc}: indirect call to missing routine {t}"),
                                    ));
                                }
                                if t == 0 {
                                    return Err(CheckError::new(
                                        CheckCode::CallsMain,
                                        format!("{loc}: routines may not call main"),
                                    ));
                                }
                            }
                        }
                    }
                }
                let nblocks = routine.blocks.len();
                let check_block = |target: BlockId, what: &str| {
                    if target >= nblocks {
                        Err(CheckError::new(
                            CheckCode::MissingBlock,
                            format!("{loc}: {what} to missing block {target}"),
                        ))
                    } else {
                        Ok(())
                    }
                };
                match &block.terminator {
                    Terminator::Goto(t) => check_block(*t, "goto")?,
                    Terminator::Branch {
                        cond,
                        taken,
                        not_taken,
                    } => {
                        self.check_cond(cond, &loc)?;
                        check_block(*taken, "branch")?;
                        check_block(*not_taken, "branch fall-through")?;
                    }
                    Terminator::Switch { selector, targets } => {
                        self.check_var(selector.var, &loc)?;
                        if targets.is_empty() {
                            return Err(CheckError::new(
                                CheckCode::EmptyJumpTable,
                                format!("{loc}: empty jump table"),
                            ));
                        }
                        for &t in targets {
                            check_block(t, "switch")?;
                        }
                    }
                    Terminator::Return => {
                        if r == 0 {
                            return Err(CheckError::new(
                                CheckCode::MainReturns,
                                "main (routine 0) may not return; loop with goto instead",
                            ));
                        }
                    }
                }
            }
        }
        Ok(Layout::compute(self))
    }

    fn check_var(&self, var: VarId, loc: &str) -> Result<(), CheckError> {
        if var >= self.vars {
            Err(CheckError::new(
                CheckCode::MissingVariable,
                format!("{loc}: reference to missing variable {var}"),
            ))
        } else {
            Ok(())
        }
    }

    fn check_effect(&self, e: &Effect, loc: &str) -> Result<(), CheckError> {
        match e {
            Effect::CycleNext { cycle, var } => {
                if *cycle >= self.cycles.len() {
                    return Err(CheckError::new(
                        CheckCode::MissingCycle,
                        format!("{loc}: reference to missing cycle {cycle}"),
                    ));
                }
                self.check_var(*var, loc)
            }
            Effect::NoisyCycleNext {
                cycle,
                var,
                noise_p,
                noise_n,
            } => {
                if *cycle >= self.cycles.len() {
                    return Err(CheckError::new(
                        CheckCode::MissingCycle,
                        format!("{loc}: reference to missing cycle {cycle}"),
                    ));
                }
                if !(0.0..=1.0).contains(noise_p) {
                    return Err(CheckError::new(
                        CheckCode::BadProbability,
                        format!("{loc}: noise probability {noise_p} out of range"),
                    ));
                }
                if *noise_n == 0 {
                    return Err(CheckError::new(
                        CheckCode::EmptyRange,
                        format!("{loc}: noisy cycle with empty substitution range"),
                    ));
                }
                self.check_var(*var, loc)
            }
            Effect::MarkovStep { chain, var } => {
                if *chain >= self.chains.len() {
                    return Err(CheckError::new(
                        CheckCode::MissingChain,
                        format!("{loc}: reference to missing chain {chain}"),
                    ));
                }
                self.check_var(*var, loc)
            }
            Effect::Uniform { var, n } => {
                if *n == 0 {
                    return Err(CheckError::new(
                        CheckCode::EmptyRange,
                        format!("{loc}: uniform draw over empty range"),
                    ));
                }
                self.check_var(*var, loc)
            }
            Effect::Set { var, .. } => self.check_var(*var, loc),
            Effect::AddMod { var, modulo, .. } => {
                if *modulo == 0 {
                    return Err(CheckError::new(
                        CheckCode::ZeroModulus,
                        format!("{loc}: AddMod with zero modulus"),
                    ));
                }
                self.check_var(*var, loc)
            }
        }
    }

    fn check_cond(&self, cond: &Cond, loc: &str) -> Result<(), CheckError> {
        match cond {
            Cond::Bit { var, .. } | Cond::Lt { var, .. } | Cond::Eq { var, .. } => {
                self.check_var(*var, loc)
            }
            Cond::Loop { count } => {
                if *count == 0 {
                    Err(CheckError::new(
                        CheckCode::ZeroTripCount,
                        format!("{loc}: loop with zero trip count"),
                    ))
                } else {
                    Ok(())
                }
            }
            Cond::Bernoulli { p } => {
                if (0.0..=1.0).contains(p) {
                    Ok(())
                } else {
                    Err(CheckError::new(
                        CheckCode::BadProbability,
                        format!("{loc}: Bernoulli probability {p} out of range"),
                    ))
                }
            }
            Cond::Always | Cond::Never => Ok(()),
        }
    }
}

/// Incremental builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use sim_workloads::{Cond, ProgramBuilder, Selector, Step, Terminator};
/// use sim_workloads::InstrMix;
///
/// let mut b = ProgramBuilder::new();
/// let token = b.var();
/// let stream = b.cycle(vec![0, 1, 2, 1]);
/// let main = b.routine(); // routine 0 = main
/// // Block 0: read a token, dispatch on it.
/// // (Targets refer to blocks 1..=2 added below.)
/// b.block(main)
///     .effect(sim_workloads::Effect::CycleNext { cycle: stream, var: token })
///     .body(4, InstrMix::integer_heavy())
///     .switch(Selector::var(token), vec![1, 2, 1]);
/// b.block(main).body(2, InstrMix::integer_heavy()).goto(0);
/// b.block(main).body(3, InstrMix::integer_heavy()).goto(0);
/// let program = b.build().unwrap();
/// assert_eq!(program.routines.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    routines: Vec<Routine>,
    cycles: Vec<Vec<u32>>,
    chains: Vec<MarkovChain>,
    vars: usize,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Allocates a state variable.
    pub fn var(&mut self) -> VarId {
        self.vars += 1;
        self.vars - 1
    }

    /// Registers a repeating token cycle.
    pub fn cycle(&mut self, tokens: Vec<u32>) -> CycleId {
        self.cycles.push(tokens);
        self.cycles.len() - 1
    }

    /// Registers a Markov chain.
    pub fn chain(&mut self, chain: MarkovChain) -> ChainId {
        self.chains.push(chain);
        self.chains.len() - 1
    }

    /// Allocates a routine (the first call allocates `main`).
    pub fn routine(&mut self) -> RoutineId {
        self.routines.push(Routine::default());
        self.routines.len() - 1
    }

    /// Starts a block in `routine`; finish it with one of
    /// [`BlockBuilder`]'s terminator methods. Blocks are numbered in the
    /// order they are added.
    ///
    /// # Panics
    ///
    /// Panics if `routine` was not allocated by this builder.
    pub fn block(&mut self, routine: RoutineId) -> BlockBuilder<'_> {
        assert!(routine < self.routines.len(), "unknown routine {routine}");
        BlockBuilder {
            builder: self,
            routine,
            effects: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// Finalizes and validates the program.
    ///
    /// # Errors
    ///
    /// Propagates [`Program::check`]'s structural errors.
    pub fn build(self) -> Result<Program, CheckError> {
        let program = Program {
            routines: self.routines,
            cycles: self.cycles,
            chains: self.chains,
            vars: self.vars,
        };
        program.check()?;
        Ok(program)
    }
}

/// Fluent builder for a single block; terminator methods commit the block
/// to its routine and return its [`BlockId`].
#[derive(Debug)]
pub struct BlockBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    routine: RoutineId,
    effects: Vec<Effect>,
    steps: Vec<Step>,
}

impl BlockBuilder<'_> {
    /// Adds an entry effect.
    #[must_use]
    pub fn effect(mut self, effect: Effect) -> Self {
        self.effects.push(effect);
        self
    }

    /// Adds `count` filler instructions of the given mix.
    #[must_use]
    pub fn body(mut self, count: u32, mix: InstrMix) -> Self {
        self.steps.push(Step::Body { count, mix });
        self
    }

    /// Adds a direct call.
    #[must_use]
    pub fn call(mut self, routine: RoutineId) -> Self {
        self.steps.push(Step::Call { routine });
        self
    }

    /// Adds an indirect call through a function-pointer table.
    #[must_use]
    pub fn call_indirect(mut self, selector: Selector, routines: Vec<RoutineId>) -> Self {
        self.steps.push(Step::CallIndirect { selector, routines });
        self
    }

    fn commit(self, terminator: Terminator) -> BlockId {
        let block = Block {
            effects: self.effects,
            steps: self.steps,
            terminator,
        };
        let routine = &mut self.builder.routines[self.routine];
        routine.blocks.push(block);
        routine.blocks.len() - 1
    }

    /// Ends the block with an unconditional jump.
    pub fn goto(self, target: BlockId) -> BlockId {
        self.commit(Terminator::Goto(target))
    }

    /// Ends the block with a conditional branch.
    pub fn branch(self, cond: Cond, taken: BlockId, not_taken: BlockId) -> BlockId {
        self.commit(Terminator::Branch {
            cond,
            taken,
            not_taken,
        })
    }

    /// Ends the block with an indirect jump through a jump table.
    pub fn switch(self, selector: Selector, targets: Vec<BlockId>) -> BlockId {
        self.commit(Terminator::Switch { selector, targets })
    }

    /// Ends the block with a return.
    pub fn ret(self) -> BlockId {
        self.commit(Terminator::Return)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> InstrMix {
        InstrMix::integer_heavy()
    }

    fn looping_main() -> ProgramBuilder {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).body(2, mix()).goto(0);
        b
    }

    #[test]
    fn minimal_program_builds() {
        let p = looping_main().build().unwrap();
        assert_eq!(p.routines.len(), 1);
        assert_eq!(p.routines[0].blocks[0].len(), 3); // 2 body + goto
    }

    #[test]
    fn main_may_not_return() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).ret();
        assert!(b.build().unwrap_err().to_string().contains("main"));
    }

    #[test]
    fn dangling_block_reference_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).goto(7);
        assert!(b.build().unwrap_err().to_string().contains("missing block"));
    }

    #[test]
    fn dangling_routine_reference_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).call(3).goto(0);
        assert!(b
            .build()
            .unwrap_err()
            .to_string()
            .contains("missing routine"));
    }

    #[test]
    fn calls_to_main_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).call(0).goto(0);
        assert!(b
            .build()
            .unwrap_err()
            .to_string()
            .contains("may not call main"));
    }

    #[test]
    fn empty_jump_table_rejected() {
        let mut b = ProgramBuilder::new();
        let token = b.var();
        let main = b.routine();
        b.block(main).switch(Selector::var(token), vec![]);
        assert!(b
            .build()
            .unwrap_err()
            .to_string()
            .contains("empty jump table"));
    }

    #[test]
    fn missing_variable_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).switch(Selector::var(9), vec![0]);
        assert!(b
            .build()
            .unwrap_err()
            .to_string()
            .contains("missing variable"));
    }

    #[test]
    fn zero_loop_count_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).branch(Cond::Loop { count: 0 }, 0, 0);
        assert!(b
            .build()
            .unwrap_err()
            .to_string()
            .contains("zero trip count"));
    }

    #[test]
    fn bad_bernoulli_rejected() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).branch(Cond::Bernoulli { p: 1.5 }, 0, 0);
        assert!(b.build().unwrap_err().to_string().contains("out of range"));
    }

    #[test]
    fn empty_cycle_rejected() {
        let mut b = looping_main();
        b.cycle(vec![]);
        assert!(b.build().unwrap_err().to_string().contains("cycle"));
    }

    #[test]
    fn noisy_cycle_effect_is_validated() {
        let mut b = ProgramBuilder::new();
        let v = b.var();
        let c = b.cycle(vec![1]);
        let main = b.routine();
        b.block(main)
            .effect(Effect::NoisyCycleNext {
                cycle: c,
                var: v,
                noise_p: 1.5,
                noise_n: 4,
            })
            .goto(0);
        assert!(b
            .build()
            .unwrap_err()
            .to_string()
            .contains("noise probability"));

        let mut b = ProgramBuilder::new();
        let v = b.var();
        let c = b.cycle(vec![1]);
        let main = b.routine();
        b.block(main)
            .effect(Effect::NoisyCycleNext {
                cycle: c,
                var: v,
                noise_p: 0.5,
                noise_n: 0,
            })
            .goto(0);
        assert!(b
            .build()
            .unwrap_err()
            .to_string()
            .contains("empty substitution"));

        let mut b = ProgramBuilder::new();
        let v = b.var();
        let main = b.routine();
        b.block(main)
            .effect(Effect::NoisyCycleNext {
                cycle: 9,
                var: v,
                noise_p: 0.5,
                noise_n: 4,
            })
            .goto(0);
        assert!(b.build().unwrap_err().to_string().contains("missing cycle"));
    }

    #[test]
    fn layout_is_contiguous_within_blocks_and_staggered_across_routines() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        let helper = b.routine();
        b.block(main)
            .body(3, mix())
            .call(helper)
            .body(2, mix())
            .goto(0);
        b.block(helper).body(5, mix()).ret();
        let p = b.build().unwrap();
        let layout = p.check().unwrap();

        // main block 0: offsets [0, 3, 4] then terminator at 6.
        assert_eq!(layout.step_offset[0][0], vec![0, 3, 4, 6]);
        let main_entry = layout.block_base[0][0];
        assert!(main_entry.word_index() >= TEXT_BASE_WORDS);
        assert_eq!(main_entry.word_index() % ROUTINE_ALIGN_WORDS, 0);
        // helper starts aligned, after main's code plus a stagger gap.
        let helper_entry = layout.routine_entry(1);
        assert_eq!(helper_entry.word_index() % ROUTINE_ALIGN_WORDS, 0);
        assert!(helper_entry.word_index() > main_entry.word_index() + 7);
        // terminator address helper: base + 5.
        assert_eq!(
            layout.terminator_addr(1, 0),
            Addr::from_word_index(helper_entry.word_index() + 5)
        );
    }

    #[test]
    fn identically_shaped_routines_get_distinct_low_address_bits() {
        // The stagger must prevent structurally-identical routines from
        // sharing their low address bits (which would neuter gshare/GAs).
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        let rs: Vec<RoutineId> = (0..8).map(|_| b.routine()).collect();
        let mut blk = b.block(main).body(1, mix());
        for &r in &rs {
            blk = blk.call(r);
        }
        blk.goto(0);
        for &r in &rs {
            b.block(r).body(10, mix()).ret();
        }
        let p = b.build().unwrap();
        let layout = p.check().unwrap();
        let low_bits: std::collections::HashSet<u64> = rs
            .iter()
            .map(|&r| layout.routine_entry(r).word_index() % 512)
            .collect();
        assert!(low_bits.len() >= 6, "routines share low bits: {low_bits:?}");
    }

    #[test]
    fn blocks_within_a_routine_are_laid_out_sequentially() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).body(4, mix()).goto(1);
        b.block(main).body(2, mix()).goto(0);
        let p = b.build().unwrap();
        let layout = p.check().unwrap();
        let b0 = layout.block_base[0][0];
        let b1 = layout.block_base[0][1];
        assert_eq!(b1, b0.offset(5)); // 4 body + 1 goto
    }

    #[test]
    fn markov_constructors() {
        let u = MarkovChain::uniform(4);
        assert_eq!(u.states(), 4);
        let s = MarkovChain::sticky(3, 10.0);
        assert_eq!(s.rows[1][1], 10.0);
        assert_eq!(s.rows[1][0], 1.0);
        let c = MarkovChain::categorical(vec![3.0, 1.0]);
        assert_eq!(c.states(), 2);
        assert_eq!(c.rows[0], c.rows[1]);
    }

    #[test]
    fn invalid_markov_rejected() {
        let mut b = looping_main();
        b.chain(MarkovChain {
            rows: vec![vec![1.0], vec![1.0]],
        });
        assert!(b.build().unwrap_err().to_string().contains("wrong width"));
        let mut b = looping_main();
        b.chain(MarkovChain {
            rows: vec![vec![0.0]],
        });
        assert!(b.build().unwrap_err().to_string().contains("weight vector"));
    }

    #[test]
    fn branch_terminator_occupies_two_slots() {
        let t = Terminator::Branch {
            cond: Cond::Always,
            taken: 0,
            not_taken: 0,
        };
        assert_eq!(t.len(), 2);
        assert_eq!(Terminator::Goto(0).len(), 1);
        assert_eq!(Terminator::Return.len(), 1);
    }
}
