#![warn(missing_docs)]

//! Synthetic SPECint95-like workload generators.
//!
//! The paper evaluates the target cache on traces of the SPECint95
//! benchmarks, which this reproduction cannot run. Instead, each benchmark
//! is modelled as an *executable synthetic program*: a control-flow graph of
//! basic blocks over the `sim-isa` instruction set, driven by deterministic
//! value streams (repeating token cycles, Markov chains, seeded random
//! draws). Executing the program yields a dynamic instruction trace with
//! the properties that matter to indirect-jump prediction:
//!
//! * the per-benchmark instruction mix and branch frequency (Table 1),
//! * the number of *static* indirect jump sites and the distribution of
//!   dynamic targets per site (Figures 1–8),
//! * and — crucially — the **correlation structure** between branch history
//!   and upcoming indirect-jump targets that the target cache exploits:
//!   perl is an interpreter whose dispatch follows a repeating token
//!   stream, gcc is a maze of switch statements over tree-node kinds whose
//!   preceding conditionals test the same value, and so on.
//!
//! # Example
//!
//! ```
//! use sim_workloads::spec95::Benchmark;
//!
//! let trace = Benchmark::Perl.workload().generate(10_000);
//! let stats = trace.stats();
//! assert!(stats.indirect_jumps() > 0);
//! assert!(stats.branches() > stats.indirect_jumps());
//! ```

pub mod exec;
pub mod mix;
pub mod oo;
pub mod program;
pub mod spec95;

pub use exec::{body_seed, Executor};
pub use mix::InstrMix;
pub use oo::OoBenchmark;
pub use program::{
    Block, BlockId, ChainId, CheckCode, CheckError, Cond, CycleId, Effect, Layout, Program,
    ProgramBuilder, Routine, RoutineId, Selector, Step, Terminator, VarId,
};
pub use spec95::{Benchmark, Workload, GENERATOR_VERSION};
