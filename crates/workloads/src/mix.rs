//! Instruction mixes: deterministic synthesis of the non-branch "filler"
//! instructions inside basic blocks.
//!
//! The timing model cares about the classes (latencies), register
//! dependencies, and memory addresses of non-branch instructions; the
//! predictors ignore them entirely. The filler for a given block position
//! is a pure function of `(block seed, position)`, so traces are
//! reproducible without any generator state.

use sim_isa::{Addr, DynInstr, InstrClass, Reg};

/// Relative weights of the non-branch instruction classes within a block.
///
/// # Example
///
/// ```
/// use sim_workloads::InstrMix;
///
/// let mix = InstrMix::integer_heavy();
/// let class = mix.class_at(0xDEAD_BEEF, 3);
/// assert!(!class.is_control());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct InstrMix {
    /// Weights for, in order: Integer, FpAdd, Mul, Div, Load, Store,
    /// BitField. (Branches are emitted by terminators, never as filler.)
    pub weights: [u16; 7],
}

const MIX_CLASSES: [InstrClass; 7] = [
    InstrClass::Integer,
    InstrClass::FpAdd,
    InstrClass::Mul,
    InstrClass::Div,
    InstrClass::Load,
    InstrClass::Store,
    InstrClass::BitField,
];

/// A cheap deterministic 64-bit mixer (splitmix64 finalizer).
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl InstrMix {
    /// SPECint-flavoured default: mostly integer ALU, ~25% loads, ~10%
    /// stores, a sprinkle of shifts, (almost) no floating point.
    pub fn integer_heavy() -> Self {
        InstrMix {
            weights: [40, 1, 3, 1, 25, 12, 18],
        }
    }

    /// A pointer-chasing mix with more loads (database/interpreter code).
    pub fn load_heavy() -> Self {
        InstrMix {
            weights: [30, 0, 2, 0, 40, 12, 16],
        }
    }

    /// An arithmetic mix with multiplies (image processing: ijpeg).
    pub fn multiply_heavy() -> Self {
        InstrMix {
            weights: [35, 4, 20, 2, 22, 10, 7],
        }
    }

    /// Total weight.
    fn total(&self) -> u32 {
        self.weights.iter().map(|&w| w as u32).sum()
    }

    /// The class of the `k`-th filler instruction of a block with the given
    /// seed. Deterministic; never a branch.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn class_at(&self, block_seed: u64, k: u32) -> InstrClass {
        let total = self.total();
        assert!(total > 0, "instruction mix must have a nonzero weight");
        let mut roll = (mix64(block_seed ^ ((k as u64) << 32) ^ 0xA5A5) % total as u64) as u32;
        for (i, &w) in self.weights.iter().enumerate() {
            if roll < w as u32 {
                return MIX_CLASSES[i];
            }
            roll -= w as u32;
        }
        unreachable!("roll is within total weight")
    }

    /// Synthesizes the `k`-th filler instruction of a block.
    ///
    /// Registers are drawn deterministically from the seed; loads and
    /// stores access a per-block data region with a strided-plus-hash
    /// pattern (some spatial locality, some conflict misses).
    pub fn instr_at(&self, pc: Addr, block_seed: u64, k: u32) -> DynInstr {
        let class = self.class_at(block_seed, k);
        let h = mix64(block_seed ^ (k as u64));
        let dst = Reg::wrapping(h);
        let src_a = Reg::wrapping(h >> 8);
        let src_b = Reg::wrapping(h >> 16);
        match class {
            InstrClass::Load => {
                let addr = Self::data_address(block_seed, k, h);
                DynInstr::load(pc, addr)
                    .with_srcs(Some(src_a), None)
                    .with_dst(dst)
            }
            InstrClass::Store => {
                let addr = Self::data_address(block_seed, k, h);
                DynInstr::store(pc, addr).with_srcs(Some(src_a), Some(src_b))
            }
            c => DynInstr::op(pc, c)
                .with_srcs(Some(src_a), Some(src_b))
                .with_dst(dst),
        }
    }

    /// Data address generation: a 64 KiB region per block seed, walked with
    /// an 8-byte stride plus occasional far jumps.
    fn data_address(block_seed: u64, k: u32, h: u64) -> u64 {
        let region = 0x1000_0000 + (mix64(block_seed) & 0xFF) * 0x1_0000;
        let near = (k as u64 * 8) & 0xFFF;
        let far = if h & 0xF == 0 { (h >> 4) & 0xFFF8 } else { 0 };
        region + near + far
    }
}

impl Default for InstrMix {
    fn default() -> Self {
        InstrMix::integer_heavy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_at_is_deterministic() {
        let mix = InstrMix::integer_heavy();
        for k in 0..50 {
            assert_eq!(mix.class_at(42, k), mix.class_at(42, k));
        }
    }

    #[test]
    fn class_at_never_emits_branches() {
        let mix = InstrMix::default();
        for seed in 0..20u64 {
            for k in 0..100 {
                assert!(!mix.class_at(seed, k).is_control());
            }
        }
    }

    #[test]
    fn weights_shape_the_distribution() {
        let mix = InstrMix {
            weights: [100, 0, 0, 0, 0, 0, 0],
        };
        for k in 0..100 {
            assert_eq!(mix.class_at(7, k), InstrClass::Integer);
        }
    }

    #[test]
    fn integer_heavy_mix_has_expected_proportions() {
        let mix = InstrMix::integer_heavy();
        let mut counts = [0u32; 8];
        for seed in 0..50u64 {
            for k in 0..200 {
                counts[mix.class_at(seed, k).index()] += 1;
            }
        }
        let total: u32 = counts.iter().sum();
        let load_frac = counts[InstrClass::Load.index()] as f64 / total as f64;
        assert!(
            (0.18..0.32).contains(&load_frac),
            "load fraction {load_frac}"
        );
        let fp_frac = counts[InstrClass::FpAdd.index()] as f64 / total as f64;
        assert!(fp_frac < 0.05, "fp fraction {fp_frac}");
    }

    #[test]
    fn instr_at_loads_and_stores_carry_addresses() {
        let mix = InstrMix {
            weights: [0, 0, 0, 0, 1, 0, 0],
        }; // loads only
        let i = mix.instr_at(Addr::new(0x100), 9, 0);
        assert_eq!(i.class(), InstrClass::Load);
        assert!(i.mem().is_some());
        assert!(i.dst().is_some());
    }

    #[test]
    fn data_addresses_have_spatial_locality() {
        let mix = InstrMix {
            weights: [0, 0, 0, 0, 1, 0, 0],
        };
        let a0 = mix.instr_at(Addr::new(0x100), 9, 0).mem().unwrap().addr;
        let a1 = mix.instr_at(Addr::new(0x104), 9, 1).mem().unwrap().addr;
        // Mostly strided within a region; allow the occasional far jump.
        assert!(a0.abs_diff(a1) < 0x2_0000);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn all_zero_mix_rejected() {
        InstrMix { weights: [0; 7] }.class_at(0, 0);
    }

    #[test]
    fn mix64_spreads_bits() {
        // Consecutive inputs should not produce consecutive outputs.
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a + 1, b);
        assert_ne!(a, b);
    }
}
