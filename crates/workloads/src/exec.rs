//! The program executor: walks a [`Program`]'s control-flow graph, drives
//! its value streams, and emits the dynamic instruction trace.

use crate::mix::mix64;
use crate::program::{
    BlockId, Cond, Effect, Layout, Program, RoutineId, Selector, Step, Terminator,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_isa::{Addr, BranchClass, BranchExec, DynInstr, VecTrace};
use std::collections::HashMap;

/// Hard cap on simulated call depth: a workload definition that recurses
/// past this is a bug, not a deep program.
const MAX_CALL_DEPTH: usize = 10_000;

/// Sentinel error used internally to unwind when the instruction budget is
/// reached mid-block.
struct BudgetReached;

#[derive(Clone, Copy, Debug)]
struct Frame {
    routine: RoutineId,
    block: BlockId,
    /// Step index execution resumes at after the callee returns.
    resume_step: usize,
}

/// Executes a [`Program`], producing deterministic instruction traces.
///
/// All stochastic elements (Markov chains, uniform draws, Bernoulli
/// conditions) are driven by a single seeded PRNG consumed in execution
/// order, so a given `(program, seed, budget)` triple always yields the
/// identical trace.
///
/// # Example
///
/// ```
/// use sim_workloads::{Executor, ProgramBuilder, InstrMix};
///
/// let mut b = ProgramBuilder::new();
/// let main = b.routine();
/// b.block(main).body(3, InstrMix::integer_heavy()).goto(0);
/// let program = b.build().unwrap();
///
/// let trace = Executor::new(&program, 42).generate(10);
/// assert_eq!(trace.len(), 10);
/// ```
pub struct Executor<'p> {
    program: &'p Program,
    layout: Layout,
    rng: SmallRng,
    vars: Vec<u32>,
    cycle_pos: Vec<usize>,
    markov_state: Vec<usize>,
    loop_counters: HashMap<(RoutineId, BlockId), u32>,
    call_stack: Vec<Frame>,
    trace: VecTrace,
    budget: usize,
}

impl<'p> Executor<'p> {
    /// Creates an executor over a validated program.
    ///
    /// # Panics
    ///
    /// Panics if the program fails [`Program::check`] — build programs with
    /// [`crate::ProgramBuilder`] to get validation at construction.
    pub fn new(program: &'p Program, seed: u64) -> Self {
        let layout = program.check().expect("program must be structurally valid");
        Executor {
            program,
            layout,
            rng: SmallRng::seed_from_u64(seed),
            vars: vec![0; program.vars],
            cycle_pos: vec![0; program.cycles.len()],
            markov_state: vec![0; program.chains.len()],
            loop_counters: HashMap::new(),
            call_stack: Vec::new(),
            trace: VecTrace::new(),
            budget: 0,
        }
    }

    /// Runs the program until `budget` dynamic instructions have been
    /// emitted and returns the trace (exactly `budget` long).
    pub fn generate(mut self, budget: usize) -> VecTrace {
        self.budget = budget;
        self.trace.reserve(budget);
        let mut routine: RoutineId = 0;
        let mut block: BlockId = 0;
        let mut start_step = 0usize;

        'blocks: loop {
            if self.trace.len() >= self.budget {
                break;
            }
            if start_step == 0 {
                let n_effects = self.program.routines[routine].blocks[block].effects.len();
                for i in 0..n_effects {
                    let e = self.program.routines[routine].blocks[block].effects[i];
                    self.apply_effect(&e);
                }
            }

            let nsteps = self.program.routines[routine].blocks[block].steps.len();
            // `start_step` is reassigned inside the loop before `continue
            // 'blocks`, which re-enters with the new value — the lint sees
            // only the (unused) current iteration range.
            #[allow(clippy::mut_range_bound)]
            for s in start_step..nsteps {
                // Resolve the step to a small copyable action first, so the
                // hot loop never clones jump or call tables.
                enum StepAction {
                    Body {
                        count: u32,
                        mix: crate::mix::InstrMix,
                    },
                    Call {
                        callee: RoutineId,
                        indirect: bool,
                    },
                }
                let action = {
                    let step = &self.program.routines[routine].blocks[block].steps[s];
                    match step {
                        Step::Body { count, mix } => StepAction::Body {
                            count: *count,
                            mix: *mix,
                        },
                        Step::Call { routine } => StepAction::Call {
                            callee: *routine,
                            indirect: false,
                        },
                        Step::CallIndirect { selector, routines } => StepAction::Call {
                            callee: routines[self.select(*selector, routines.len())],
                            indirect: true,
                        },
                    }
                };
                let step_addr = self.step_addr(routine, block, s);
                match action {
                    StepAction::Body { count, mix } => {
                        let seed = body_seed(routine, block, s);
                        for k in 0..count {
                            let pc = step_addr.offset(k as u64);
                            if self.emit(mix.instr_at(pc, seed, k)).is_err() {
                                break 'blocks;
                            }
                        }
                    }
                    StepAction::Call { callee, indirect } => {
                        let target = self.layout.routine_entry(callee);
                        let class = if indirect {
                            BranchClass::IndirectCall
                        } else {
                            BranchClass::Call
                        };
                        let call = DynInstr::branch(step_addr, BranchExec::taken(class, target));
                        if self.emit(call).is_err() {
                            break 'blocks;
                        }
                        self.push_frame(Frame {
                            routine,
                            block,
                            resume_step: s + 1,
                        });
                        routine = callee;
                        block = 0;
                        start_step = 0;
                        continue 'blocks;
                    }
                }
            }

            // Terminator: resolve to a small action without cloning tables.
            enum TermAction {
                Goto(BlockId),
                Branch {
                    cond: Cond,
                    taken: BlockId,
                    not_taken: BlockId,
                },
                Switch {
                    target: BlockId,
                },
                Return,
            }
            let term = {
                let t = &self.program.routines[routine].blocks[block].terminator;
                match t {
                    Terminator::Goto(t) => TermAction::Goto(*t),
                    Terminator::Branch {
                        cond,
                        taken,
                        not_taken,
                    } => TermAction::Branch {
                        cond: *cond,
                        taken: *taken,
                        not_taken: *not_taken,
                    },
                    Terminator::Switch { selector, targets } => TermAction::Switch {
                        target: targets[self.select(*selector, targets.len())],
                    },
                    Terminator::Return => TermAction::Return,
                }
            };
            let term_addr = self.step_addr(routine, block, nsteps);
            match term {
                TermAction::Goto(t) => {
                    let target = self.layout.block_base[routine][t];
                    let jump = DynInstr::branch(
                        term_addr,
                        BranchExec::taken(BranchClass::UncondDirect, target),
                    );
                    if self.emit(jump).is_err() {
                        break 'blocks;
                    }
                    block = t;
                    start_step = 0;
                }
                TermAction::Branch {
                    cond,
                    taken,
                    not_taken,
                } => {
                    let taken_target = self.layout.block_base[routine][taken];
                    let is_taken = self.eval_cond(cond, routine, block);
                    let br = DynInstr::branch(
                        term_addr,
                        BranchExec::new(BranchClass::CondDirect, is_taken, taken_target),
                    );
                    if self.emit(br).is_err() {
                        break 'blocks;
                    }
                    if is_taken {
                        block = taken;
                    } else {
                        // The `goto not_taken` that physically follows the
                        // conditional branch (Figure 9 shape).
                        let nt_target = self.layout.block_base[routine][not_taken];
                        let goto = DynInstr::branch(
                            term_addr.next(),
                            BranchExec::taken(BranchClass::UncondDirect, nt_target),
                        );
                        if self.emit(goto).is_err() {
                            break 'blocks;
                        }
                        block = not_taken;
                    }
                    start_step = 0;
                }
                TermAction::Switch { target: t } => {
                    let target = self.layout.block_base[routine][t];
                    let jump = DynInstr::branch(
                        term_addr,
                        BranchExec::taken(BranchClass::IndirectJump, target),
                    );
                    if self.emit(jump).is_err() {
                        break 'blocks;
                    }
                    block = t;
                    start_step = 0;
                }
                TermAction::Return => {
                    let frame = self
                        .call_stack
                        .pop()
                        .expect("validated programs cannot return from main");
                    let target = self.step_addr(frame.routine, frame.block, frame.resume_step);
                    let ret =
                        DynInstr::branch(term_addr, BranchExec::taken(BranchClass::Return, target));
                    if self.emit(ret).is_err() {
                        break 'blocks;
                    }
                    routine = frame.routine;
                    block = frame.block;
                    start_step = frame.resume_step;
                }
            }
        }
        self.trace
    }

    /// The address of step `s` of a block (`s == steps.len()` addresses the
    /// terminator).
    fn step_addr(&self, routine: RoutineId, block: BlockId, s: usize) -> Addr {
        self.layout.step_addr(routine, block, s)
    }

    fn push_frame(&mut self, frame: Frame) {
        assert!(
            self.call_stack.len() < MAX_CALL_DEPTH,
            "call depth exceeded {MAX_CALL_DEPTH}: runaway recursion in workload definition"
        );
        self.call_stack.push(frame);
    }

    fn emit(&mut self, instr: DynInstr) -> Result<(), BudgetReached> {
        // Catch layout corruption at the source (debug builds only): every
        // emitted pc must be word-aligned, and the trace must be
        // sequentially consistent — each instruction starts where the
        // previous one said control goes next (fall-through = addr + 4,
        // taken branches land on their recorded target).
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                sim_isa::is_instr_aligned(instr.pc().raw()),
                "emitted pc {} is not word-aligned",
                instr.pc()
            );
            if let Some(prev) = self.trace.as_slice().last() {
                debug_assert_eq!(
                    prev.next_pc(),
                    instr.pc(),
                    "trace discontinuity: {} does not fall through / jump to {}",
                    prev.pc(),
                    instr.pc()
                );
            }
        }
        self.trace.push(instr);
        if self.trace.len() >= self.budget {
            Err(BudgetReached)
        } else {
            Ok(())
        }
    }

    fn select(&self, selector: Selector, n: usize) -> usize {
        (self.vars[selector.var] as usize) % n
    }

    fn apply_effect(&mut self, e: &Effect) {
        match *e {
            Effect::CycleNext { cycle, var } => {
                let tokens = &self.program.cycles[cycle];
                let pos = self.cycle_pos[cycle];
                self.vars[var] = tokens[pos];
                self.cycle_pos[cycle] = (pos + 1) % tokens.len();
            }
            Effect::NoisyCycleNext {
                cycle,
                var,
                noise_p,
                noise_n,
            } => {
                let tokens = &self.program.cycles[cycle];
                let pos = self.cycle_pos[cycle];
                let token = tokens[pos];
                self.cycle_pos[cycle] = (pos + 1) % tokens.len();
                self.vars[var] = if self.rng.gen::<f64>() < noise_p {
                    self.rng.gen_range(0..noise_n)
                } else {
                    token
                };
            }
            Effect::MarkovStep { chain, var } => {
                let c = &self.program.chains[chain];
                let state = self.markov_state[chain];
                let row = &c.rows[state];
                let total: f64 = row.iter().sum();
                let mut roll = self.rng.gen::<f64>() * total;
                let mut next = row.len() - 1;
                for (i, &w) in row.iter().enumerate() {
                    if roll < w {
                        next = i;
                        break;
                    }
                    roll -= w;
                }
                self.markov_state[chain] = next;
                self.vars[var] = next as u32;
            }
            Effect::Uniform { var, n } => {
                self.vars[var] = self.rng.gen_range(0..n);
            }
            Effect::Set { var, value } => self.vars[var] = value,
            Effect::AddMod { var, delta, modulo } => {
                self.vars[var] = (self.vars[var].wrapping_add(delta)) % modulo;
            }
        }
    }

    fn eval_cond(&mut self, cond: Cond, routine: RoutineId, block: BlockId) -> bool {
        match cond {
            Cond::Bit { var, bit } => (self.vars[var] >> bit) & 1 == 1,
            Cond::Lt { var, threshold } => self.vars[var] < threshold,
            Cond::Eq { var, value } => self.vars[var] == value,
            Cond::Loop { count } => {
                let c = self.loop_counters.entry((routine, block)).or_insert(0);
                *c += 1;
                if *c >= count {
                    *c = 0;
                    false
                } else {
                    true
                }
            }
            Cond::Bernoulli { p } => self.rng.gen::<f64>() < p,
            Cond::Always => true,
            Cond::Never => false,
        }
    }
}

/// The deterministic per-step seed that drives filler-instruction class
/// selection. Public so static analysis can reconstruct the exact
/// instruction classes a body step will emit without executing it.
pub fn body_seed(routine: RoutineId, block: BlockId, step: usize) -> u64 {
    mix64(((routine as u64) << 40) ^ ((block as u64) << 20) ^ step as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::InstrMix;
    use crate::program::ProgramBuilder;
    use sim_isa::InstrClass;

    fn mix() -> InstrMix {
        InstrMix::integer_heavy()
    }

    #[test]
    fn budget_is_exact() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).body(7, mix()).goto(0);
        let p = b.build().unwrap();
        for budget in [1usize, 2, 7, 8, 100, 1001] {
            let trace = Executor::new(&p, 1).generate(budget);
            assert_eq!(trace.len(), budget);
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let mut b = ProgramBuilder::new();
        let v = b.var();
        let main = b.routine();
        b.block(main)
            .effect(Effect::Uniform { var: v, n: 16 })
            .body(3, mix())
            .switch(Selector::var(v), vec![1, 2, 1, 2]);
        b.block(main).body(2, mix()).goto(0);
        b.block(main).body(4, mix()).goto(0);
        let p = b.build().unwrap();
        let t1 = Executor::new(&p, 99).generate(5000);
        let t2 = Executor::new(&p, 99).generate(5000);
        assert_eq!(t1, t2);
        let t3 = Executor::new(&p, 100).generate(5000);
        assert_ne!(t1, t3, "different seeds should diverge");
    }

    #[test]
    fn goto_emits_taken_unconditional_with_correct_addresses() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).body(2, mix()).goto(1);
        b.block(main).goto(0);
        let p = b.build().unwrap();
        let trace = Executor::new(&p, 0).generate(4);
        let layout = p.check().unwrap();
        // instr 0,1: body; instr 2: goto block1; instr 3: goto block0.
        let g = trace.as_slice()[2];
        let be = g.branch_exec().unwrap();
        assert_eq!(be.class, BranchClass::UncondDirect);
        assert!(be.taken);
        assert_eq!(be.target, layout.block_base[0][1]);
        assert_eq!(g.pc(), layout.block_base[0][0].offset(2));
        // The next instruction in the trace is at the jump's target.
        assert_eq!(trace.as_slice()[3].pc(), be.target);
    }

    #[test]
    fn trace_path_is_sequentially_consistent() {
        // Every instruction's pc must equal the previous instruction's
        // next_pc — the fundamental invariant of a real execution trace.
        let mut b = ProgramBuilder::new();
        let v = b.var();
        let helper = {
            let main = b.routine();
            let helper = b.routine();
            b.block(main)
                .effect(Effect::AddMod {
                    var: v,
                    delta: 1,
                    modulo: 5,
                })
                .body(3, mix())
                .call(helper)
                .body(1, mix())
                .switch(Selector::var(v), vec![1, 2, 1, 2, 1]);
            b.block(main).body(2, mix()).goto(0);
            b.block(main).branch(Cond::Bit { var: v, bit: 0 }, 0, 1);
            helper
        };
        b.block(helper)
            .body(2, mix())
            .branch(Cond::Loop { count: 3 }, 0, 1);
        b.block(helper).ret();
        let p = b.build().unwrap();
        let trace = Executor::new(&p, 7).generate(20_000);
        let mut prev_next: Option<Addr> = None;
        for i in trace.iter() {
            if let Some(expected) = prev_next {
                assert_eq!(i.pc(), expected, "discontinuity at {:?}", i);
            }
            prev_next = Some(i.next_pc());
        }
    }

    #[test]
    fn conditional_not_taken_emits_figure9_goto() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).branch(Cond::Never, 1, 2);
        b.block(main).goto(0);
        b.block(main).goto(0);
        let p = b.build().unwrap();
        let trace = Executor::new(&p, 0).generate(3);
        let layout = p.check().unwrap();
        let cond = trace.as_slice()[0].branch_exec().unwrap();
        assert_eq!(cond.class, BranchClass::CondDirect);
        assert!(!cond.taken);
        assert_eq!(
            cond.target, layout.block_base[0][1],
            "stores the taken target"
        );
        let goto = trace.as_slice()[1].branch_exec().unwrap();
        assert_eq!(goto.class, BranchClass::UncondDirect);
        assert_eq!(goto.target, layout.block_base[0][2]);
        assert_eq!(trace.as_slice()[1].pc(), trace.as_slice()[0].pc().next());
    }

    #[test]
    fn conditional_taken_skips_the_goto() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main).branch(Cond::Always, 1, 2);
        b.block(main).goto(0);
        b.block(main).goto(0);
        let p = b.build().unwrap();
        let trace = Executor::new(&p, 0).generate(2);
        let layout = p.check().unwrap();
        let cond = trace.as_slice()[0].branch_exec().unwrap();
        assert!(cond.taken);
        assert_eq!(trace.as_slice()[1].pc(), layout.block_base[0][1]);
    }

    #[test]
    fn call_and_return_addresses_pair_up() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        let helper = b.routine();
        b.block(main).call(helper).body(1, mix()).goto(0);
        b.block(helper).body(2, mix()).ret();
        let p = b.build().unwrap();
        let trace = Executor::new(&p, 0).generate(10);
        let call = trace.as_slice()[0];
        let cb = call.branch_exec().unwrap();
        assert_eq!(cb.class, BranchClass::Call);
        // Return is instruction 3 (after the 2-instr body).
        let ret = trace.as_slice()[3].branch_exec().unwrap();
        assert_eq!(ret.class, BranchClass::Return);
        assert_eq!(ret.target, call.pc().next(), "return lands after the call");
    }

    #[test]
    fn switch_follows_cycle_tokens() {
        let mut b = ProgramBuilder::new();
        let tok = b.var();
        let stream = b.cycle(vec![0, 2, 1]);
        let main = b.routine();
        b.block(main)
            .effect(Effect::CycleNext {
                cycle: stream,
                var: tok,
            })
            .switch(Selector::var(tok), vec![1, 2, 3]);
        b.block(main).goto(0); // handler 0
        b.block(main).goto(0); // handler 1
        b.block(main).goto(0); // handler 2
        let p = b.build().unwrap();
        let layout = p.check().unwrap();
        let trace = Executor::new(&p, 0).generate(12);
        // Instructions: switch, handler-goto, switch, handler-goto, ...
        let targets: Vec<Addr> = trace
            .iter()
            .filter(|i| {
                i.branch_exec()
                    .is_some_and(|b| b.class == BranchClass::IndirectJump)
            })
            .map(|i| i.branch_exec().unwrap().target)
            .collect();
        assert_eq!(targets[0], layout.block_base[0][1]); // token 0
        assert_eq!(targets[1], layout.block_base[0][3]); // token 2
        assert_eq!(targets[2], layout.block_base[0][2]); // token 1
        assert_eq!(targets[3], layout.block_base[0][1]); // wraps
    }

    #[test]
    fn loop_condition_iterates_count_times() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        // Block 0 loops back to itself twice (count 3 => taken 2, not-taken 1).
        b.block(main)
            .body(1, mix())
            .branch(Cond::Loop { count: 3 }, 0, 1);
        b.block(main).goto(0);
        let p = b.build().unwrap();
        let trace = Executor::new(&p, 0).generate(30);
        let dirs: Vec<bool> = trace
            .iter()
            .filter_map(|i| i.branch_exec())
            .filter(|b| b.class == BranchClass::CondDirect)
            .map(|b| b.taken)
            .collect();
        assert!(dirs.len() >= 6);
        assert_eq!(&dirs[0..6], &[true, true, false, true, true, false]);
    }

    #[test]
    fn indirect_call_targets_routine_entries() {
        let mut b = ProgramBuilder::new();
        let v = b.var();
        let main = b.routine();
        let r1 = b.routine();
        let r2 = b.routine();
        b.block(main)
            .effect(Effect::AddMod {
                var: v,
                delta: 1,
                modulo: 2,
            })
            .call_indirect(Selector::var(v), vec![r1, r2])
            .goto(0);
        b.block(r1).ret();
        b.block(r2).body(1, mix()).ret();
        let p = b.build().unwrap();
        let layout = p.check().unwrap();
        let trace = Executor::new(&p, 0).generate(40);
        let call_targets: Vec<Addr> = trace
            .iter()
            .filter_map(|i| i.branch_exec())
            .filter(|b| b.class == BranchClass::IndirectCall)
            .map(|b| b.target)
            .collect();
        assert!(call_targets.contains(&layout.routine_entry(r1)));
        assert!(call_targets.contains(&layout.routine_entry(r2)));
    }

    #[test]
    fn noisy_cycle_mostly_follows_tokens() {
        let mut b = ProgramBuilder::new();
        let v = b.var();
        let stream = b.cycle(vec![1, 2, 3]);
        let main = b.routine();
        b.block(main)
            .effect(Effect::NoisyCycleNext {
                cycle: stream,
                var: v,
                noise_p: 0.2,
                noise_n: 8,
            })
            .switch(Selector::var(v), vec![1, 2, 3, 4, 5, 6, 7, 0]);
        for _ in 0..7 {
            b.block(main).goto(0);
        }
        let p = b.build().unwrap();
        let trace = Executor::new(&p, 5).generate(20_000);
        let layout = p.check().unwrap();
        // The cycle advances regardless of noise, so the 1,2,3 pattern
        // dominates the dispatch sequence: count period-3 self-agreement.
        let targets: Vec<_> = trace
            .iter()
            .filter(|i| i.pc() == layout.terminator_addr(0, 0).offset(0))
            .filter_map(|i| i.branch_exec())
            .map(|b| b.target)
            .collect();
        let mut agree = 0;
        let mut total = 0;
        for i in 3..targets.len() {
            agree += (targets[i] == targets[i - 3]) as u32;
            total += 1;
        }
        let rate = agree as f64 / total as f64;
        // P(both clean) = 0.8^2 = 0.64, plus chance agreement.
        assert!((0.55..0.85).contains(&rate), "period-3 agreement {rate}");
    }

    #[test]
    fn noisy_cycle_with_zero_noise_equals_plain_cycle() {
        let build = |noisy: bool| {
            let mut b = ProgramBuilder::new();
            let v = b.var();
            let stream = b.cycle(vec![0, 1, 2, 1]);
            let main = b.routine();
            let blk = b.block(main);
            let blk = if noisy {
                blk.effect(Effect::NoisyCycleNext {
                    cycle: stream,
                    var: v,
                    noise_p: 0.0,
                    noise_n: 4,
                })
            } else {
                blk.effect(Effect::CycleNext {
                    cycle: stream,
                    var: v,
                })
            };
            blk.switch(Selector::var(v), vec![1, 2, 3]);
            for _ in 0..3 {
                b.block(main).goto(0);
            }
            b.build().unwrap()
        };
        let plain = Executor::new(&build(false), 9).generate(5_000);
        let noisy = Executor::new(&build(true), 9).generate(5_000);
        // Same control flow (the RNG is consumed identically because the
        // noise branch is never taken at p = 0... it still draws once per
        // step, so compare only the dispatch targets' sequence lengths).
        let seq = |t: &sim_isa::VecTrace| {
            t.iter()
                .filter_map(|i| i.branch_exec())
                .filter(|b| b.class == BranchClass::IndirectJump)
                .count()
        };
        assert_eq!(seq(&plain), seq(&noisy));
    }

    #[test]
    fn filler_instructions_have_expected_classes() {
        let mut b = ProgramBuilder::new();
        let main = b.routine();
        b.block(main)
            .body(
                50,
                InstrMix {
                    weights: [0, 0, 0, 0, 1, 0, 0],
                },
            )
            .goto(0);
        let p = b.build().unwrap();
        let trace = Executor::new(&p, 0).generate(51);
        let loads = trace
            .iter()
            .filter(|i| i.class() == InstrClass::Load)
            .count();
        assert_eq!(loads, 50);
    }
}
