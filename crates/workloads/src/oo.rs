//! Object-oriented (C++-style) workloads — the paper's future work.
//!
//! Section 5 of the paper: "We examined the SPEC95 integer benchmarks where
//! only a small fraction of instructions are indirect branches ... For
//! object oriented programs where more indirect branches may be executed,
//! tagged caches should provide even greater performance benefits. In the
//! future, we will evaluate the performance benefit of target caches for
//! C++ benchmarks."
//!
//! These two models carry out that evaluation:
//!
//! * [`ixx`] — modelled on the IDL-compiler style C++ benchmark of the
//!   Calder & Grunwald studies: an AST walk making *megamorphic* virtual
//!   calls (`accept`/visitor double dispatch) whose receiver sequence is
//!   mostly periodic (the same tree is walked pass after pass).
//! * [`deltablue`] — a constraint-solver style benchmark: a propagation
//!   loop executing `execute()` on a plan of constraint objects (periodic
//!   within a plan, replanned occasionally), plus moderately polymorphic
//!   variable accessors.
//!
//! Compared with the SPECint95 models, these execute several times more
//! indirect branches per instruction, at more sites, with higher
//! polymorphism — exactly the regime in which the paper predicts tags to
//! pay off.

use crate::mix::InstrMix;
use crate::program::{Cond, Effect, MarkovChain, ProgramBuilder, RoutineId, Selector};
use crate::spec95::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_isa::VecTrace;

/// Number of node classes in the `ixx` AST model.
pub const IXX_CLASSES: usize = 10;

/// Builds the `ixx`-like IDL-compiler workload.
pub fn ixx() -> Workload {
    let mut b = ProgramBuilder::new();
    let mix = InstrMix::load_heavy();

    let node = b.var();
    let visit = b.var();
    let depth = b.var();

    // The AST as a traversal cycle over node classes: the compiler walks
    // the same tree in every pass, with small per-pass differences.
    let mut rng = SmallRng::seed_from_u64(0x1DD_C0DE);
    let tree: Vec<u32> = {
        let mut t = Vec::with_capacity(61);
        let mut prev = 0u32;
        for i in 0..61 {
            if i > 0 && rng.gen::<f64>() < 0.2 {
                t.push(prev);
            } else {
                // Interface-heavy: classes 0..3 common, the rest rarer.
                let c = if rng.gen::<f64>() < 0.55 {
                    rng.gen_range(0..4)
                } else {
                    rng.gen_range(4..IXX_CLASSES as u32)
                };
                t.push(c);
                prev = c;
            }
        }
        t
    };
    let walk = b.cycle(tree);
    let visit_chain = b.chain(MarkovChain::sticky(3, 6.0)); // emit / check / collect visitors

    let main = b.routine();
    // One `accept` implementation per node class (the megamorphic site's
    // targets), each of which double-dispatches to a visitor method.
    let accepts: Vec<RoutineId> = (0..IXX_CLASSES).map(|_| b.routine()).collect();
    let visitors: Vec<RoutineId> = (0..3).map(|_| b.routine()).collect();
    let emit_helper = b.routine();

    // main block 0: fetch the next AST node; type-guard predicates; then
    // the megamorphic `node->accept(visitor)` call.
    b.block(main)
        .effect(Effect::NoisyCycleNext {
            cycle: walk,
            var: node,
            noise_p: 0.06,
            noise_n: IXX_CLASSES as u32,
        })
        .effect(Effect::MarkovStep {
            chain: visit_chain,
            var: visit,
        })
        .body(4, mix)
        .branch(Cond::Bit { var: node, bit: 0 }, 1, 1);
    b.block(main)
        .body(1, mix)
        .branch(Cond::Bit { var: node, bit: 1 }, 2, 2);
    b.block(main)
        .body(1, mix)
        .branch(Cond::Bit { var: node, bit: 2 }, 3, 3);
    // Block 3: the virtual call itself, then loop bookkeeping.
    b.block(main)
        .body(1, mix)
        .call_indirect(Selector::var(node), accepts.clone())
        .branch(Cond::Loop { count: 61 }, 0, 4);
    // Block 4: between passes — reset walk state, rare output flush.
    b.block(main)
        .effect(Effect::AddMod {
            var: depth,
            delta: 1,
            modulo: 8,
        })
        .body(6, mix)
        .branch(
            Cond::Eq {
                var: depth,
                value: 0,
            },
            5,
            0,
        );
    b.block(main).body(18, mix).call(emit_helper).goto(0);

    // accept_k: class-specific body, then double dispatch into the active
    // visitor (a second, correlated indirect-call site per class).
    for (k, &r) in accepts.iter().enumerate() {
        b.block(r)
            .body(2 + (k as u32 * 3) % 7, mix)
            .call_indirect(Selector::var(visit), visitors.clone())
            .ret();
    }

    // Visitor methods: emit / check / collect.
    b.block(visitors[0]).body(7, mix).call(emit_helper).ret();
    b.block(visitors[1])
        .body(4, mix)
        .branch(Cond::Bit { var: node, bit: 3 }, 1, 1);
    b.block(visitors[1]).body(2, mix).ret();
    b.block(visitors[2]).body(5, mix).ret();

    // Emission helper: buffer write loop.
    b.block(emit_helper)
        .body(4, mix)
        .branch(Cond::Loop { count: 3 }, 0, 1);
    b.block(emit_helper).ret();

    let program = b.build().expect("ixx model must validate");
    Workload::new("ixx", program, 0x1DD_2024, 1_500_000)
}

/// Number of constraint classes in the `deltablue` model.
pub const DELTABLUE_CLASSES: usize = 5;

/// Builds the `deltablue`-like constraint-solver workload.
pub fn deltablue() -> Workload {
    let mut b = ProgramBuilder::new();
    let mix = InstrMix::load_heavy();

    let constraint = b.var();
    let stay = b.var();

    // A propagation plan: an ordered list of constraint kinds executed
    // repeatedly until replanning. Plans repeat their constraint sequence
    // exactly (the solver walks the same plan vector).
    let mut rng = SmallRng::seed_from_u64(0xDE17A);
    let plan: Vec<u32> = (0..37)
        .map(|_| rng.gen_range(0..DELTABLUE_CLASSES as u32))
        .collect();
    let plan_cycle = b.cycle(plan);
    let stay_chain = b.chain(MarkovChain::sticky_categorical(vec![8.0, 1.0], 3.0));

    let main = b.routine();
    let executes: Vec<RoutineId> = (0..DELTABLUE_CLASSES).map(|_| b.routine()).collect();
    let planner = b.routine();

    // main block 0: take the next constraint from the plan, execute it
    // through its vtable.
    b.block(main)
        .effect(Effect::CycleNext {
            cycle: plan_cycle,
            var: constraint,
        })
        .effect(Effect::MarkovStep {
            chain: stay_chain,
            var: stay,
        })
        .body(3, mix)
        .branch(
            Cond::Bit {
                var: constraint,
                bit: 0,
            },
            1,
            1,
        );
    b.block(main)
        .body(1, mix)
        .call_indirect(Selector::var(constraint), executes.clone())
        .branch(Cond::Loop { count: 37 }, 0, 2);
    // Block 2: end of a propagation sweep — occasionally replan.
    b.block(main).body(4, mix).branch(
        Cond::Eq {
            var: stay,
            value: 1,
        },
        3,
        0,
    );
    b.block(main).body(8, mix).call(planner).goto(0);

    // execute() implementations: equality/scale/edit/stay/formula.
    for (k, &r) in executes.iter().enumerate() {
        let blk = b.block(r).body(3 + (k as u32 * 5) % 8, mix);
        if k == 2 {
            // The edit constraint walks its dependents.
            blk.branch(Cond::Loop { count: 2 }, 0, 1);
            b.block(r).ret();
        } else {
            blk.ret();
        }
    }

    // Planner: strength propagation with data-dependent pruning.
    b.block(planner).body(6, mix).branch(
        Cond::Bit {
            var: constraint,
            bit: 1,
        },
        1,
        1,
    );
    b.block(planner)
        .body(5, mix)
        .branch(Cond::Loop { count: 5 }, 0, 2);
    b.block(planner).ret();

    let program = b.build().expect("deltablue model must validate");
    Workload::new("deltablue", program, 0xDB_0017, 1_200_000)
}

/// The OO suite.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OoBenchmark {
    /// IDL-compiler style AST walker with megamorphic double dispatch.
    Ixx,
    /// Constraint-solver style propagation loop.
    Deltablue,
}

impl OoBenchmark {
    /// Both OO benchmarks.
    pub const ALL: [OoBenchmark; 2] = [OoBenchmark::Ixx, OoBenchmark::Deltablue];

    /// The benchmark's name.
    pub fn name(self) -> &'static str {
        match self {
            OoBenchmark::Ixx => "ixx",
            OoBenchmark::Deltablue => "deltablue",
        }
    }

    /// Builds the workload.
    pub fn workload(self) -> Workload {
        match self {
            OoBenchmark::Ixx => ixx(),
            OoBenchmark::Deltablue => deltablue(),
        }
    }
}

impl std::fmt::Display for OoBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Convenience: generate a trace of an OO benchmark's canonical run.
pub fn generate(bench: OoBenchmark, budget: usize) -> VecTrace {
    bench.workload().generate(budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::BranchClass;

    #[test]
    fn oo_benchmarks_build_and_generate() {
        for bench in OoBenchmark::ALL {
            let trace = bench.workload().generate(50_000);
            assert_eq!(trace.len(), 50_000, "{bench}");
        }
    }

    #[test]
    fn oo_programs_execute_more_indirect_branches_than_specint() {
        // The premise of the paper's future-work section.
        let ixx_frac = ixx().generate(100_000).stats().indirect_jump_fraction();
        let gcc_frac = crate::spec95::Benchmark::Gcc
            .workload()
            .generate(100_000)
            .stats()
            .indirect_jump_fraction();
        assert!(
            ixx_frac > 1.5 * gcc_frac,
            "ixx indirect fraction {ixx_frac} should dwarf gcc's {gcc_frac}"
        );
    }

    #[test]
    fn ixx_has_a_megamorphic_site() {
        let stats = ixx().generate(150_000).stats();
        let max_targets = stats
            .indirect_jump_census()
            .values()
            .map(|c| c.distinct_targets())
            .max()
            .unwrap();
        assert!(
            max_targets >= 8,
            "megamorphic accept site: {max_targets} targets"
        );
        // The visitor double dispatch contributes many static sites (one
        // per accept body).
        assert!(stats.static_indirect_jumps() >= IXX_CLASSES);
    }

    #[test]
    fn deltablue_plan_is_periodic() {
        use std::collections::HashMap;
        // Consecutive execute() targets at the main dispatch follow the
        // 37-entry plan, so the same target sequence recurs every sweep.
        let trace = deltablue().generate(100_000);
        let stats = trace.stats();
        let (&site, _) = stats
            .indirect_jump_census()
            .iter()
            .max_by_key(|(_, c)| c.executions)
            .unwrap();
        let targets: Vec<_> = trace
            .iter()
            .filter(|i| i.pc() == site)
            .filter_map(|i| i.branch_exec())
            .filter(|b| b.class == BranchClass::IndirectCall)
            .map(|b| b.target)
            .collect();
        assert!(targets.len() > 100);
        // Period-37 self-similarity.
        let mut agree = 0;
        let mut total = 0;
        for i in 37..targets.len().min(1000) {
            agree += (targets[i] == targets[i - 37]) as u32;
            total += 1;
        }
        assert!(
            agree as f64 / total as f64 > 0.9,
            "plan should repeat with period 37 ({agree}/{total})"
        );
        let _ = HashMap::<u8, u8>::new();
    }

    #[test]
    fn oo_traces_are_sequentially_consistent() {
        for bench in OoBenchmark::ALL {
            let trace = bench.workload().generate(30_000);
            let mut prev: Option<sim_isa::Addr> = None;
            for i in trace.iter() {
                if let Some(expected) = prev {
                    assert_eq!(i.pc(), expected, "{bench}: discontinuity at {i:?}");
                }
                prev = Some(i.next_pc());
            }
        }
    }
}
