//! Print the characterization statistics of a trace file.
//!
//! Usage: `traceinfo <trace-path>`

use sim_isa::codec::read_trace;
use sim_isa::BranchClass;
use std::io::BufReader;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: traceinfo <trace-path>");
        std::process::exit(2);
    });
    let file = std::fs::File::open(&path).expect("cannot open trace file");
    let trace = read_trace(BufReader::new(file)).expect("cannot decode trace");
    let stats = trace.stats();

    println!("{path}: {} instructions", stats.instructions());
    println!("  branches:        {}", stats.branches());
    for class in BranchClass::ALL {
        let n = stats.branch_count(class);
        if n > 0 {
            println!("    {:>6}: {n}", class.mnemonic());
        }
    }
    println!(
        "  indirect jumps:  {} ({:.3}% of instructions)",
        stats.indirect_jumps(),
        stats.indirect_jump_fraction() * 100.0
    );
    println!("  static ijmp sites: {}", stats.static_indirect_jumps());
    let hist = stats.targets_per_jump_histogram(30);
    print!("  targets/site histogram:");
    for (k, &n) in hist.iter().enumerate() {
        if n > 0 {
            print!(" {}{}:{n}", if k == 29 { ">=" } else { "" }, k + 1);
        }
    }
    println!();
}
