//! Generate a benchmark trace and write it to a file in the IJPTRC01
//! binary format.
//!
//! Usage: `tracegen <benchmark> <instructions> <output-path>`

use sim_isa::codec::write_trace;
use sim_workloads::{Benchmark, OoBenchmark};
use std::io::BufWriter;

fn usage() -> ! {
    let spec: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
    let oo: Vec<&str> = OoBenchmark::ALL.iter().map(|b| b.name()).collect();
    eprintln!(
        "usage: tracegen <benchmark> <instructions> <output-path>\n\
         benchmarks: {} / {}",
        spec.join(", "),
        oo.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [name, count, path] = args.as_slice() else {
        usage()
    };
    let budget: usize = count.parse().unwrap_or_else(|_| usage());

    let trace = if let Some(b) = Benchmark::from_name(name) {
        b.workload().generate(budget)
    } else if let Some(b) = OoBenchmark::ALL.iter().find(|b| b.name() == name) {
        b.workload().generate(budget)
    } else {
        usage()
    };

    let file = std::fs::File::create(path).expect("cannot create output file");
    write_trace(BufWriter::new(file), &trace).expect("cannot write trace");
    eprintln!("wrote {} instructions to {path}", trace.len());
}
