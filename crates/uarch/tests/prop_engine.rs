//! Property-based tests for the timing engine: scheduling invariants that
//! must hold for *any* trace, not just the workloads'.

use hps_uarch::{simulate, MachineConfig};
use proptest::prelude::*;
use sim_isa::{Addr, BranchClass, BranchExec, DynInstr, InstrClass, Reg, VecTrace};
use target_cache::harness::FrontEndConfig;

fn machine() -> MachineConfig {
    MachineConfig::isca97(FrontEndConfig::isca97_baseline())
}

/// An arbitrary instruction with a consistent next-pc chain left to the
/// caller (prediction correctness is irrelevant to these invariants, and
/// the engine never requires path consistency).
fn arb_instr() -> impl Strategy<Value = DynInstr> {
    let reg = proptest::option::of(0u16..32).prop_map(|r| r.map(Reg::new));
    (
        0u64..4096,
        0u8..10,
        any::<u64>(),
        reg.clone(),
        reg.clone(),
        reg,
        any::<bool>(),
    )
        .prop_map(|(pc, kind, payload, a, b, d, taken)| {
            let pc = Addr::from_word_index(pc);
            match kind {
                0..=3 => {
                    let class = [
                        InstrClass::Integer,
                        InstrClass::Mul,
                        InstrClass::Div,
                        InstrClass::BitField,
                    ][kind as usize];
                    let mut i = DynInstr::op(pc, class).with_srcs(a, b);
                    if let Some(d) = d {
                        i = i.with_dst(d);
                    }
                    i
                }
                4 | 5 => {
                    let mut i = if kind == 4 {
                        DynInstr::load(pc, payload)
                    } else {
                        DynInstr::store(pc, payload)
                    };
                    if let (4, Some(d)) = (kind, d) {
                        i = i.with_dst(d);
                    }
                    i
                }
                _ => {
                    let classes = [
                        BranchClass::CondDirect,
                        BranchClass::UncondDirect,
                        BranchClass::Call,
                        BranchClass::Return,
                        BranchClass::IndirectJump,
                    ];
                    let class = classes[(kind - 6) as usize % classes.len()];
                    let taken = taken || !class.is_conditional();
                    let target = Addr::from_word_index(payload % 4096 + 5000);
                    DynInstr::branch(pc, BranchExec::new(class, taken, target))
                }
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ipc_respects_machine_bounds(instrs in proptest::collection::vec(arb_instr(), 1..600)) {
        let trace: VecTrace = instrs.into_iter().collect();
        let r = simulate(&trace, &machine());
        prop_assert_eq!(r.instructions, trace.len() as u64);
        prop_assert!(r.cycles >= 1);
        prop_assert!(r.ipc() <= 8.0 + 1e-9, "IPC {} exceeds machine width", r.ipc());
        // Every instruction takes at least front_depth + latency + 1 to
        // retire, so cycles >= that of the last instruction alone.
        prop_assert!(r.cycles >= 4, "cycles {} impossibly small", r.cycles);
    }

    #[test]
    fn stall_cycles_never_exceed_total(instrs in proptest::collection::vec(arb_instr(), 1..600)) {
        let trace: VecTrace = instrs.into_iter().collect();
        let r = simulate(&trace, &machine());
        prop_assert!(r.mispredict_stall_cycles <= r.cycles);
        prop_assert!((0.0..=1.0).contains(&r.mispredict_stall_fraction()));
    }

    #[test]
    fn bigger_windows_never_slow_the_machine(instrs in proptest::collection::vec(arb_instr(), 1..400)) {
        let trace: VecTrace = instrs.into_iter().collect();
        let mut small = machine();
        small.window_size = 8;
        let mut big = machine();
        big.window_size = 128;
        let r_small = simulate(&trace, &small);
        let r_big = simulate(&trace, &big);
        prop_assert!(
            r_big.cycles <= r_small.cycles,
            "window 128 took {} cycles vs window 8's {}",
            r_big.cycles,
            r_small.cycles
        );
    }

    #[test]
    fn more_fus_never_slow_the_machine(instrs in proptest::collection::vec(arb_instr(), 1..400)) {
        let trace: VecTrace = instrs.into_iter().collect();
        let mut few = machine();
        few.fu_count = 2;
        let r_few = simulate(&trace, &few);
        let r_many = simulate(&trace, &machine());
        prop_assert!(r_many.cycles <= r_few.cycles);
    }

    #[test]
    fn simulation_is_deterministic_for_any_trace(instrs in proptest::collection::vec(arb_instr(), 1..300)) {
        let trace: VecTrace = instrs.into_iter().collect();
        let a = simulate(&trace, &machine());
        let b = simulate(&trace, &machine());
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.mispredict_stall_cycles, b.mispredict_stall_cycles);
        prop_assert_eq!(a.branch_stats, b.branch_stats);
        prop_assert_eq!(a.dcache_stats, b.dcache_stats);
    }

    #[test]
    fn oracle_never_loses_to_the_baseline(instrs in proptest::collection::vec(arb_instr(), 1..300)) {
        let trace: VecTrace = instrs.into_iter().collect();
        let base = simulate(&trace, &machine());
        let oracle = simulate(&trace, &MachineConfig::isca97(FrontEndConfig::isca97_oracle()));
        prop_assert!(
            oracle.cycles <= base.cycles,
            "oracle {} cycles vs baseline {}",
            oracle.cycles,
            base.cycles
        );
    }
}
