//! Simulation reports.

use crate::dcache::DCacheStats;
use branch_predictors::BranchClassStats;
use std::fmt;

/// The result of one timing simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Total cycles to retire the whole trace.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Fetch cycles lost waiting for mispredicted branches to resolve
    /// (the gap checkpoint repair leaves between a mispredicted branch's
    /// fetch and the correct-path refetch).
    pub mispredict_stall_cycles: u64,
    /// Per-branch-class prediction statistics from the front end.
    pub branch_stats: BranchClassStats,
    /// Data-cache statistics.
    pub dcache_stats: DCacheStats,
}

impl SimReport {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// The paper's headline metric: fractional reduction in execution time
    /// relative to a baseline run of the *same trace*
    /// (`(base - self) / base`).
    ///
    /// # Panics
    ///
    /// Panics if the two reports simulated different instruction counts —
    /// execution-time reductions are only meaningful for identical work.
    pub fn exec_time_reduction_vs(&self, baseline: &SimReport) -> f64 {
        assert_eq!(
            self.instructions, baseline.instructions,
            "execution-time reduction requires identical traces"
        );
        if baseline.cycles == 0 {
            0.0
        } else {
            (baseline.cycles as f64 - self.cycles as f64) / baseline.cycles as f64
        }
    }

    /// Indirect-jump misprediction rate (the paper's Table 1 metric).
    pub fn indirect_mispred_rate(&self) -> f64 {
        self.branch_stats.indirect_jump_misprediction_rate()
    }

    /// Fraction of all cycles spent stalled on mispredicted branches — the
    /// headroom a better predictor attacks.
    pub fn mispredict_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mispredict_stall_cycles as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} instructions in {} cycles (IPC {:.3})",
            self.instructions,
            self.cycles,
            self.ipc()
        )?;
        writeln!(
            f,
            "indirect-jump misprediction: {:.2}%; D-cache hit rate {:.2}%; \
             {:.1}% of cycles stalled on mispredictions",
            self.indirect_mispred_rate() * 100.0,
            self.dcache_stats.hit_rate() * 100.0,
            self.mispredict_stall_fraction() * 100.0
        )?;
        write!(f, "{}", self.branch_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, instructions: u64) -> SimReport {
        SimReport {
            cycles,
            instructions,
            mispredict_stall_cycles: 0,
            branch_stats: BranchClassStats::default(),
            dcache_stats: DCacheStats::default(),
        }
    }

    #[test]
    fn stall_fraction() {
        let mut r = report(1000, 500);
        r.mispredict_stall_cycles = 250;
        assert!((r.mispredict_stall_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(report(0, 0).mispredict_stall_fraction(), 0.0);
    }

    #[test]
    fn ipc_and_reduction() {
        let base = report(1000, 2000);
        let faster = report(850, 2000);
        assert!((base.ipc() - 2.0).abs() < 1e-12);
        assert!((faster.exec_time_reduction_vs(&base) - 0.15).abs() < 1e-12);
        assert!(base.exec_time_reduction_vs(&base).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "identical traces")]
    fn reduction_requires_same_instruction_count() {
        report(100, 10).exec_time_reduction_vs(&report(100, 20));
    }

    #[test]
    fn display_mentions_ipc() {
        let r = report(100, 250);
        assert!(r.to_string().contains("IPC 2.500"));
    }
}
