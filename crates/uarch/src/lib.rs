#![warn(missing_docs)]

//! HPS-like wide-issue out-of-order timing model.
//!
//! The paper measures the target cache's end-to-end benefit as *reduction
//! in execution time* on the HPS microarchitecture: a wide-issue,
//! out-of-order machine using Tomasulo-style dynamic scheduling with
//! checkpoint repair — "checkpoints are established for each branch; thus,
//! once a branch misprediction is determined, instructions from the correct
//! path are fetched in the next cycle."
//!
//! This crate reimplements that machine as a deterministic trace-driven
//! timing model:
//!
//! * **Front end** — the `target-cache` crate's
//!   [`PredictionHarness`](target_cache::harness::PredictionHarness)
//!   (BTB + two-level predictor + return stack + optional target cache)
//!   decides, for every branch, whether the fetch stream was redirected
//!   correctly. Fetch supplies up to `fetch_width` instructions per cycle
//!   and cannot fetch past a taken branch within a cycle.
//! * **Execution core** — register renaming (modelled as per-register
//!   ready times), a bounded in-flight window with in-order retirement,
//!   `fu_count` universal function units with the class latencies of the
//!   paper's Table 3, and a simulated data cache with a fixed miss penalty.
//! * **Misprediction recovery** — a mispredicted branch blocks fetch of
//!   younger instructions until the cycle after the branch executes
//!   (checkpoint repair: no drain, no retrain).
//!
//! Because the model is trace-driven along the correct path, wrong-path
//! instructions are not simulated; their cost appears as the fetch gap
//! between a mispredicted branch and its resolution, which is the dominant
//! first-order effect the paper's execution-time numbers capture.
//!
//! # Example
//!
//! ```
//! use hps_uarch::{simulate, MachineConfig};
//! use target_cache::harness::FrontEndConfig;
//! use target_cache::TargetCacheConfig;
//! use sim_workloads::Benchmark;
//!
//! let trace = Benchmark::Perl.workload().generate(20_000);
//! let base = simulate(&trace, &MachineConfig::isca97(FrontEndConfig::isca97_baseline()));
//! let tc = simulate(&trace, &MachineConfig::isca97(FrontEndConfig::isca97_with(
//!     TargetCacheConfig::isca97_tagless_gshare(),
//! )));
//! assert!(tc.cycles <= base.cycles, "the target cache must not slow perl down");
//! ```

pub mod config;
pub mod dcache;
pub mod engine;
pub mod report;

pub use config::{DCacheConfig, MachineConfig};
pub use dcache::DataCache;
pub use engine::{simulate, simulate_instrumented};
pub use report::SimReport;
