//! A set-associative data cache with LRU replacement.

use crate::config::DCacheConfig;

/// Access statistics for the data cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DCacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
}

impl DCacheStats {
    /// Misses.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]`; zero when never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    lru: u64,
}

/// A write-allocate, LRU, set-associative data cache model.
///
/// # Example
///
/// ```
/// use hps_uarch::{DataCache, DCacheConfig};
///
/// let mut cache = DataCache::new(DCacheConfig::isca97());
/// assert!(!cache.access(0x1000));      // cold miss
/// assert!(cache.access(0x1008));       // same line: hit
/// ```
#[derive(Clone, Debug)]
pub struct DataCache {
    config: DCacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: DCacheStats,
}

impl DataCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is malformed (see [`DCacheConfig::sets`]).
    pub fn new(config: DCacheConfig) -> Self {
        let sets = config.sets();
        DataCache {
            config,
            sets: vec![Vec::new(); sets],
            clock: 0,
            stats: DCacheStats::default(),
        }
    }

    /// Accesses a byte address; returns whether it hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line_addr = addr / self.config.line_bytes as u64;
        let set_index = (line_addr as usize) & (self.sets.len() - 1);
        let tag = line_addr / self.sets.len() as u64;
        let ways = self.config.assoc;
        let clock = self.clock;
        let set = &mut self.sets[set_index];
        self.stats.accesses += 1;
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.lru = clock;
            self.stats.hits += 1;
            return true;
        }
        if set.len() < ways {
            set.push(Line { tag, lru: clock });
        } else {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("set non-empty");
            set[victim] = Line { tag, lru: clock };
        }
        false
    }

    /// Access statistics.
    pub fn stats(&self) -> DCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DataCache {
        // 2 sets x 2 ways x 32-byte lines = 128 bytes.
        DataCache::new(DCacheConfig {
            size_bytes: 128,
            line_bytes: 32,
            assoc: 2,
            miss_penalty: 10,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x11F), "same 32-byte line");
        assert!(!c.access(0x120), "next line is a different set/line");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Lines 0x000, 0x080, 0x100 share set 0 (line_addr % 2 == 0).
        assert!(!c.access(0x000));
        assert!(!c.access(0x080));
        assert!(c.access(0x000)); // touch: 0x080 becomes LRU
        assert!(!c.access(0x100)); // evicts 0x080
        assert!(c.access(0x000));
        assert!(!c.access(0x080), "evicted line misses again");
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = small();
        c.access(0x0);
        c.access(0x0);
        c.access(0x40);
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn strided_working_set_fits_16k() {
        let mut c = DataCache::new(DCacheConfig::isca97());
        // An 8 KB working set walked twice: second pass all hits.
        for pass in 0..2 {
            let mut hits = 0;
            for i in 0..256u64 {
                hits += c.access(0x1_0000 + i * 32) as u32;
            }
            if pass == 1 {
                assert_eq!(hits, 256);
            }
        }
    }
}
