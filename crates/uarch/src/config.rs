//! Machine configuration: the paper's Table 3 latencies and HPS machine
//! parameters.

use sim_isa::InstrClass;
use target_cache::harness::FrontEndConfig;

/// Data cache geometry and timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DCacheConfig {
    /// Total capacity in bytes (the paper simulates a 16 KB data cache).
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Ways per set.
    pub assoc: usize,
    /// Extra cycles added to a load that misses ("latency for fetching
    /// data from memory is 10 cycles").
    pub miss_penalty: u32,
}

impl DCacheConfig {
    /// The paper's data cache: 16 KB; line size and associativity are not
    /// stated, so we use era-typical values (32-byte lines, 4-way).
    pub fn isca97() -> Self {
        DCacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            assoc: 4,
            miss_penalty: 10,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a power-of-two set count.
    pub fn sets(&self) -> usize {
        let sets = self.size_bytes / (self.line_bytes * self.assoc);
        assert!(
            sets.is_power_of_two() && sets >= 1,
            "cache sets must be a power of two"
        );
        sets
    }
}

/// Full machine configuration for the timing model.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Instructions fetched per cycle (stops at a taken branch).
    pub fetch_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Maximum instructions in flight ("the maximum number of instructions
    /// that can exist in the machine at one time").
    pub window_size: usize,
    /// Number of universal function units ("each functional unit can
    /// execute instructions from any of the instruction classes").
    pub fu_count: usize,
    /// Pipeline stages between fetch and earliest execute (decode/rename).
    pub front_depth: u32,
    /// Execution latency per instruction class (Table 3).
    pub latencies: [u32; 8],
    /// Data cache.
    pub dcache: DCacheConfig,
    /// Front-end predictors (BTB, direction predictor, RAS, target cache).
    pub frontend: FrontEndConfig,
}

impl MachineConfig {
    /// The paper's HPS configuration with the given front end.
    ///
    /// Table 3 latencies: integer/store/bit-field/branch 1 cycle, FP add 3,
    /// multiply 3, divide 8, load 2 (plus the miss penalty). Width and
    /// window values follow the paper where legible (wide issue, perfect
    /// I-cache, 16 KB D-cache) and era-standard HPS values elsewhere
    /// (8-wide, 32 in flight), recorded in EXPERIMENTS.md.
    pub fn isca97(frontend: FrontEndConfig) -> Self {
        let mut latencies = [1u32; 8];
        latencies[InstrClass::FpAdd.index()] = 3;
        latencies[InstrClass::Mul.index()] = 3;
        latencies[InstrClass::Div.index()] = 8;
        latencies[InstrClass::Load.index()] = 2;
        MachineConfig {
            fetch_width: 8,
            retire_width: 8,
            window_size: 32,
            fu_count: 8,
            front_depth: 2,
            latencies,
            dcache: DCacheConfig::isca97(),
            frontend,
        }
    }

    /// The execution latency of an instruction class.
    pub fn latency(&self, class: InstrClass) -> u32 {
        self.latencies[class.index()]
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter (zero widths,
    /// zero window, zero-latency classes).
    pub fn check(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.retire_width == 0 {
            return Err("fetch and retire width must be nonzero".into());
        }
        if self.window_size == 0 {
            return Err("window size must be nonzero".into());
        }
        if self.fu_count == 0 {
            return Err("machine needs at least one function unit".into());
        }
        if self.latencies.contains(&0) {
            return Err("instruction latencies must be nonzero".into());
        }
        self.dcache.sets(); // panics on malformed geometry
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca97_latencies_match_table3() {
        let c = MachineConfig::isca97(FrontEndConfig::isca97_baseline());
        assert_eq!(c.latency(InstrClass::Integer), 1);
        assert_eq!(c.latency(InstrClass::FpAdd), 3);
        assert_eq!(c.latency(InstrClass::Mul), 3);
        assert_eq!(c.latency(InstrClass::Div), 8);
        assert_eq!(c.latency(InstrClass::Load), 2);
        assert_eq!(c.latency(InstrClass::Store), 1);
        assert_eq!(c.latency(InstrClass::BitField), 1);
        assert_eq!(c.latency(InstrClass::Branch), 1);
    }

    #[test]
    fn isca97_machine_shape() {
        let c = MachineConfig::isca97(FrontEndConfig::isca97_baseline());
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.window_size, 32);
        assert!(c.check().is_ok());
    }

    #[test]
    fn dcache_geometry() {
        let d = DCacheConfig::isca97();
        assert_eq!(d.sets(), 128);
        assert_eq!(d.miss_penalty, 10);
    }

    #[test]
    fn check_rejects_broken_configs() {
        let mut c = MachineConfig::isca97(FrontEndConfig::isca97_baseline());
        c.fetch_width = 0;
        assert!(c.check().is_err());
        let mut c = MachineConfig::isca97(FrontEndConfig::isca97_baseline());
        c.window_size = 0;
        assert!(c.check().is_err());
        let mut c = MachineConfig::isca97(FrontEndConfig::isca97_baseline());
        c.latencies[0] = 0;
        assert!(c.check().is_err());
    }
}
