//! The timing engine: a deterministic trace-driven schedule of fetch,
//! execute, and retire.

use crate::config::MachineConfig;
use crate::dcache::DataCache;
use crate::report::SimReport;
use sim_isa::{DynInstr, InstrClass};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use target_cache::harness::PredictionHarness;
use target_cache::telemetry::HarnessTelemetry;

/// Simulates a trace on the configured machine and reports cycles and
/// statistics.
///
/// The schedule honours, per instruction:
///
/// * fetch bandwidth (`fetch_width`/cycle, no fetch past a taken branch),
/// * the in-flight window (`window_size`),
/// * register data-flow (renamed: per-architectural-register ready times),
/// * function-unit issue bandwidth (`fu_count` issues/cycle),
/// * class latencies plus data-cache misses for loads,
/// * in-order retirement (`retire_width`/cycle),
/// * and branch misprediction: fetch of younger instructions resumes the
///   cycle after a mispredicted branch executes (checkpoint repair).
///
/// # Panics
///
/// Panics if the machine configuration is invalid
/// ([`MachineConfig::check`]).
pub fn simulate<'a, I>(trace: I, config: &MachineConfig) -> SimReport
where
    I: IntoIterator<Item = &'a DynInstr>,
{
    simulate_instrumented(trace, config, None)
}

/// [`simulate`] with observability hooks attached to the embedded
/// prediction harness: branch and mispredict counters feed the hooks'
/// metrics registry, and (when the hooks carry an event sink) each
/// misprediction records a structured event. Pass `None` for a plain,
/// uninstrumented run — the timing schedule is identical either way.
pub fn simulate_instrumented<'a, I>(
    trace: I,
    config: &MachineConfig,
    telemetry: Option<HarnessTelemetry>,
) -> SimReport
where
    I: IntoIterator<Item = &'a DynInstr>,
{
    config.check().expect("machine configuration must be valid");
    // When the hooks carry a hot-path profiler (`REPRO_PROF=full`), the
    // engine times its own pipeline stages into it alongside the
    // harness's prediction phases. Timers are resolved once, out here.
    let stage_timers = telemetry.as_ref().and_then(|t| t.hot_profiler()).map(|h| {
        (
            h.timer("uarch-fetch"),
            h.timer("uarch-execute"),
            h.timer("uarch-retire"),
        )
    });
    let clock = |on: bool| on.then(std::time::Instant::now);
    let mut harness = PredictionHarness::new(config.frontend);
    if let Some(t) = telemetry {
        harness.attach_telemetry(t);
    }
    let mut dcache = DataCache::new(config.dcache);

    // Fetch stream state.
    let mut stream_cycle: u64 = 0;
    let mut fetched_this_cycle: usize = 0;

    // Rename state: cycle each architectural register's latest value is
    // available.
    let mut reg_ready = [0u64; sim_isa::reg::REG_COUNT as usize];

    // Function units: min-heap of next-free cycles, one entry per FU.
    let mut fu_free: BinaryHeap<Reverse<u64>> = (0..config.fu_count).map(|_| Reverse(0)).collect();

    // Retirement state.
    let mut last_retire_cycle: u64 = 0;
    let mut retired_in_cycle: usize = 0;
    // Retire cycles of the youngest `window_size` instructions.
    let mut window: VecDeque<u64> = VecDeque::with_capacity(config.window_size);

    let mut instructions: u64 = 0;
    let mut final_cycle: u64 = 0;
    let mut mispredict_stall_cycles: u64 = 0;

    let timed = stage_timers.is_some();
    for instr in trace {
        instructions += 1;

        let t0 = clock(timed);
        // --- Fetch ----------------------------------------------------
        // Window constraint: the (i - window_size)-th instruction must
        // have retired before this one can occupy a slot.
        let window_barrier = if window.len() == config.window_size {
            window.pop_front().expect("window full") + 1
        } else {
            0
        };
        if window_barrier > stream_cycle {
            stream_cycle = window_barrier;
            fetched_this_cycle = 0;
        }
        if fetched_this_cycle == config.fetch_width {
            stream_cycle += 1;
            fetched_this_cycle = 0;
        }
        let fetch_cycle = stream_cycle;
        fetched_this_cycle += 1;
        if let (Some((fetch, _, _)), Some(t0)) = (&stage_timers, t0) {
            fetch.stop(t0);
        }

        let t0 = clock(timed);
        // --- Execute ---------------------------------------------------
        let decode_done = fetch_cycle + config.front_depth as u64;
        let operands_ready = instr
            .srcs()
            .iter()
            .flatten()
            .map(|r| reg_ready[r.index() as usize])
            .max()
            .unwrap_or(0);
        let Reverse(fu_available) = fu_free.pop().expect("at least one FU");
        let start = decode_done.max(operands_ready).max(fu_available);
        // FUs are fully pipelined: each occupies its issue slot for one
        // cycle.
        fu_free.push(Reverse(start + 1));

        let mut latency = config.latency(instr.class()) as u64;
        if let Some(mem) = instr.mem() {
            let hit = dcache.access(mem.addr);
            if instr.class() == InstrClass::Load && !hit {
                latency += config.dcache.miss_penalty as u64;
            }
        }
        let complete = start + latency;
        if let Some(dst) = instr.dst() {
            reg_ready[dst.index() as usize] = complete;
        }
        if let (Some((_, execute, _)), Some(t0)) = (&stage_timers, t0) {
            execute.stop(t0);
        }

        // --- Branch prediction and fetch redirection --------------------
        // (The harness times its own prediction phases into the same
        // profiler; no engine-level timer here to avoid double counting.)
        if let Some(outcome) = harness.process(instr) {
            if !outcome.correct() {
                // Checkpoint repair: correct-path fetch resumes the cycle
                // after the branch executes.
                let resume = complete + 1;
                if resume > stream_cycle {
                    // The gap (minus the one cycle fetch would have taken
                    // anyway) is pure misprediction stall.
                    mispredict_stall_cycles += resume - stream_cycle - 1;
                    stream_cycle = resume;
                    fetched_this_cycle = 0;
                }
            } else if instr.branch_exec().is_some_and(|b| b.taken) {
                // Correctly-predicted taken branch: the fetch group ends;
                // the target is fetched next cycle.
                stream_cycle = fetch_cycle + 1;
                fetched_this_cycle = 0;
            }
        }

        // --- Retire ------------------------------------------------------
        let t0 = clock(timed);
        let earliest = complete + 1;
        let mut retire_cycle = earliest.max(last_retire_cycle);
        if retire_cycle == last_retire_cycle && retired_in_cycle == config.retire_width {
            retire_cycle += 1;
        }
        if retire_cycle > last_retire_cycle {
            last_retire_cycle = retire_cycle;
            retired_in_cycle = 0;
        }
        retired_in_cycle += 1;
        window.push_back(retire_cycle);
        final_cycle = retire_cycle;
        if let (Some((_, _, retire)), Some(t0)) = (&stage_timers, t0) {
            retire.stop(t0);
        }
    }

    SimReport {
        cycles: final_cycle,
        instructions,
        mispredict_stall_cycles,
        branch_stats: harness.stats().clone(),
        dcache_stats: dcache.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Addr, BranchClass, BranchExec, Reg, VecTrace};
    use target_cache::harness::FrontEndConfig;

    fn machine() -> MachineConfig {
        MachineConfig::isca97(FrontEndConfig::isca97_baseline())
    }

    fn op(i: u64) -> DynInstr {
        DynInstr::op(Addr::from_word_index(i), InstrClass::Integer)
    }

    #[test]
    fn straightline_independent_code_approaches_fetch_width_ipc() {
        let trace: VecTrace = (0..8000).map(op).collect();
        let r = simulate(&trace, &machine());
        assert!(
            r.ipc() > 6.0,
            "independent integer ops should run near 8 IPC, got {}",
            r.ipc()
        );
    }

    #[test]
    fn dependent_chain_runs_at_one_ipc() {
        let trace: VecTrace = (0..4000)
            .map(|i| {
                DynInstr::op(Addr::from_word_index(i), InstrClass::Integer)
                    .with_srcs(Some(Reg::new(1)), None)
                    .with_dst(Reg::new(1))
            })
            .collect();
        let r = simulate(&trace, &machine());
        assert!(
            (0.8..=1.1).contains(&r.ipc()),
            "a serial dependence chain must run at ~1 IPC, got {}",
            r.ipc()
        );
    }

    #[test]
    fn dependent_divides_run_at_divide_latency() {
        let trace: VecTrace = (0..1000)
            .map(|i| {
                DynInstr::op(Addr::from_word_index(i), InstrClass::Div)
                    .with_srcs(Some(Reg::new(1)), None)
                    .with_dst(Reg::new(1))
            })
            .collect();
        let r = simulate(&trace, &machine());
        let cpi = r.cycles as f64 / r.instructions as f64;
        assert!((7.5..=8.5).contains(&cpi), "divide chain CPI {cpi}");
    }

    #[test]
    fn fu_bandwidth_bounds_ipc() {
        let mut config = machine();
        config.fu_count = 2;
        let trace: VecTrace = (0..8000).map(op).collect();
        let r = simulate(&trace, &config);
        assert!(r.ipc() <= 2.05, "2 FUs cap IPC at 2, got {}", r.ipc());
        assert!(r.ipc() > 1.8);
    }

    #[test]
    fn cache_misses_slow_dependent_loads() {
        // Dependent loads with a huge stride (every access misses) vs the
        // same loads hitting one line.
        let missy: VecTrace = (0..2000)
            .map(|i| {
                DynInstr::load(Addr::from_word_index(i), i * 1_000_003)
                    .with_srcs(Some(Reg::new(1)), None)
                    .with_dst(Reg::new(1))
            })
            .collect();
        let hitty: VecTrace = (0..2000)
            .map(|i| {
                DynInstr::load(Addr::from_word_index(i), 0x40)
                    .with_srcs(Some(Reg::new(1)), None)
                    .with_dst(Reg::new(1))
            })
            .collect();
        let r_miss = simulate(&missy, &machine());
        let r_hit = simulate(&hitty, &machine());
        assert!(
            r_miss.cycles > r_hit.cycles * 3,
            "miss chain {} vs hit chain {}",
            r_miss.cycles,
            r_hit.cycles
        );
        assert!(r_miss.dcache_stats.hit_rate() < 0.1);
        assert!(r_hit.dcache_stats.hit_rate() > 0.99);
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // An indirect jump cycling through 16 targets (unpredictable for
        // the BTB-only front end) vs the same number of monomorphic jumps.
        fn jump_trace(ntargets: u64) -> VecTrace {
            let mut t = VecTrace::new();
            for i in 0..3000u64 {
                // Straight-line padding then a jump back.
                for k in 0..4 {
                    t.push(op(1_000_000 + k));
                }
                t.push(DynInstr::branch(
                    Addr::from_word_index(1_000_004),
                    BranchExec::taken(
                        BranchClass::IndirectJump,
                        Addr::from_word_index(2_000_000 + (i % ntargets) * 1024),
                    ),
                ));
                for k in 0..4 {
                    t.push(op(2_000_000 + (i % ntargets) * 1024 + k));
                }
                t.push(DynInstr::branch(
                    Addr::from_word_index(2_000_000 + (i % ntargets) * 1024 + 4),
                    BranchExec::taken(BranchClass::UncondDirect, Addr::from_word_index(1_000_000)),
                ));
            }
            t
        }
        let poly = simulate(&jump_trace(16), &machine());
        let mono = simulate(&jump_trace(1), &machine());
        assert!(
            poly.mispredict_stall_cycles > mono.mispredict_stall_cycles * 5,
            "stall accounting must attribute the gap: poly {} vs mono {}",
            poly.mispredict_stall_cycles,
            mono.mispredict_stall_cycles
        );
        assert!(poly.mispredict_stall_fraction() > 0.3);
        assert!(
            poly.cycles as f64 > mono.cycles as f64 * 1.3,
            "polymorphic {} vs monomorphic {}",
            poly.cycles,
            mono.cycles
        );
        assert!(poly.indirect_mispred_rate() > 0.9);
        assert!(mono.indirect_mispred_rate() < 0.05);
    }

    #[test]
    fn window_size_limits_overlap_of_long_latency_tails() {
        // Independent divides: a big window overlaps them, a tiny window
        // serializes fetch behind retirement.
        let trace: VecTrace = (0..2000)
            .map(|i| DynInstr::op(Addr::from_word_index(i), InstrClass::Div))
            .collect();
        let mut small = machine();
        small.window_size = 4;
        let mut big = machine();
        big.window_size = 64;
        let r_small = simulate(&trace, &small);
        let r_big = simulate(&trace, &big);
        assert!(
            r_small.cycles > r_big.cycles,
            "window 4: {} cycles, window 64: {} cycles",
            r_small.cycles,
            r_big.cycles
        );
    }

    #[test]
    fn fetch_cannot_pass_a_taken_branch() {
        // Back-to-back taken jumps: at most one branch fetches per cycle,
        // so IPC is pinned near 1 regardless of the 8-wide front end.
        let mut t = VecTrace::new();
        for i in 0..3000u64 {
            let pc = Addr::from_word_index(1000 + (i % 2) * 500);
            let target = Addr::from_word_index(1000 + ((i + 1) % 2) * 500);
            t.push(DynInstr::branch(
                pc,
                BranchExec::taken(BranchClass::UncondDirect, target),
            ));
        }
        let r = simulate(&t, &machine());
        assert!(
            r.ipc() <= 1.05,
            "taken-branch-dense code must not exceed 1 IPC, got {}",
            r.ipc()
        );
    }

    #[test]
    fn retire_width_bounds_ipc() {
        let mut config = machine();
        config.retire_width = 2;
        let trace: VecTrace = (0..8000).map(op).collect();
        let r = simulate(&trace, &config);
        assert!(r.ipc() <= 2.05, "retire width 2 caps IPC, got {}", r.ipc());
    }

    #[test]
    fn deeper_front_end_increases_misprediction_cost() {
        // Same trace, deeper decode pipe: each misprediction costs more.
        let mut t = VecTrace::new();
        for i in 0..2000u64 {
            t.push(DynInstr::branch(
                Addr::from_word_index(1000),
                BranchExec::taken(
                    BranchClass::IndirectJump,
                    Addr::from_word_index(2000 + (i % 13) * 512),
                ),
            ));
            for k in 0..3 {
                t.push(op(2000 + (i % 13) * 512 + k + 1));
            }
            t.push(DynInstr::branch(
                Addr::from_word_index(2000 + (i % 13) * 512 + 4),
                BranchExec::taken(BranchClass::UncondDirect, Addr::from_word_index(1000)),
            ));
        }
        let shallow = simulate(&t, &machine());
        let mut deep_cfg = machine();
        deep_cfg.front_depth = 10;
        let deep = simulate(&t, &deep_cfg);
        assert!(
            deep.cycles > shallow.cycles,
            "deep pipe {} should be slower than shallow {}",
            deep.cycles,
            shallow.cycles
        );
    }

    #[test]
    fn wider_fetch_helps_straightline_code() {
        let trace: VecTrace = (0..8000).map(op).collect();
        let mut narrow = machine();
        narrow.fetch_width = 2;
        let r_narrow = simulate(&trace, &narrow);
        let r_wide = simulate(&trace, &machine());
        assert!(r_wide.cycles < r_narrow.cycles);
    }

    #[test]
    fn empty_trace_reports_zero() {
        let r = simulate(&VecTrace::new(), &machine());
        assert_eq!(r.cycles, 0);
        assert_eq!(r.instructions, 0);
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn instrumented_simulation_reconciles_with_the_report() {
        use sim_telemetry::{EventSink, MetricsRegistry};

        let trace = sim_workloads::Benchmark::Gcc.workload().generate(30_000);
        let registry = MetricsRegistry::new();
        let sink = EventSink::new();
        let telemetry = HarnessTelemetry::new(&registry, Some(sink.clone()));
        let r = simulate_instrumented(&trace, &machine(), Some(telemetry));

        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("harness.branches"),
            r.branch_stats.total_executed()
        );
        assert_eq!(
            snap.counter("harness.mispredicts"),
            r.branch_stats.total_mispredicted()
        );
        assert_eq!(sink.len() as u64, r.branch_stats.total_mispredicted());

        // Identical timing with and without instrumentation.
        let plain = simulate(&trace, &machine());
        assert_eq!(plain.cycles, r.cycles);
        assert_eq!(plain.branch_stats, r.branch_stats);
    }

    #[test]
    fn full_profiling_times_pipeline_stages_without_changing_timing() {
        use sim_telemetry::{HotProfiler, MetricsRegistry};

        let trace = sim_workloads::Benchmark::Perl.workload().generate(20_000);
        let registry = MetricsRegistry::new();
        let hot = HotProfiler::new();
        let telemetry = HarnessTelemetry::new(&registry, None).with_hot_profiler(hot.clone());
        let r = simulate_instrumented(&trace, &machine(), Some(telemetry));

        let snap = hot.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        for stage in ["uarch-fetch", "uarch-execute", "uarch-retire"] {
            assert!(names.contains(&stage), "missing stage {stage}");
        }
        // One sample per instruction per stage.
        let fetch = snap.iter().find(|s| s.name == "uarch-fetch").unwrap();
        assert_eq!(fetch.count, r.instructions);
        // Harness prediction phases land in the same profiler.
        assert!(names.contains(&"btb-lookup"), "{names:?}");
        // The simulated schedule is identical to an unprofiled run.
        let plain = simulate(&trace, &machine());
        assert_eq!(plain.cycles, r.cycles);
        assert_eq!(plain.branch_stats, r.branch_stats);
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = sim_workloads::Benchmark::Gcc.workload().generate(30_000);
        let a = simulate(&trace, &machine());
        let b = simulate(&trace, &machine());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.branch_stats, b.branch_stats);
    }
}
