//! Golden-file test pinning the `.strc` v1 byte layout.
//!
//! The encoded bytes of a small fixed trace are pinned in-source as
//! hex. If this test fails, the on-disk format changed: either revert
//! the codec change, or bump `FORMAT_VERSION` (readers must refuse the
//! new version loudly) and re-pin these bytes.

use sim_isa::{Addr, BranchClass, BranchExec, DynInstr, InstrClass, Reg, VecTrace};
use sim_trace::{encode_to_vec, TraceMeta, TraceReader};

/// A fixed trace covering every record shape: plain ops with each
/// operand combination, loads/stores with positive and negative
/// address deltas, and taken/not-taken branches of several classes.
fn golden_trace() -> VecTrace {
    vec![
        DynInstr::op(Addr::new(0x1000), InstrClass::Integer)
            .with_srcs(Some(Reg::new(1)), Some(Reg::new(2)))
            .with_dst(Reg::new(3)),
        DynInstr::op(Addr::new(0x1004), InstrClass::FpAdd).with_dst(Reg::new(30)),
        DynInstr::op(Addr::new(0x1008), InstrClass::Mul),
        DynInstr::op(Addr::new(0x100c), InstrClass::Div).with_srcs(None, Some(Reg::new(7))),
        DynInstr::op(Addr::new(0x1010), InstrClass::BitField).with_srcs(Some(Reg::new(0)), None),
        DynInstr::load(Addr::new(0x1014), 0x8000_0000).with_dst(Reg::new(9)),
        DynInstr::store(Addr::new(0x1018), 0x7fff_fff8).with_srcs(Some(Reg::new(9)), None),
        DynInstr::branch(
            Addr::new(0x101c),
            BranchExec::not_taken(BranchClass::CondDirect, Addr::new(0x0800)),
        ),
        DynInstr::branch(
            Addr::new(0x1020),
            BranchExec::taken(BranchClass::CondDirect, Addr::new(0x0800)),
        ),
        DynInstr::branch(
            Addr::new(0x0800),
            BranchExec::taken(BranchClass::Call, Addr::new(0x2000)),
        ),
        DynInstr::branch(
            Addr::new(0x2000),
            BranchExec::taken(BranchClass::IndirectJump, Addr::new(0x3000)),
        ),
        DynInstr::branch(
            Addr::new(0x3000),
            BranchExec::taken(BranchClass::Return, Addr::new(0x0804)),
        ),
    ]
    .into_iter()
    .collect()
}

fn golden_meta() -> TraceMeta {
    TraceMeta {
        benchmark: "golden".into(),
        scale: "quick".into(),
        seed: 0x0123_4567_89ab_cdef,
        generator_version: 1,
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The pinned v1 encoding of [`golden_trace`] under [`golden_meta`],
/// including the BBV side-section appended after the last chunk.
const GOLDEN_HEX: &str = "53545243303030310100010006676f6c64656e05717569636befcdab89674523010c00000000000000010000000000000001000000000000000100000000000000010000000000000001000000000000000100000000000000010000000000000005000000000000000200000000000000000000000000000001000000000000000000000000000000010000000000000001000000000000000100000000000000010000000000000089100c7fd1c7b2d40c0000003900000038801001020321021e02021302070e020024020980808080100d02090f0700028d084700028f0847028f08801847058018801047048010fd27c58abe0070d1a59153544256303030311600000001000100000005800401800808880801801001801801c292f5be1aba4527";

/// The same trace as encoded before the BBV side-section existed:
/// identical up to the last chunk, then clean EOF. Pinned so the
/// reader's backward compatibility with pre-section files can never
/// silently break.
const GOLDEN_HEX_PRE_BBV: &str = "53545243303030310100010006676f6c64656e05717569636befcdab89674523010c00000000000000010000000000000001000000000000000100000000000000010000000000000001000000000000000100000000000000010000000000000005000000000000000200000000000000000000000000000001000000000000000000000000000000010000000000000001000000000000000100000000000000010000000000000089100c7fd1c7b2d40c0000003900000038801001020321021e02021302070e020024020980808080100d02090f0700028d084700028f0847028f08801847058018801047048010fd27c58abe0070d1a591";

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
        .collect()
}

#[test]
fn v1_byte_layout_is_pinned() {
    let bytes = encode_to_vec(golden_meta(), &golden_trace()).unwrap();
    assert_eq!(
        hex(&bytes),
        GOLDEN_HEX,
        "the .strc v1 byte layout changed; see the module docs"
    );
    // The record stream itself (everything before the side-section) is
    // byte-identical to the pre-section encoding: the section is a pure
    // suffix extension.
    assert!(GOLDEN_HEX.starts_with(GOLDEN_HEX_PRE_BBV));
}

#[test]
fn pinned_bytes_decode_to_the_golden_trace() {
    // The inverse direction: the pinned hex itself (not a fresh
    // encode) must decode to the fixed trace, so a lockstep change to
    // encoder and decoder cannot slip through.
    let bytes = unhex(GOLDEN_HEX);
    let reader = TraceReader::new(bytes.as_slice()).unwrap();
    let header = reader.header().clone();
    assert_eq!(header.meta, golden_meta());
    assert_eq!(header.instructions, golden_trace().len() as u64);
    let (decoded, bbv) = reader.read_to_end_with_bbv().unwrap();
    assert_eq!(decoded, golden_trace());
    let section = bbv.expect("pinned bytes carry a bbv section");
    assert_eq!(section.chunks.len(), 1);
    assert_eq!(
        section.chunks[0].instructions(),
        golden_trace().len() as u64
    );
}

#[test]
fn pre_bbv_files_still_decode() {
    let bytes = unhex(GOLDEN_HEX_PRE_BBV);
    let reader = TraceReader::new(bytes.as_slice()).unwrap();
    let (decoded, bbv) = reader.read_to_end_with_bbv().unwrap();
    assert_eq!(decoded, golden_trace());
    assert!(bbv.is_none(), "a pre-section file has no fingerprints");
}
