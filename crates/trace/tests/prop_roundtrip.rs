//! Property tests for the `.strc` codec: arbitrary `DynInstr` sequences
//! survive the encode → decode round trip bit-for-bit, the header
//! always describes the payload, and the stats summary of the decoded
//! trace matches what the writer recorded.

use proptest::prelude::*;
use sim_isa::{Addr, BranchClass, BranchExec, DynInstr, InstrClass, Reg, VecTrace};
use sim_trace::{encode_to_vec, StatsSummary, TraceMeta, TraceReader, CHUNK_RECORDS};

/// One arbitrary instruction: any record kind, any operand mix, any
/// word-aligned addresses. The kind selector maps 0–4 to the plain op
/// classes, 5/6 to load/store, and 7 to a branch whose class comes from
/// the dedicated selector (non-conditional classes are forced taken, as
/// the `BranchExec` constructor requires).
fn arb_instr() -> impl Strategy<Value = DynInstr> {
    let reg_count = u64::from(sim_isa::reg::REG_COUNT);
    (
        0u64..(u64::MAX / 4),           // pc word index
        0u8..8,                         // record-kind selector
        any::<u64>(),                   // load/store data address
        0u64..(u64::MAX / 4),           // branch target word index
        (0u8..6, any::<bool>()),        // branch class + taken-ness
        prop::option::of(0..reg_count), // src0
        prop::option::of(0..reg_count), // src1
        prop::option::of(0..reg_count), // dst
    )
        .prop_map(|(word, kind, mem, target, (class, taken), s0, s1, dst)| {
            const OPS: [InstrClass; 5] = [
                InstrClass::Integer,
                InstrClass::FpAdd,
                InstrClass::Mul,
                InstrClass::Div,
                InstrClass::BitField,
            ];
            let pc = Addr::from_word_index(word);
            let reg = |i: Option<u64>| i.map(|i| Reg::new(i as u16));
            let instr = match kind {
                0..=4 => DynInstr::op(pc, OPS[kind as usize]),
                5 => DynInstr::load(pc, mem),
                6 => DynInstr::store(pc, mem),
                _ => {
                    let class = BranchClass::ALL[class as usize];
                    let taken = taken || !class.is_conditional();
                    let target = Addr::from_word_index(target);
                    DynInstr::branch(pc, BranchExec::new(class, taken, target))
                }
            };
            let instr = instr.with_srcs(reg(s0), reg(s1));
            match reg(dst) {
                Some(d) => instr.with_dst(d),
                None => instr,
            }
        })
}

proptest! {
    #[test]
    fn roundtrip_preserves_every_instruction_and_the_summary(
        instrs in prop::collection::vec(arb_instr(), 0..600),
        seed in any::<u64>(),
    ) {
        let trace: VecTrace = instrs.into_iter().collect();
        let meta = TraceMeta {
            benchmark: "prop".into(),
            scale: "quick".into(),
            seed,
            generator_version: 7,
        };
        let bytes = encode_to_vec(meta.clone(), &trace).unwrap();
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        let header = reader.header().clone();
        prop_assert_eq!(header.instructions, trace.len() as u64);
        prop_assert_eq!(&header.meta, &meta);
        let decoded = reader.read_to_end().unwrap();
        prop_assert_eq!(decoded.as_slice(), trace.as_slice());
        prop_assert_eq!(StatsSummary::of(&decoded.stats()), header.summary);
    }

    #[test]
    fn truncation_at_any_point_never_yields_a_silently_short_trace(
        instrs in prop::collection::vec(arb_instr(), 1..200),
        cut_frac in 0u32..1000,
    ) {
        // Cutting the image anywhere — mid-header, mid-chunk, between
        // chunks — must either fail to open or fail during iteration;
        // it must never decode to a shorter trace without an error.
        let trace: VecTrace = instrs.into_iter().collect();
        let meta = TraceMeta {
            benchmark: "prop".into(),
            scale: "quick".into(),
            seed: 1,
            generator_version: 7,
        };
        let bytes = encode_to_vec(meta, &trace).unwrap();
        let cut = (bytes.len() - 1) * cut_frac as usize / 1000;
        match TraceReader::new(&bytes[..cut]) {
            Err(_) => {}
            Ok(reader) => prop_assert!(reader.read_to_end().is_err()),
        }
    }

    #[test]
    fn multi_chunk_traces_roundtrip_across_chunk_boundaries(
        extra in 0usize..16,
        seed in any::<u64>(),
    ) {
        // Delta state (pc, mem address) continues across chunk framing;
        // sizes straddling the CHUNK_RECORDS boundary exercise that.
        let n = CHUNK_RECORDS as usize - 8 + extra;
        let mut word = seed % 1000;
        let trace: VecTrace = (0..n)
            .map(|i| {
                word = word.wrapping_add(1 + (i as u64 % 7));
                if i % 5 == 0 {
                    DynInstr::load(Addr::from_word_index(word), seed ^ (i as u64) << 12)
                } else {
                    DynInstr::op(Addr::from_word_index(word), InstrClass::Integer)
                }
            })
            .collect();
        let meta = TraceMeta {
            benchmark: "prop".into(),
            scale: "quick".into(),
            seed,
            generator_version: 7,
        };
        let bytes = encode_to_vec(meta, &trace).unwrap();
        let decoded = TraceReader::new(bytes.as_slice()).unwrap().read_to_end().unwrap();
        prop_assert_eq!(decoded, trace);
    }
}
