//! Round-trip identity over the real workload generators: for every
//! benchmark, encoding the generated trace and decoding it back yields
//! the identical instruction sequence and statistics.

use sim_trace::{encode_to_vec, StatsSummary, TraceMeta, TraceReader};
use sim_workloads::{Benchmark, GENERATOR_VERSION};

#[test]
fn every_benchmark_roundtrips_identically() {
    const BUDGET: usize = 20_000;
    for bench in Benchmark::ALL {
        let workload = bench.workload();
        let trace = workload.generate(BUDGET);
        let stats = trace.stats();
        let meta = TraceMeta {
            benchmark: bench.name().to_string(),
            scale: "test".to_string(),
            seed: workload.seed(),
            generator_version: GENERATOR_VERSION,
        };
        let bytes = encode_to_vec(meta, &trace).expect("encode");
        let reader = TraceReader::new(bytes.as_slice()).expect("header");
        assert_eq!(reader.header().instructions, BUDGET as u64, "{bench}");
        assert_eq!(reader.header().summary, StatsSummary::of(&stats), "{bench}");
        let decoded = reader.read_to_end().expect("decode");
        assert_eq!(decoded, trace, "{bench}: decoded trace differs");
        assert_eq!(decoded.stats(), stats, "{bench}: stats differ");
        // The format stays compact on real workloads: well under the
        // ~50 bytes a naive struct dump would take per instruction.
        let density = bytes.len() as f64 / BUDGET as f64;
        assert!(density < 16.0, "{bench}: {density:.2} bytes/instr");
    }
}
