//! The `.strc` v1 byte layout: magic, header, chunk framing, and the
//! delta-encoded record codec.
//!
//! Everything is little-endian. The file is:
//!
//! ```text
//! magic     8 bytes   "STRC0001"
//! header    variable  see [`TraceHeader`]; FNV-1a-64 checksum at the end
//! chunks    0 or more:
//!   records  u32      record count in this chunk (1 ..= CHUNK_RECORDS)
//!   length   u32      payload byte length
//!   payload  length bytes of packed records
//!   checksum u64      FNV-1a-64 over the payload
//! ```
//!
//! A record is a tag byte (class kind in bits 0–2, operand presence in
//! bits 3–5, taken in bit 6), an optional branch-class nibble byte, and
//! then varint deltas: the PC as a zigzag delta of its *word index* from
//! the previous record's PC, memory addresses as a delta from the
//! previous memory address, and branch targets as a delta from the
//! branch's own PC. Register operands are one byte each. Delta state
//! runs across chunk boundaries — chunks frame integrity, not random
//! access.
//!
//! The chunk framing is what makes corruption loud: a flipped bit fails
//! the payload checksum, and a truncated file either ends mid-chunk or
//! ends cleanly with fewer records than the header declares — both are
//! distinct, typed [`TraceError`]s.

use crate::varint;
use sim_isa::{Addr, BranchClass, BranchExec, DynInstr, InstrClass, Reg, TraceStats};
use std::io;

/// File magic identifying the `.strc` container, format version 1.
pub const MAGIC: &[u8; 8] = b"STRC0001";

/// The container format version this crate writes.
pub const FORMAT_VERSION: u16 = 1;

/// Maximum records per chunk; the writer flushes at this count.
pub const CHUNK_RECORDS: u32 = 4096;

/// Upper bound accepted for a chunk payload length. The packed encoding
/// never exceeds ~30 bytes/record, so this is generous; it exists so a
/// corrupt length field cannot ask the reader for a huge allocation.
pub const MAX_CHUNK_PAYLOAD: u32 = 1 << 22;

const TAG_KIND_MASK: u8 = 0x07;
const TAG_SRC0: u8 = 0x08;
const TAG_SRC1: u8 = 0x10;
const TAG_DST: u8 = 0x20;
const TAG_TAKEN: u8 = 0x40;
const TAG_RESERVED: u8 = 0x80;
const KIND_BRANCH: u8 = 7;

/// Non-branch classes in tag-kind order (kinds `0..=6`).
pub const NON_BRANCH_CLASSES: [InstrClass; 7] = [
    InstrClass::Integer,
    InstrClass::FpAdd,
    InstrClass::Mul,
    InstrClass::Div,
    InstrClass::Load,
    InstrClass::Store,
    InstrClass::BitField,
];

/// FNV-1a 64-bit hash — the chunk and header checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything that can go wrong reading a `.strc` stream.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The leading magic bytes did not match [`MAGIC`].
    BadMagic([u8; 8]),
    /// The header declares a format version this crate cannot read.
    UnsupportedVersion(u16),
    /// The header is malformed or fails its checksum.
    CorruptHeader(String),
    /// A chunk frame is malformed or cut short (truncation mid-chunk).
    CorruptChunk {
        /// Zero-based index of the offending chunk.
        chunk: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// A chunk payload failed its FNV-1a checksum.
    Checksum {
        /// Zero-based index of the offending chunk.
        chunk: u64,
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum computed over the payload actually read.
        actual: u64,
    },
    /// A record inside a checksum-valid chunk is malformed.
    BadRecord {
        /// Zero-based index of the chunk holding the record.
        chunk: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// The stream ended cleanly but with fewer records than the header
    /// declares (truncation at a chunk boundary).
    Truncated {
        /// Instruction count the header promises.
        expected: u64,
        /// Instructions actually decoded.
        actual: u64,
    },
    /// The decoded trace's statistics disagree with the header summary.
    SummaryMismatch(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "not a .strc trace (magic {m:02x?})"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported .strc format version {v}")
            }
            TraceError::CorruptHeader(r) => write!(f, "corrupt header: {r}"),
            TraceError::CorruptChunk { chunk, reason } => {
                write!(f, "corrupt chunk {chunk}: {reason}")
            }
            TraceError::Checksum {
                chunk,
                expected,
                actual,
            } => write!(
                f,
                "chunk {chunk} checksum mismatch (file {expected:#018x}, computed {actual:#018x})"
            ),
            TraceError::BadRecord { chunk, reason } => {
                write!(f, "bad record in chunk {chunk}: {reason}")
            }
            TraceError::Truncated { expected, actual } => write!(
                f,
                "truncated trace: header declares {expected} instructions, decoded {actual}"
            ),
            TraceError::SummaryMismatch(r) => write!(f, "header summary mismatch: {r}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Provenance carried in a trace header: where the instructions came
/// from, not what they are (that is [`StatsSummary`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Benchmark name the trace was generated from.
    pub benchmark: String,
    /// Scale label the generating run used (`quick`, `standard`, …).
    pub scale: String,
    /// Generator seed.
    pub seed: u64,
    /// Version of the workload generators that produced the trace.
    pub generator_version: u16,
}

/// The whole-trace counters a header carries so readers can sanity-check
/// a decode without trusting the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct StatsSummary {
    /// Per-class dynamic counts, indexed by [`InstrClass::index`].
    pub class_counts: [u64; 8],
    /// Per-branch-class dynamic counts, indexed by
    /// [`BranchClass::index`].
    pub branch_counts: [u64; 6],
    /// Dynamic count of taken conditional branches.
    pub taken_conditional: u64,
    /// Number of static indirect-jump sites observed.
    pub static_indirect_jumps: u64,
}

impl StatsSummary {
    /// Extracts the summary counters from full trace statistics.
    pub fn of(stats: &TraceStats) -> Self {
        StatsSummary {
            class_counts: stats.class_counts(),
            branch_counts: stats.branch_class_counts(),
            taken_conditional: stats.taken_conditional(),
            static_indirect_jumps: stats.static_indirect_jumps() as u64,
        }
    }

    /// Checks the summary against freshly computed statistics, returning
    /// the first discrepancy as text.
    pub fn check(&self, stats: &TraceStats) -> Result<(), String> {
        let actual = StatsSummary::of(stats);
        if self == &actual {
            return Ok(());
        }
        if self.class_counts != actual.class_counts {
            return Err(format!(
                "class counts: header {:?}, decoded {:?}",
                self.class_counts, actual.class_counts
            ));
        }
        if self.branch_counts != actual.branch_counts {
            return Err(format!(
                "branch counts: header {:?}, decoded {:?}",
                self.branch_counts, actual.branch_counts
            ));
        }
        if self.taken_conditional != actual.taken_conditional {
            return Err(format!(
                "taken conditionals: header {}, decoded {}",
                self.taken_conditional, actual.taken_conditional
            ));
        }
        Err(format!(
            "static indirect jumps: header {}, decoded {}",
            self.static_indirect_jumps, actual.static_indirect_jumps
        ))
    }
}

/// Decoded `.strc` header: format and generator versions, provenance,
/// declared instruction count, and the [`StatsSummary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Container format version (currently always [`FORMAT_VERSION`]).
    pub format_version: u16,
    /// Provenance of the trace.
    pub meta: TraceMeta,
    /// Dynamic instruction count the chunks must add up to.
    pub instructions: u64,
    /// Whole-trace counters for integrity checking.
    pub summary: StatsSummary,
}

fn put_str(out: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    if bytes.len() > u8::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("header string {s:?} exceeds 255 bytes"),
        ));
    }
    out.push(bytes.len() as u8);
    out.extend_from_slice(bytes);
    Ok(())
}

impl TraceHeader {
    /// Builds the header for a trace with the given provenance and
    /// statistics.
    pub fn new(meta: TraceMeta, stats: &TraceStats) -> Self {
        TraceHeader {
            format_version: FORMAT_VERSION,
            instructions: stats.instructions(),
            summary: StatsSummary::of(stats),
            meta,
        }
    }

    /// Serializes the header (excluding the magic), checksum included.
    ///
    /// # Errors
    ///
    /// Fails if a meta string exceeds the 255-byte length prefix.
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut out = Vec::with_capacity(192);
        out.extend_from_slice(&self.format_version.to_le_bytes());
        out.extend_from_slice(&self.meta.generator_version.to_le_bytes());
        put_str(&mut out, &self.meta.benchmark)?;
        put_str(&mut out, &self.meta.scale)?;
        out.extend_from_slice(&self.meta.seed.to_le_bytes());
        out.extend_from_slice(&self.instructions.to_le_bytes());
        for c in self.summary.class_counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for c in self.summary.branch_counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.summary.taken_conditional.to_le_bytes());
        out.extend_from_slice(&self.summary.static_indirect_jumps.to_le_bytes());
        let checksum = fnv64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        Ok(out)
    }

    /// Parses a header from the bytes following the magic, verifying the
    /// trailing checksum. `buf` must hold exactly the encoded header.
    pub fn decode(buf: &[u8]) -> Result<Self, TraceError> {
        let corrupt = |r: &str| TraceError::CorruptHeader(r.to_string());
        if buf.len() < 8 {
            return Err(corrupt("shorter than its checksum"));
        }
        let (body, sum) = buf.split_at(buf.len() - 8);
        let expected = u64::from_le_bytes(sum.try_into().expect("split at len-8"));
        let actual = fnv64(body);
        if expected != actual {
            return Err(TraceError::CorruptHeader(format!(
                "checksum mismatch (file {expected:#018x}, computed {actual:#018x})"
            )));
        }
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], TraceError> {
            let end = pos.checked_add(n).filter(|&e| e <= body.len());
            let end = end.ok_or_else(|| corrupt("ends mid-field"))?;
            let slice = &body[pos..end];
            pos = end;
            Ok(slice)
        };
        let u16le = |b: &[u8]| u16::from_le_bytes(b.try_into().expect("fixed-width header field"));
        let u64le = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("fixed-width header field"));
        let format_version = u16le(take(2)?);
        if format_version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(format_version));
        }
        let generator_version = u16le(take(2)?);
        let mut get_str = |what: &str| -> Result<String, TraceError> {
            let len = take(1)?[0] as usize;
            let bytes = take(len)?;
            String::from_utf8(bytes.to_vec())
                .map_err(|_| TraceError::CorruptHeader(format!("{what} is not UTF-8")))
        };
        let benchmark = get_str("benchmark name")?;
        let scale = get_str("scale label")?;
        let seed = u64le(take(8)?);
        let instructions = u64le(take(8)?);
        let mut summary = StatsSummary::default();
        for c in summary.class_counts.iter_mut() {
            *c = u64le(take(8)?);
        }
        for c in summary.branch_counts.iter_mut() {
            *c = u64le(take(8)?);
        }
        summary.taken_conditional = u64le(take(8)?);
        summary.static_indirect_jumps = u64le(take(8)?);
        if pos != body.len() {
            return Err(corrupt("trailing bytes"));
        }
        if summary.class_counts.iter().sum::<u64>() != instructions {
            return Err(corrupt("class counts do not sum to the instruction count"));
        }
        Ok(TraceHeader {
            format_version,
            meta: TraceMeta {
                benchmark,
                scale,
                seed,
                generator_version,
            },
            instructions,
            summary,
        })
    }
}

/// Delta state threaded through encode and decode. Both sides start from
/// the same zero state and update it identically per record, so the
/// decoder reconstructs absolute values without any stored bases.
#[derive(Clone, Copy, Debug, Default)]
pub struct CodecState {
    prev_pc_word: u64,
    prev_mem: u64,
}

impl CodecState {
    /// Appends one packed record to `out`.
    pub fn encode(&mut self, out: &mut Vec<u8>, i: &DynInstr) {
        let srcs = i.srcs();
        let branch = i.branch_exec();
        let kind = match branch {
            Some(_) => KIND_BRANCH,
            None => NON_BRANCH_CLASSES
                .iter()
                .position(|&c| c == i.class())
                .expect("non-branch instruction has a non-branch class") as u8,
        };
        let tag = kind
            | if srcs[0].is_some() { TAG_SRC0 } else { 0 }
            | if srcs[1].is_some() { TAG_SRC1 } else { 0 }
            | if i.dst().is_some() { TAG_DST } else { 0 }
            | if branch.is_some_and(|b| b.taken) {
                TAG_TAKEN
            } else {
                0
            };
        out.push(tag);
        if let Some(b) = branch {
            out.push(b.class.index() as u8);
        }
        let word = i.pc().word_index();
        varint::put_i64(out, word.wrapping_sub(self.prev_pc_word) as i64);
        self.prev_pc_word = word;
        for src in srcs.into_iter().flatten() {
            out.push(src.index() as u8);
        }
        if let Some(dst) = i.dst() {
            out.push(dst.index() as u8);
        }
        if let Some(mem) = i.mem() {
            varint::put_i64(out, mem.addr.wrapping_sub(self.prev_mem) as i64);
            self.prev_mem = mem.addr;
        }
        if let Some(b) = branch {
            varint::put_i64(out, b.target.word_index().wrapping_sub(word) as i64);
        }
    }

    /// Decodes one record from `buf` at `*pos`, advancing `*pos`.
    ///
    /// Every field is validated before any panicking `sim-isa`
    /// constructor runs, so corrupt (but checksum-valid) bytes surface
    /// as an error string, never a panic.
    pub fn decode(&mut self, buf: &[u8], pos: &mut usize) -> Result<DynInstr, String> {
        let byte = |pos: &mut usize| -> Result<u8, String> {
            let b = *buf.get(*pos).ok_or("record cut short")?;
            *pos += 1;
            Ok(b)
        };
        let delta = |pos: &mut usize| -> Result<i64, String> {
            varint::get_i64(buf, pos).ok_or_else(|| "invalid varint".to_string())
        };
        let tag = byte(pos)?;
        if tag & TAG_RESERVED != 0 {
            return Err(format!("reserved tag bit set ({tag:#04x})"));
        }
        let kind = tag & TAG_KIND_MASK;
        let taken = tag & TAG_TAKEN != 0;
        let branch_class = if kind == KIND_BRANCH {
            let b = byte(pos)?;
            let class = *BranchClass::ALL
                .get((b & 0x0f) as usize)
                .filter(|_| b & 0xf0 == 0)
                .ok_or_else(|| format!("invalid branch class byte {b:#04x}"))?;
            if !taken && !class.is_conditional() {
                return Err(format!("not-taken {class:?} branch"));
            }
            Some(class)
        } else {
            if taken {
                return Err("taken bit set on a non-branch record".to_string());
            }
            None
        };
        let word = self.prev_pc_word.wrapping_add(delta(pos)? as u64);
        self.prev_pc_word = word;
        if word > u64::MAX / sim_isa::addr::INSTR_BYTES {
            return Err(format!("pc word index {word:#x} out of address range"));
        }
        let pc = Addr::from_word_index(word);
        let reg = |what: &str, pos: &mut usize| -> Result<Reg, String> {
            let b = byte(pos)?;
            if u16::from(b) >= sim_isa::reg::REG_COUNT {
                return Err(format!("{what} register {b} out of range"));
            }
            Ok(Reg::new(u16::from(b)))
        };
        let src0 = if tag & TAG_SRC0 != 0 {
            Some(reg("source", pos)?)
        } else {
            None
        };
        let src1 = if tag & TAG_SRC1 != 0 {
            Some(reg("source", pos)?)
        } else {
            None
        };
        let dst = if tag & TAG_DST != 0 {
            Some(reg("destination", pos)?)
        } else {
            None
        };
        let mut instr = if let Some(class) = branch_class {
            let target_delta = delta(pos)?;
            let target_word = word.wrapping_add(target_delta as u64);
            if target_word > u64::MAX / sim_isa::addr::INSTR_BYTES {
                return Err(format!(
                    "target word index {target_word:#x} out of address range"
                ));
            }
            let target = Addr::from_word_index(target_word);
            DynInstr::branch(pc, BranchExec::new(class, taken, target))
        } else {
            let class = NON_BRANCH_CLASSES[kind as usize];
            match class {
                InstrClass::Load | InstrClass::Store => {
                    let addr = self.prev_mem.wrapping_add(delta(pos)? as u64);
                    self.prev_mem = addr;
                    if class == InstrClass::Load {
                        DynInstr::load(pc, addr)
                    } else {
                        DynInstr::store(pc, addr)
                    }
                }
                c => DynInstr::op(pc, c),
            }
        };
        instr = instr.with_srcs(src0, src1);
        if let Some(dst) = dst {
            instr = instr.with_dst(dst);
        }
        Ok(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::VecTrace;

    fn sample() -> Vec<DynInstr> {
        vec![
            DynInstr::op(Addr::new(0x100), InstrClass::Integer)
                .with_srcs(Some(Reg::new(1)), Some(Reg::new(2)))
                .with_dst(Reg::new(3)),
            DynInstr::load(Addr::new(0x104), 0xDEAD_BEEF).with_dst(Reg::new(4)),
            DynInstr::store(Addr::new(0x108), 0x1234_5678).with_srcs(Some(Reg::new(4)), None),
            DynInstr::branch(
                Addr::new(0x10c),
                BranchExec::not_taken(BranchClass::CondDirect, Addr::new(0x200)),
            ),
            DynInstr::branch(
                Addr::new(0x110),
                BranchExec::taken(BranchClass::IndirectJump, Addr::new(0x300)),
            ),
            DynInstr::branch(
                Addr::new(0x300),
                BranchExec::taken(BranchClass::Return, Addr::new(0x114)),
            ),
        ]
    }

    #[test]
    fn records_roundtrip_through_the_codec() {
        let mut enc = CodecState::default();
        let mut buf = Vec::new();
        for i in sample() {
            enc.encode(&mut buf, &i);
        }
        let mut dec = CodecState::default();
        let mut pos = 0;
        for want in sample() {
            let got = dec.decode(&buf, &mut pos).unwrap();
            assert_eq!(got, want);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn sequential_fetch_costs_two_bytes_per_op() {
        // tag + one-byte pc delta: the common case the format optimizes.
        let mut enc = CodecState::default();
        let mut buf = Vec::new();
        enc.encode(
            &mut buf,
            &DynInstr::op(Addr::new(0x100), InstrClass::Integer),
        );
        let before = buf.len();
        enc.encode(
            &mut buf,
            &DynInstr::op(Addr::new(0x104), InstrClass::Integer),
        );
        assert_eq!(buf.len() - before, 2);
    }

    #[test]
    fn decode_rejects_malformed_records() {
        let mut dec = CodecState::default();
        // Reserved bit.
        assert!(dec.decode(&[0x80, 0x00], &mut 0).is_err());
        // Bad branch class nibble.
        assert!(dec.decode(&[0x47, 0x0e, 0x00, 0x00], &mut 0).is_err());
        // Not-taken return (BranchExec::new would panic on this).
        assert!(dec
            .decode(
                &[0x07, BranchClass::Return.index() as u8, 0x00, 0x00],
                &mut 0
            )
            .is_err());
        // Taken bit on a non-branch.
        assert!(dec.decode(&[0x40, 0x00], &mut 0).is_err());
        // Out-of-range register.
        assert!(dec.decode(&[0x08, 0x00, 0x3f], &mut 0).is_err());
        // Cut short.
        assert!(dec.decode(&[0x08, 0x00], &mut 0).is_err());
    }

    #[test]
    fn header_roundtrips_and_rejects_corruption() {
        let trace: VecTrace = sample().into_iter().collect();
        let meta = TraceMeta {
            benchmark: "perl".into(),
            scale: "quick".into(),
            seed: 0x5eed,
            generator_version: 1,
        };
        let header = TraceHeader::new(meta, &trace.stats());
        let bytes = header.encode().unwrap();
        assert_eq!(TraceHeader::decode(&bytes).unwrap(), header);
        let mut flipped = bytes.clone();
        flipped[4] ^= 1;
        assert!(matches!(
            TraceHeader::decode(&flipped),
            Err(TraceError::CorruptHeader(_))
        ));
        assert!(matches!(
            TraceHeader::decode(&bytes[..bytes.len() - 2]),
            Err(TraceError::CorruptHeader(_))
        ));
    }

    #[test]
    fn future_format_versions_are_rejected() {
        let trace: VecTrace = sample().into_iter().collect();
        let meta = TraceMeta {
            benchmark: "perl".into(),
            scale: "quick".into(),
            seed: 1,
            generator_version: 1,
        };
        let mut header = TraceHeader::new(meta, &trace.stats());
        header.format_version = 2;
        let bytes = header.encode().unwrap();
        assert!(matches!(
            TraceHeader::decode(&bytes),
            Err(TraceError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn summary_check_pinpoints_the_field() {
        let trace: VecTrace = sample().into_iter().collect();
        let stats = trace.stats();
        let mut summary = StatsSummary::of(&stats);
        assert!(summary.check(&stats).is_ok());
        summary.taken_conditional += 1;
        let err = summary.check(&stats).unwrap_err();
        assert!(err.contains("taken conditionals"), "{err}");
    }
}
