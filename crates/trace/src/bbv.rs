//! Basic-block-vector (BBV) fingerprints: the optional, versioned,
//! checksummed side-section appended after the last chunk of a `.strc`
//! stream.
//!
//! SimPoint-style phase sampling needs to know, for every 4096-record
//! chunk, *which code* executed — not just how many instructions. A
//! chunk's fingerprint is its basic-block vector: for each basic block
//! entered during the chunk, the number of instructions the chunk spent
//! inside it. Blocks are straight-line runs delimited by control
//! instructions; a block is keyed by the PC word index of its leader
//! (the first instruction after a control transfer). A block that
//! straddles a chunk boundary contributes to both chunks under the same
//! leader.
//!
//! On disk the section rides after the final chunk frame:
//!
//! ```text
//! "STBV0001"                       8-byte section magic
//! payload_len: u32 le
//! payload:
//!   version:     u16 le            (currently 1)
//!   chunk_count: u32 le
//!   per chunk:
//!     n_blocks: varint
//!     n_blocks × (block_id: varint, count: varint), ascending block_id
//! checksum: u64 le                 FNV-1a-64 of the payload
//! ```
//!
//! The section is *optional*: a stream that ends cleanly after its last
//! chunk (every pre-section trace) still decodes, and readers that
//! predate the section never reach it — they stop at the header's
//! declared instruction count. The reader validates the section against
//! the header: the chunk count and every per-chunk instruction total
//! must match the trace's actual chunking.

use crate::format::{fnv64, CHUNK_RECORDS};
use crate::varint;
use sim_isa::{DynInstr, VecTrace};
use std::collections::BTreeMap;
use std::io::{self, Read};

/// Magic opening the BBV side-section. Deliberately 8 bytes — the same
/// width as a chunk frame, so a streaming reader positioned at a chunk
/// boundary can distinguish "next chunk", "side-section", and "end of
/// stream" with one read.
pub const BBV_MAGIC: &[u8; 8] = b"STBV0001";

/// Current side-section version.
pub const BBV_VERSION: u16 = 1;

/// Upper bound on the encoded section payload (64 MiB) — a corrupt
/// length field must not trigger a giant allocation.
pub const MAX_BBV_PAYLOAD: u32 = 1 << 26;

/// One chunk's basic-block vector: `(leader word index, instructions)`
/// pairs in ascending leader order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChunkFingerprint {
    /// `(block leader PC word index, instructions attributed)` pairs,
    /// sorted ascending by leader.
    pub blocks: Vec<(u64, u64)>,
}

impl ChunkFingerprint {
    /// Total instructions the fingerprint accounts for.
    pub fn instructions(&self) -> u64 {
        self.blocks.iter().map(|&(_, n)| n).sum()
    }

    /// Number of distinct basic blocks entered during the chunk.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// The decoded side-section: one fingerprint per chunk, in chunk order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BbvSection {
    /// Section format version (see [`BBV_VERSION`]).
    pub version: u16,
    /// Per-chunk fingerprints, index = chunk index.
    pub chunks: Vec<ChunkFingerprint>,
}

impl BbvSection {
    /// Encodes the full section: magic, length-prefixed payload,
    /// trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.chunks.len() * 64 + 8);
        payload.extend_from_slice(&self.version.to_le_bytes());
        payload.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for chunk in &self.chunks {
            varint::put_u64(&mut payload, chunk.blocks.len() as u64);
            for &(block, count) in &chunk.blocks {
                varint::put_u64(&mut payload, block);
                varint::put_u64(&mut payload, count);
            }
        }
        let mut out = Vec::with_capacity(8 + 4 + payload.len() + 8);
        out.extend_from_slice(BBV_MAGIC);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv64(&payload).to_le_bytes());
        out
    }

    /// Decodes a section payload (the bytes between the length prefix
    /// and the checksum).
    ///
    /// # Errors
    ///
    /// A human-readable reason: unsupported version, truncated varint,
    /// unsorted or duplicate block ids, or trailing bytes.
    pub fn decode_payload(payload: &[u8]) -> Result<BbvSection, String> {
        if payload.len() < 6 {
            return Err(format!("payload too short ({} bytes)", payload.len()));
        }
        let version = u16::from_le_bytes(payload[0..2].try_into().expect("2-byte field"));
        if version != BBV_VERSION {
            return Err(format!("unsupported bbv section version {version}"));
        }
        let chunk_count =
            u32::from_le_bytes(payload[2..6].try_into().expect("4-byte field")) as usize;
        let mut pos = 6usize;
        let mut chunks = Vec::with_capacity(chunk_count.min(1 << 20));
        for c in 0..chunk_count {
            let n = varint::get_u64(payload, &mut pos)
                .ok_or_else(|| format!("chunk {c}: truncated block count"))?
                as usize;
            let mut blocks = Vec::with_capacity(n.min(CHUNK_RECORDS as usize));
            let mut prev: Option<u64> = None;
            for b in 0..n {
                let block = varint::get_u64(payload, &mut pos)
                    .ok_or_else(|| format!("chunk {c}: truncated block id {b}"))?;
                let count = varint::get_u64(payload, &mut pos)
                    .ok_or_else(|| format!("chunk {c}: truncated count for block {block}"))?;
                if prev.is_some_and(|p| p >= block) {
                    return Err(format!("chunk {c}: block ids not strictly ascending"));
                }
                prev = Some(block);
                blocks.push((block, count));
            }
            chunks.push(ChunkFingerprint { blocks });
        }
        if pos != payload.len() {
            return Err(format!("{} trailing payload bytes", payload.len() - pos));
        }
        Ok(BbvSection { version, chunks })
    }

    /// Reads the section body (length prefix, payload, checksum) from a
    /// stream positioned just past the magic.
    ///
    /// # Errors
    ///
    /// `Err(Ok(_))` never occurs; I/O failures surface as the outer
    /// `io::Error`, structural corruption as the inner `Err(String)`.
    pub fn read_body<R: Read>(src: &mut R) -> io::Result<Result<BbvSection, String>> {
        let mut len = [0u8; 4];
        if let Err(e) = src.read_exact(&mut len) {
            return short_read(e, "length");
        }
        let len = u32::from_le_bytes(len);
        if len > MAX_BBV_PAYLOAD {
            return Ok(Err(format!("payload length {len} out of range")));
        }
        let mut payload = vec![0u8; len as usize];
        if let Err(e) = src.read_exact(&mut payload) {
            return short_read(e, "payload");
        }
        let mut sum = [0u8; 8];
        if let Err(e) = src.read_exact(&mut sum) {
            return short_read(e, "checksum");
        }
        let expected = u64::from_le_bytes(sum);
        let actual = fnv64(&payload);
        if expected != actual {
            return Ok(Err(format!(
                "checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            )));
        }
        Ok(BbvSection::decode_payload(&payload))
    }

    /// Validates the section against a trace's declared instruction
    /// count: chunk count and per-chunk instruction totals must match
    /// the trace's actual 4096-record chunking.
    ///
    /// # Errors
    ///
    /// A human-readable mismatch description.
    pub fn validate(&self, instructions: u64) -> Result<(), String> {
        let expected_chunks = instructions.div_ceil(u64::from(CHUNK_RECORDS));
        if self.chunks.len() as u64 != expected_chunks {
            return Err(format!(
                "section has {} chunk fingerprints but the trace has {expected_chunks} chunks",
                self.chunks.len()
            ));
        }
        for (c, chunk) in self.chunks.iter().enumerate() {
            let start = c as u64 * u64::from(CHUNK_RECORDS);
            let expected = (instructions - start).min(u64::from(CHUNK_RECORDS));
            let actual = chunk.instructions();
            if actual != expected {
                return Err(format!(
                    "chunk {c} fingerprint accounts for {actual} instructions, expected {expected}"
                ));
            }
        }
        Ok(())
    }
}

fn short_read(e: io::Error, what: &str) -> io::Result<Result<BbvSection, String>> {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        Ok(Err(format!("file ends inside the bbv section {what}")))
    } else {
        Err(e)
    }
}

/// Streaming fingerprint accumulator: observe each record in order,
/// mark chunk boundaries, and collect the finished [`BbvSection`].
///
/// The writer drives one of these alongside the record codec so
/// fingerprints are computed at record time; [`fingerprint_trace`]
/// drives one over an in-memory trace and produces identical output.
#[derive(Default)]
pub struct FingerprintBuilder {
    chunks: Vec<ChunkFingerprint>,
    current: BTreeMap<u64, u64>,
    leader: Option<u64>,
}

impl FingerprintBuilder {
    /// A builder with no observed records.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one record. The instruction is attributed to the
    /// current basic block (opened at this PC if none is open); a
    /// control instruction closes the block.
    pub fn observe(&mut self, i: &DynInstr) {
        let leader = *self.leader.get_or_insert_with(|| i.pc().word_index());
        *self.current.entry(leader).or_insert(0) += 1;
        if i.branch_exec().is_some() {
            self.leader = None;
        }
    }

    /// Marks a chunk boundary: the counts accumulated since the last
    /// boundary become that chunk's fingerprint. An open basic block
    /// stays open — its remaining instructions land in the next chunk
    /// under the same leader.
    pub fn end_chunk(&mut self) {
        let blocks: Vec<(u64, u64)> = std::mem::take(&mut self.current).into_iter().collect();
        self.chunks.push(ChunkFingerprint { blocks });
    }

    /// Finishes the builder. Any records observed since the last chunk
    /// boundary must already have been flushed by [`end_chunk`] — the
    /// writer calls it from its own final chunk flush.
    ///
    /// [`end_chunk`]: FingerprintBuilder::end_chunk
    pub fn finish(self) -> BbvSection {
        debug_assert!(
            self.current.is_empty(),
            "records observed after the last chunk boundary"
        );
        BbvSection {
            version: BBV_VERSION,
            chunks: self.chunks,
        }
    }
}

/// Fingerprints an in-memory trace, chunked exactly as the writer
/// chunks it (4096 records per chunk, short final chunk).
pub fn fingerprint_trace(trace: &VecTrace) -> BbvSection {
    let mut b = FingerprintBuilder::new();
    for (n, i) in trace.iter().enumerate() {
        b.observe(i);
        if (n + 1).is_multiple_of(CHUNK_RECORDS as usize) {
            b.end_chunk();
        }
    }
    if !trace.len().is_multiple_of(CHUNK_RECORDS as usize) {
        b.end_chunk();
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Addr, BranchClass, BranchExec, InstrClass};

    fn toy_trace(n: usize) -> VecTrace {
        // A loop shape: blocks of 4 instructions ending in a taken
        // conditional back to the top.
        (0..n)
            .map(|i| {
                let pc = Addr::from_word_index((i % 4) as u64);
                if i % 4 == 3 {
                    DynInstr::branch(
                        pc,
                        BranchExec::taken(BranchClass::CondDirect, Addr::from_word_index(0)),
                    )
                } else {
                    DynInstr::op(pc, InstrClass::Integer)
                }
            })
            .collect()
    }

    #[test]
    fn fingerprints_attribute_every_instruction() {
        let trace = toy_trace(10_000);
        let section = fingerprint_trace(&trace);
        assert_eq!(section.chunks.len(), 3);
        assert!(section.validate(10_000).is_ok());
        // The loop has one leader (word 0) once running; the very first
        // chunk may also start there, so every chunk has exactly 1 block.
        for chunk in &section.chunks {
            assert_eq!(chunk.block_count(), 1);
            assert_eq!(chunk.blocks[0].0, 0);
        }
    }

    #[test]
    fn section_round_trips_through_encode() {
        let section = fingerprint_trace(&toy_trace(5_000));
        let bytes = section.encode();
        assert_eq!(&bytes[..8], BBV_MAGIC);
        let mut src = &bytes[8..];
        let decoded = BbvSection::read_body(&mut src).unwrap().unwrap();
        assert_eq!(decoded, section);
        assert!(src.is_empty());
    }

    #[test]
    fn corrupt_payload_and_checksum_are_rejected() {
        let section = fingerprint_trace(&toy_trace(5_000));
        let mut bytes = section.encode();
        // Flip one payload byte: checksum must catch it.
        let mid = 8 + 4 + 3;
        bytes[mid] ^= 0xff;
        let mut src = &bytes[8..];
        let err = BbvSection::read_body(&mut src).unwrap().unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        // Truncate inside the payload: a loud structural error, not EOF.
        let bytes = section.encode();
        let mut src = &bytes[8..bytes.len() - 12];
        let err = BbvSection::read_body(&mut src).unwrap().unwrap_err();
        assert!(err.contains("ends inside"), "{err}");
    }

    #[test]
    fn validate_catches_count_mismatches() {
        let section = fingerprint_trace(&toy_trace(5_000));
        assert!(section.validate(5_000).is_ok());
        let err = section.validate(5_001).unwrap_err();
        assert!(
            err.contains("5001") || err.contains("instructions"),
            "{err}"
        );
        let err = section.validate(50_000).unwrap_err();
        assert!(err.contains("chunks"), "{err}");
    }

    #[test]
    fn blocks_straddling_chunks_keep_their_leader() {
        // 4097 straight-line instructions, no branches: one giant block
        // whose leader is word 0; the second chunk's single entry must
        // still be keyed by leader 0, not by the chunk's first PC.
        let trace: VecTrace = (0..4097)
            .map(|i| DynInstr::op(Addr::from_word_index(i), InstrClass::Integer))
            .collect();
        let section = fingerprint_trace(&trace);
        assert_eq!(section.chunks.len(), 2);
        assert_eq!(section.chunks[0].blocks, vec![(0, 4096)]);
        assert_eq!(section.chunks[1].blocks, vec![(0, 1)]);
    }
}
