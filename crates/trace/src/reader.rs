//! Streaming `.strc` reader.

use crate::bbv::{BbvSection, BBV_MAGIC};
use crate::format::{
    fnv64, CodecState, TraceError, TraceHeader, CHUNK_RECORDS, MAGIC, MAX_CHUNK_PAYLOAD,
};
use sim_isa::{DynInstr, VecTrace};
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

/// Streaming decoder: validates the magic and header on open, then
/// yields instructions one at a time, verifying each chunk's checksum
/// before decoding any of its records.
///
/// Iteration yields `Result<DynInstr, TraceError>`; after the first
/// error the iterator fuses (further `next` calls return `None`). A
/// clean end-of-stream with fewer records than the header declares is
/// itself an error ([`TraceError::Truncated`]), so a file cut at a
/// chunk boundary cannot pass for complete.
pub struct TraceReader<R: Read> {
    src: R,
    header: TraceHeader,
    codec: CodecState,
    payload: Vec<u8>,
    pos: usize,
    chunk_remaining: u32,
    chunk_index: u64,
    decoded: u64,
    bbv: Option<BbvSection>,
    state: State,
}

#[derive(PartialEq, Eq)]
enum State {
    Reading,
    Done,
    Failed,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stream: reads and validates the magic and header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, wrong magic, an unsupported format version,
    /// or a header that is malformed or fails its checksum.
    pub fn new(mut src: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        src.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        // The header has no stored length; re-encoding after a field-wise
        // parse would couple reader to writer. Instead read the fixed
        // prefix, then the variable strings, then the fixed tail — and
        // let `TraceHeader::decode` do the real validation on the exact
        // byte range.
        let mut head = vec![0u8; 5];
        src.read_exact(&mut head)
            .map_err(|e| header_eof(e, "fixed prefix"))?;
        let bench_len = head[4] as usize;
        let mut rest = vec![0u8; bench_len + 1];
        src.read_exact(&mut rest)
            .map_err(|e| header_eof(e, "benchmark name"))?;
        let scale_len = *rest.last().expect("read at least one byte") as usize;
        head.extend_from_slice(&rest);
        // scale bytes + seed + instructions + 8 class + 6 branch counts
        // + taken-conditional + static-sites + checksum.
        let mut tail = vec![0u8; scale_len + 8 + 8 + 8 * 8 + 6 * 8 + 8 + 8 + 8];
        src.read_exact(&mut tail)
            .map_err(|e| header_eof(e, "counters"))?;
        head.extend_from_slice(&tail);
        let header = TraceHeader::decode(&head)?;
        Ok(TraceReader {
            src,
            header,
            codec: CodecState::default(),
            payload: Vec::new(),
            pos: 0,
            chunk_remaining: 0,
            chunk_index: 0,
            decoded: 0,
            bbv: None,
            state: State::Reading,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Instructions decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// The BBV side-section, if the stream carried one. Populated only
    /// once the stream has been consumed to its clean end (the section
    /// sits after the last chunk).
    pub fn bbv(&self) -> Option<&BbvSection> {
        self.bbv.as_ref()
    }

    /// Takes ownership of the decoded BBV side-section, if any.
    pub fn take_bbv(&mut self) -> Option<BbvSection> {
        self.bbv.take()
    }

    /// Loads the next chunk. `Ok(false)` means clean end of stream.
    fn next_chunk(&mut self) -> Result<bool, TraceError> {
        let chunk = self.chunk_index;
        let corrupt = |reason: String| TraceError::CorruptChunk { chunk, reason };
        let mut frame = [0u8; 8];
        match read_exact_or_eof(&mut self.src, &mut frame)? {
            ReadOutcome::Eof => {
                if self.decoded != self.header.instructions {
                    return Err(TraceError::Truncated {
                        expected: self.header.instructions,
                        actual: self.decoded,
                    });
                }
                return Ok(false);
            }
            ReadOutcome::Partial => {
                return Err(corrupt("file ends inside a chunk frame".to_string()))
            }
            ReadOutcome::Full => {}
        }
        // After the final record chunk the stream may carry the optional
        // BBV side-section; its magic is frame-width by design so the
        // "next chunk or end of stream?" read also recognizes it. A
        // pre-section trace hits clean EOF above instead.
        if &frame == BBV_MAGIC && self.decoded == self.header.instructions {
            let bbv = |reason: String| TraceError::CorruptChunk {
                chunk,
                reason: format!("bbv section: {reason}"),
            };
            let section = BbvSection::read_body(&mut self.src)
                .map_err(TraceError::Io)?
                .map_err(&bbv)?;
            section.validate(self.header.instructions).map_err(&bbv)?;
            let mut trailing = [0u8; 1];
            match read_exact_or_eof(&mut self.src, &mut trailing)? {
                ReadOutcome::Eof => {}
                _ => return Err(bbv("trailing bytes after the section".to_string())),
            }
            self.bbv = Some(section);
            return Ok(false);
        }
        let records = u32::from_le_bytes(frame[..4].try_into().expect("4-byte field"));
        let length = u32::from_le_bytes(frame[4..].try_into().expect("4-byte field"));
        if records == 0 || records > CHUNK_RECORDS {
            return Err(corrupt(format!("record count {records} out of range")));
        }
        if length > MAX_CHUNK_PAYLOAD {
            return Err(corrupt(format!("payload length {length} out of range")));
        }
        if self.decoded + u64::from(records) > self.header.instructions {
            return Err(corrupt(format!(
                "chunk overruns the header's {} instructions",
                self.header.instructions
            )));
        }
        self.payload.resize(length as usize, 0);
        self.src.read_exact(&mut self.payload).map_err(|e| {
            eof_as(e, || {
                corrupt("file ends inside a chunk payload".to_string())
            })
        })?;
        let mut sum = [0u8; 8];
        self.src.read_exact(&mut sum).map_err(|e| {
            eof_as(e, || {
                corrupt("file ends inside a chunk checksum".to_string())
            })
        })?;
        let expected = u64::from_le_bytes(sum);
        let actual = fnv64(&self.payload);
        if expected != actual {
            return Err(TraceError::Checksum {
                chunk,
                expected,
                actual,
            });
        }
        self.pos = 0;
        self.chunk_remaining = records;
        self.chunk_index += 1;
        Ok(true)
    }

    fn next_instr(&mut self) -> Result<Option<DynInstr>, TraceError> {
        if self.chunk_remaining == 0 && !self.next_chunk()? {
            return Ok(None);
        }
        let chunk = self.chunk_index - 1;
        let instr = self
            .codec
            .decode(&self.payload, &mut self.pos)
            .map_err(|reason| TraceError::BadRecord { chunk, reason })?;
        self.chunk_remaining -= 1;
        self.decoded += 1;
        if self.chunk_remaining == 0 && self.pos != self.payload.len() {
            return Err(TraceError::BadRecord {
                chunk,
                reason: format!("{} trailing payload bytes", self.payload.len() - self.pos),
            });
        }
        Ok(Some(instr))
    }

    /// Decodes the remainder of the stream into a [`VecTrace`].
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] the streaming iterator would yield.
    pub fn read_to_end(mut self) -> Result<VecTrace, TraceError> {
        let mut trace = VecTrace::new();
        trace.reserve((self.header.instructions - self.decoded) as usize);
        for record in &mut self {
            trace.push(record?);
        }
        Ok(trace)
    }

    /// [`read_to_end`], also returning the BBV side-section when the
    /// stream carries one (`None` for pre-section traces).
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] the streaming iterator would yield.
    ///
    /// [`read_to_end`]: TraceReader::read_to_end
    pub fn read_to_end_with_bbv(mut self) -> Result<(VecTrace, Option<BbvSection>), TraceError> {
        let mut trace = VecTrace::new();
        trace.reserve((self.header.instructions - self.decoded) as usize);
        for record in &mut self {
            trace.push(record?);
        }
        Ok((trace, self.bbv))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<DynInstr, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state != State::Reading {
            return None;
        }
        match self.next_instr() {
            Ok(Some(i)) => Some(Ok(i)),
            Ok(None) => {
                self.state = State::Done;
                None
            }
            Err(e) => {
                self.state = State::Failed;
                Some(Err(e))
            }
        }
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// `read_exact`, but distinguishing "no bytes at all" (clean EOF) from
/// "some but not all" (truncation).
fn read_exact_or_eof<R: Read>(src: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match src.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

fn eof_as(e: io::Error, mk: impl FnOnce() -> TraceError) -> TraceError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        mk()
    } else {
        TraceError::Io(e)
    }
}

fn header_eof(e: io::Error, what: &str) -> TraceError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        TraceError::CorruptHeader(format!("file ends inside the header ({what})"))
    } else {
        TraceError::Io(e)
    }
}

/// Opens, fully decodes, and closes a `.strc` file.
///
/// # Errors
///
/// Any [`TraceError`]; plain I/O failures (missing file, permissions)
/// surface as [`TraceError::Io`].
pub fn read_trace_file(path: &Path) -> Result<(TraceHeader, VecTrace), TraceError> {
    let reader = TraceReader::new(BufReader::new(File::open(path)?))?;
    let header = reader.header().clone();
    let trace = reader.read_to_end()?;
    Ok((header, trace))
}

/// [`read_trace_file`], also returning the BBV side-section when the
/// file carries one.
///
/// # Errors
///
/// Any [`TraceError`]; plain I/O failures surface as [`TraceError::Io`].
pub fn read_trace_file_with_bbv(
    path: &Path,
) -> Result<(TraceHeader, VecTrace, Option<BbvSection>), TraceError> {
    let reader = TraceReader::new(BufReader::new(File::open(path)?))?;
    let header = reader.header().clone();
    let (trace, bbv) = reader.read_to_end_with_bbv()?;
    Ok((header, trace, bbv))
}
