//! `sim-trace`: the compact on-disk trace format (`.strc`), streaming
//! reader/writer, and the content-addressed trace store.
//!
//! The reproduction's workloads are deterministic generators, so every
//! run used to pay full price regenerating identical traces. This crate
//! turns a trace into an artifact: [`TraceWriter`] packs `DynInstr`
//! records into delta-encoded, varint-packed, checksummed chunks behind
//! a self-describing header; [`TraceReader`] streams them back as an
//! `Iterator<Item = Result<DynInstr, TraceError>>`; and [`TraceStore`]
//! caches one file per `(benchmark, scale, seed, generator-version)`
//! key so the whole campaign records each trace once and replays it
//! everywhere else. The `trace-pack` binary inspects, validates, and
//! micro-benchmarks `.strc` files.
//!
//! Corruption is loud by construction: every chunk carries its length
//! and an FNV-1a-64 checksum, the header checksums itself, and a clean
//! end-of-file with fewer records than the header declares is a typed
//! [`TraceError::Truncated`] — which is how injected
//! `REPRO_FAULTS=truncate-store:…` faults surface as retryable errors
//! instead of silently degraded results.
//!
//! # Example
//!
//! ```
//! use sim_isa::{Addr, DynInstr, InstrClass, VecTrace};
//! use sim_trace::{encode_to_vec, TraceMeta, TraceReader};
//!
//! let trace: VecTrace = (0..100)
//!     .map(|i| DynInstr::op(Addr::from_word_index(i), InstrClass::Integer))
//!     .collect();
//! let meta = TraceMeta {
//!     benchmark: "example".into(),
//!     scale: "quick".into(),
//!     seed: 42,
//!     generator_version: 1,
//! };
//! let bytes = encode_to_vec(meta, &trace).unwrap();
//! let reader = TraceReader::new(bytes.as_slice()).unwrap();
//! assert_eq!(reader.header().instructions, 100);
//! let decoded = reader.read_to_end().unwrap();
//! assert_eq!(decoded, trace);
//! ```

#![warn(missing_docs)]

pub mod bbv;
pub mod format;
pub mod reader;
pub mod store;
pub mod varint;
pub mod writer;

pub use bbv::{fingerprint_trace, BbvSection, ChunkFingerprint, FingerprintBuilder, BBV_MAGIC};
pub use format::{
    StatsSummary, TraceError, TraceHeader, TraceMeta, CHUNK_RECORDS, FORMAT_VERSION, MAGIC,
};
pub use reader::{read_trace_file, read_trace_file_with_bbv, TraceReader};
pub use store::{StoreError, StoreMode, StoreOutcome, TraceKey, TraceStore};
pub use writer::{encode_to_vec, write_trace, TraceWriter, WriteSummary};
