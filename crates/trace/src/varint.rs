//! LEB128 variable-length integers with zigzag signed mapping.
//!
//! The `.strc` record codec stores almost everything as deltas from the
//! previous record, and deltas cluster tightly around zero: sequential
//! fetch makes most PC deltas `+1` word, and data accesses walk small
//! strides. Zigzag folds the sign into the low bit so small negative
//! deltas stay one byte, and LEB128 spends bytes proportional to
//! magnitude.

/// Appends `value` to `out` as an unsigned LEB128 varint (1–10 bytes).
#[inline]
pub fn put_u64(out: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        out.push((value as u8) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Appends `value` to `out` zigzag-mapped then LEB128-encoded.
#[inline]
pub fn put_i64(out: &mut Vec<u8>, value: i64) {
    put_u64(out, ((value << 1) ^ (value >> 63)) as u64);
}

/// Reads an unsigned LEB128 varint from `buf` starting at `*pos`,
/// advancing `*pos` past it.
///
/// Returns `None` when the buffer ends mid-varint or the encoding runs
/// past 10 bytes / overflows 64 bits (no valid encoder produces either).
#[inline]
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Reads a zigzag-mapped signed varint (inverse of [`put_i64`]).
#[inline]
pub fn get_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    let raw = get_u64(buf, pos)?;
    Some(((raw >> 1) as i64) ^ -((raw & 1) as i64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(v: u64) {
        let mut buf = Vec::new();
        put_u64(&mut buf, v);
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), Some(v), "{v}");
        assert_eq!(pos, buf.len());
    }

    fn roundtrip_i(v: i64) {
        let mut buf = Vec::new();
        put_i64(&mut buf, v);
        let mut pos = 0;
        assert_eq!(get_i64(&buf, &mut pos), Some(v), "{v}");
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn unsigned_roundtrips_across_widths() {
        for v in [
            0,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            roundtrip_u(v);
        }
    }

    #[test]
    fn signed_roundtrips_and_small_values_stay_small() {
        for v in [0, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            roundtrip_i(v);
        }
        let mut buf = Vec::new();
        put_i64(&mut buf, -1);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_i64(&mut buf, 1);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_and_overlong_inputs_are_rejected() {
        let mut pos = 0;
        assert_eq!(get_u64(&[0x80], &mut pos), None);
        let mut pos = 0;
        assert_eq!(get_u64(&[0x80; 11], &mut pos), None);
        // 10th byte may only contribute one bit.
        let mut encoded = vec![0xff; 9];
        encoded.push(0x02);
        let mut pos = 0;
        assert_eq!(get_u64(&encoded, &mut pos), None);
    }
}
