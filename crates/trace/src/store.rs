//! Content-addressed trace store: record-on-miss, replay-on-hit.
//!
//! Traces are deterministic functions of `(benchmark, scale, seed,
//! generator version)` — the [`TraceKey`]. The store maps each key to
//! one `.strc` file under its directory (default `results/traces/`),
//! so a trace is generated at most once per configuration and every
//! later run replays it from disk.
//!
//! Writes are crash- and concurrency-safe: the encoded bytes go to a
//! uniquely named staging file (same directory, process-unique suffix)
//! which is fsynced and atomically renamed into place — the same
//! discipline as `sim_telemetry::atomic_write`, but with per-process
//! staging names so two recorders racing on one key cannot tear each
//! other's half-written bytes; the losing rename simply overwrites with
//! identical content. Every recorded file is immediately read back and
//! compared to the generated trace, so a bad write (or an injected
//! `truncate-store` fault) fails the recording attempt instead of
//! poisoning the cache.
//!
//! Within one process the record-on-miss path is additionally
//! *single-writer per key*: concurrent lookups of the same missing key
//! serialize on an in-flight table, so exactly one thread pays the
//! generation cost and every waiter replays the freshly published file
//! as a hit. (Cross-process races remain safe via the atomic-rename
//! discipline above — they just both generate.) This is what lets a
//! resident daemon share one read-mostly store across many concurrent
//! request campaigns.

use crate::bbv::BbvSection;
use crate::format::{TraceError, TraceHeader, TraceMeta};
use crate::reader::read_trace_file_with_bbv;
use crate::writer::encode_to_vec;
use sim_isa::VecTrace;
use std::collections::HashSet;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable selecting the store mode.
pub const MODE_ENV: &str = "REPRO_TRACE_STORE";

/// Environment variable overriding the store directory.
pub const DIR_ENV: &str = "REPRO_TRACE_STORE_DIR";

/// Default store directory, relative to the working directory.
pub const DEFAULT_DIR: &str = "results/traces";

/// What the store is allowed to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StoreMode {
    /// Bypass the store entirely: always generate, never touch disk.
    Off,
    /// Replay hits, record misses (the default).
    #[default]
    ReadWrite,
    /// Replay hits, but never write: misses generate without recording
    /// and corrupt files are reported without being deleted.
    ReadOnly,
}

impl StoreMode {
    /// The values [`StoreMode::parse`] accepts, for error messages.
    pub const ACCEPTED: &'static str = "off, rw, ro";

    /// Parses a mode name (`off` / `rw` / `ro`, case-insensitive).
    pub fn parse(value: &str) -> Result<StoreMode, String> {
        match value.to_ascii_lowercase().as_str() {
            "off" => Ok(StoreMode::Off),
            "rw" => Ok(StoreMode::ReadWrite),
            "ro" => Ok(StoreMode::ReadOnly),
            _ => Err(format!(
                "unrecognized {MODE_ENV} value {value:?}; accepted values: {}",
                StoreMode::ACCEPTED
            )),
        }
    }

    /// Reads the mode from [`MODE_ENV`], defaulting to read-write when
    /// unset or empty. A typo is an error, not a silent default — the
    /// same contract as every other `REPRO_*` knob.
    pub fn from_env() -> Result<StoreMode, String> {
        match std::env::var(MODE_ENV) {
            Ok(v) if v.is_empty() => Ok(StoreMode::ReadWrite),
            Ok(v) => StoreMode::parse(&v),
            Err(_) => Ok(StoreMode::ReadWrite),
        }
    }

    /// The mode's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            StoreMode::Off => "off",
            StoreMode::ReadWrite => "rw",
            StoreMode::ReadOnly => "ro",
        }
    }
}

/// The content address of one trace: everything its bytes are a
/// deterministic function of.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceKey {
    /// Benchmark name.
    pub benchmark: String,
    /// Scale label (part of the name for provenance; the budget is what
    /// determines content).
    pub scale: String,
    /// Instruction budget the generator was given.
    pub budget: u64,
    /// Generator seed.
    pub seed: u64,
    /// Workload generator version.
    pub generator_version: u16,
}

impl TraceKey {
    /// The store file name for this key. Every key component is in the
    /// name, so distinct configurations can never collide.
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-b{}-s{:016x}-g{}.strc",
            self.benchmark, self.scale, self.budget, self.seed, self.generator_version
        )
    }

    /// The header provenance a trace recorded under this key carries.
    pub fn meta(&self) -> TraceMeta {
        TraceMeta {
            benchmark: self.benchmark.clone(),
            scale: self.scale.clone(),
            seed: self.seed,
            generator_version: self.generator_version,
        }
    }

    /// Checks a decoded header against this key (defense against a
    /// renamed or mislabeled file).
    fn check_header(&self, h: &TraceHeader) -> Result<(), String> {
        if h.meta != self.meta() {
            return Err(format!(
                "header provenance {:?} does not match key {:?}",
                h.meta,
                self.meta()
            ));
        }
        if h.instructions != self.budget {
            return Err(format!(
                "header has {} instructions, key expects {}",
                h.instructions, self.budget
            ));
        }
        Ok(())
    }
}

/// What one store lookup did, with enough accounting for telemetry.
#[derive(Debug)]
pub struct StoreOutcome {
    /// The trace, whether replayed or generated.
    pub trace: VecTrace,
    /// Whether the trace was replayed from an existing store file.
    pub hit: bool,
    /// Whether a new store file was recorded.
    pub recorded: bool,
    /// Bytes of the `.strc` file involved (0 when the store is off or a
    /// read-only miss generated without recording).
    pub bytes: u64,
    /// Wall time of the decode (the hit replay, or the record path's
    /// read-back verification), in nanoseconds. 0 when nothing decoded.
    pub decode_ns: u64,
    /// The trace's BBV side-section, when the store file carries one
    /// (every store-recorded trace does; `None` when the store is off
    /// or a read-only miss generated without recording). Already
    /// validated against the header by the reader, so phase sampling
    /// can cluster these fingerprints without recomputing them.
    pub bbv: Option<BbvSection>,
}

/// A failed store interaction.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble reading or writing a store path.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A store file failed decoding, header validation, or read-back
    /// comparison.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Why it was rejected.
        reason: String,
        /// Whether the store deleted it (read-write mode), so a retry
        /// will regenerate instead of failing on the same bytes.
        removed: bool,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "trace store i/o on {}: {source}", path.display())
            }
            StoreError::Corrupt {
                path,
                reason,
                removed,
            } => write!(
                f,
                "corrupt trace {}: {reason}{}",
                path.display(),
                if *removed {
                    " (removed; a retry will regenerate it)"
                } else {
                    ""
                }
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// The store itself: a directory plus a [`StoreMode`].
#[derive(Clone, Debug)]
pub struct TraceStore {
    dir: PathBuf,
    mode: StoreMode,
}

static STAGE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Process-wide table of store files currently being recorded, keyed by
/// the destination path. A thread missing on a key that is already
/// in flight waits here instead of generating a duplicate trace.
fn inflight() -> &'static (Mutex<HashSet<PathBuf>>, Condvar) {
    static INFLIGHT: OnceLock<(Mutex<HashSet<PathBuf>>, Condvar)> = OnceLock::new();
    INFLIGHT.get_or_init(|| (Mutex::new(HashSet::new()), Condvar::new()))
}

/// RAII claim on a key's record-on-miss slot: inserted on acquire,
/// removed (with waiters notified) on drop — panic-safe, so a
/// generator that panics under `catch_unwind` releases the key.
struct InflightClaim {
    path: PathBuf,
}

impl InflightClaim {
    /// Blocks until `path` has no in-flight recorder, then claims it.
    fn acquire(path: &Path) -> InflightClaim {
        let (table, cv) = inflight();
        let mut held = table.lock().expect("trace store in-flight table");
        while held.contains(path) {
            held = cv.wait(held).expect("trace store in-flight table");
        }
        held.insert(path.to_path_buf());
        InflightClaim {
            path: path.to_path_buf(),
        }
    }
}

impl Drop for InflightClaim {
    fn drop(&mut self) {
        let (table, cv) = inflight();
        if let Ok(mut held) = table.lock() {
            held.remove(&self.path);
        }
        cv.notify_all();
    }
}

impl TraceStore {
    /// A store over `dir` with the given mode. Nothing touches the
    /// filesystem until a lookup does.
    pub fn new(dir: impl Into<PathBuf>, mode: StoreMode) -> Self {
        TraceStore {
            dir: dir.into(),
            mode,
        }
    }

    /// Builds the store from [`MODE_ENV`] and [`DIR_ENV`].
    ///
    /// # Errors
    ///
    /// Returns the parse error for an unrecognized mode value.
    pub fn from_env() -> Result<TraceStore, String> {
        let mode = StoreMode::from_env()?;
        let dir = match std::env::var(DIR_ENV) {
            Ok(v) if !v.is_empty() => PathBuf::from(v),
            _ => PathBuf::from(DEFAULT_DIR),
        };
        Ok(TraceStore::new(dir, mode))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store mode.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// The file a key maps to.
    pub fn path_for(&self, key: &TraceKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Replays the trace for `key` from the store, or generates it with
    /// `generate` (recording it in read-write mode).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when an existing file fails its
    /// checksums or read-back verification — in read-write mode the
    /// file is deleted first, so retrying the same call regenerates a
    /// good one. [`StoreError::Io`] for filesystem trouble.
    pub fn load_or_record(
        &self,
        key: &TraceKey,
        generate: impl FnOnce() -> VecTrace,
    ) -> Result<StoreOutcome, StoreError> {
        self.load_or_record_with(key, generate, None)
    }

    /// [`TraceStore::load_or_record`] with an optional fault hook:
    /// `corrupt_fraction` truncates the encoded bytes to that fraction
    /// before the recording write, modeling a torn write for chaos
    /// tests (the read-back verification is expected to catch it).
    pub fn load_or_record_with(
        &self,
        key: &TraceKey,
        generate: impl FnOnce() -> VecTrace,
        corrupt_fraction: Option<f64>,
    ) -> Result<StoreOutcome, StoreError> {
        if self.mode == StoreMode::Off {
            return Ok(StoreOutcome {
                trace: generate(),
                hit: false,
                recorded: false,
                bytes: 0,
                decode_ns: 0,
                bbv: None,
            });
        }
        let path = self.path_for(key);
        if path.exists() {
            let (trace, bbv, bytes, decode_ns) = self.replay(key, &path)?;
            return Ok(StoreOutcome {
                trace,
                hit: true,
                recorded: false,
                bytes,
                decode_ns,
                bbv,
            });
        }
        if self.mode == StoreMode::ReadOnly {
            return Ok(StoreOutcome {
                trace: generate(),
                hit: false,
                recorded: false,
                bytes: 0,
                decode_ns: 0,
                bbv: None,
            });
        }
        // Read-write miss: claim the single-writer slot for this key so
        // concurrent misses serialize — one thread generates, the rest
        // wait and then replay what it published.
        let _claim = InflightClaim::acquire(&path);
        if path.exists() {
            let (trace, bbv, bytes, decode_ns) = self.replay(key, &path)?;
            return Ok(StoreOutcome {
                trace,
                hit: true,
                recorded: false,
                bytes,
                decode_ns,
                bbv,
            });
        }
        let trace = generate();
        let mut encoded = encode_to_vec(key.meta(), &trace).map_err(|source| StoreError::Io {
            path: path.clone(),
            source,
        })?;
        if let Some(fraction) = corrupt_fraction {
            let keep = ((encoded.len() as f64 * fraction) as usize).min(encoded.len());
            encoded.truncate(keep);
        }
        let bytes = encoded.len() as u64;
        self.write_atomic(&path, &encoded)?;
        // Read back what the filesystem now holds: verifies the write
        // end to end and keeps hit and miss on the same decode path.
        let started = Instant::now();
        let (replayed, bbv, _, _) = self.replay(key, &path)?;
        let decode_ns = started.elapsed().as_nanos() as u64;
        if replayed != trace {
            return Err(self.reject(&path, "read-back decoded a different trace".to_string()));
        }
        Ok(StoreOutcome {
            trace: replayed,
            hit: false,
            recorded: true,
            bytes,
            decode_ns,
            bbv,
        })
    }

    #[allow(clippy::type_complexity)]
    fn replay(
        &self,
        key: &TraceKey,
        path: &Path,
    ) -> Result<(VecTrace, Option<BbvSection>, u64, u64), StoreError> {
        let started = Instant::now();
        let (header, trace, bbv) = match read_trace_file_with_bbv(path) {
            Ok(ok) => ok,
            Err(TraceError::Io(source)) if source.kind() != io::ErrorKind::UnexpectedEof => {
                return Err(StoreError::Io {
                    path: path.to_path_buf(),
                    source,
                })
            }
            Err(e) => return Err(self.reject(path, e.to_string())),
        };
        if let Err(reason) = key.check_header(&header) {
            return Err(self.reject(path, reason));
        }
        let decode_ns = started.elapsed().as_nanos() as u64;
        let bytes = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        Ok((trace, bbv, bytes, decode_ns))
    }

    /// Marks `path` bad: deletes it in read-write mode so the next
    /// attempt regenerates, and reports accordingly.
    fn reject(&self, path: &Path, reason: String) -> StoreError {
        let removed = self.mode == StoreMode::ReadWrite && fs::remove_file(path).is_ok();
        StoreError::Corrupt {
            path: path.to_path_buf(),
            reason,
            removed,
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let io_err = |source: io::Error| StoreError::Io {
            path: path.to_path_buf(),
            source,
        };
        fs::create_dir_all(&self.dir).map_err(io_err)?;
        let stage = self.dir.join(format!(
            "{}.stage.{}.{}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("trace"),
            std::process::id(),
            STAGE_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let result = (|| {
            let mut f = fs::File::create(&stage)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            drop(f);
            fs::rename(&stage, path)
        })();
        if let Err(source) = result {
            let _ = fs::remove_file(&stage);
            return Err(io_err(source));
        }
        // Directory sync is best-effort, as in sim-telemetry's fsio: it
        // narrows the window where the rename itself is lost to a crash.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Addr, DynInstr, InstrClass};
    use std::sync::atomic::AtomicBool;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sim-trace-store-{tag}-{}-{}",
            std::process::id(),
            STAGE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn key() -> TraceKey {
        TraceKey {
            benchmark: "unit".into(),
            scale: "quick".into(),
            budget: 64,
            seed: 7,
            generator_version: 1,
        }
    }

    fn make_trace(n: u64) -> VecTrace {
        (0..n)
            .map(|i| DynInstr::op(Addr::from_word_index(i), InstrClass::Integer))
            .collect()
    }

    #[test]
    fn miss_records_then_hit_replays_without_generating() {
        let dir = scratch("hit");
        let store = TraceStore::new(&dir, StoreMode::ReadWrite);
        let first = store.load_or_record(&key(), || make_trace(64)).unwrap();
        assert!(!first.hit);
        assert!(first.recorded);
        assert!(first.bytes > 0);
        let generated = AtomicBool::new(false);
        let second = store
            .load_or_record(&key(), || {
                generated.store(true, Ordering::Relaxed);
                make_trace(64)
            })
            .unwrap();
        assert!(second.hit);
        assert!(!generated.load(Ordering::Relaxed), "hit must not generate");
        assert_eq!(second.trace, first.trace);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_and_hit_both_carry_the_bbv_side_section() {
        // Phase sampling clusters the store-borne fingerprints instead
        // of re-walking the trace, so both the record path and the hit
        // path must hand back exactly what record-time fingerprinting
        // produced.
        let dir = scratch("bbv");
        let store = TraceStore::new(&dir, StoreMode::ReadWrite);
        let expected = crate::fingerprint_trace(&make_trace(64));
        let first = store.load_or_record(&key(), || make_trace(64)).unwrap();
        assert_eq!(first.bbv.as_ref(), Some(&expected));
        let second = store.load_or_record(&key(), || make_trace(64)).unwrap();
        assert!(second.hit);
        assert_eq!(second.bbv.as_ref(), Some(&expected));
        let off = TraceStore::new(dir.join("off"), StoreMode::Off);
        assert!(off
            .load_or_record(&key(), || make_trace(64))
            .unwrap()
            .bbv
            .is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn off_mode_never_touches_disk() {
        let dir = scratch("off");
        let store = TraceStore::new(dir.join("sub"), StoreMode::Off);
        let out = store.load_or_record(&key(), || make_trace(64)).unwrap();
        assert!(!out.hit && !out.recorded);
        assert!(!store.dir().exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_mode_replays_but_never_records() {
        let dir = scratch("ro");
        let rw = TraceStore::new(&dir, StoreMode::ReadWrite);
        rw.load_or_record(&key(), || make_trace(64)).unwrap();
        let ro = TraceStore::new(&dir, StoreMode::ReadOnly);
        assert!(ro.load_or_record(&key(), || make_trace(64)).unwrap().hit);
        let mut other = key();
        other.seed = 99;
        let miss = ro.load_or_record(&other, || make_trace(64)).unwrap();
        assert!(!miss.hit && !miss.recorded);
        assert!(!ro.path_for(&other).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_rejected_removed_and_healed_on_retry() {
        let dir = scratch("corrupt");
        let store = TraceStore::new(&dir, StoreMode::ReadWrite);
        let good = store.load_or_record(&key(), || make_trace(64)).unwrap();
        let path = store.path_for(&key());
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let err = store.load_or_record(&key(), || make_trace(64)).unwrap_err();
        match err {
            StoreError::Corrupt { removed, .. } => assert!(removed),
            other => panic!("expected Corrupt, got {other}"),
        }
        assert!(!path.exists(), "corrupt file must be deleted");
        let healed = store.load_or_record(&key(), || make_trace(64)).unwrap();
        assert!(healed.recorded);
        assert_eq!(healed.trace, good.trace);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_mode_reports_corruption_without_deleting() {
        let dir = scratch("ro-corrupt");
        TraceStore::new(&dir, StoreMode::ReadWrite)
            .load_or_record(&key(), || make_trace(64))
            .unwrap();
        let path = TraceStore::new(&dir, StoreMode::ReadOnly).path_for(&key());
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&path, &bytes).unwrap();
        let err = TraceStore::new(&dir, StoreMode::ReadOnly)
            .load_or_record(&key(), || make_trace(64))
            .unwrap_err();
        match err {
            StoreError::Corrupt { removed, .. } => assert!(!removed),
            other => panic!("expected Corrupt, got {other}"),
        }
        assert!(path.exists(), "read-only mode must not delete");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_truncation_fails_the_recording_attempt_then_heals() {
        let dir = scratch("fault");
        let store = TraceStore::new(&dir, StoreMode::ReadWrite);
        let err = store
            .load_or_record_with(&key(), || make_trace(64), Some(0.5))
            .unwrap_err();
        match err {
            StoreError::Corrupt { removed, .. } => assert!(removed),
            other => panic!("expected Corrupt, got {other}"),
        }
        assert!(!store.path_for(&key()).exists());
        let retry = store.load_or_record(&key(), || make_trace(64)).unwrap();
        assert!(retry.recorded);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mislabeled_file_is_rejected() {
        let dir = scratch("mislabel");
        let store = TraceStore::new(&dir, StoreMode::ReadWrite);
        store.load_or_record(&key(), || make_trace(64)).unwrap();
        let mut other = key();
        other.seed = 99;
        fs::rename(store.path_for(&key()), store.path_for(&other)).unwrap();
        let err = store.load_or_record(&other, || make_trace(64)).unwrap_err();
        assert!(err.to_string().contains("provenance"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_misses_generate_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::{Arc, Barrier};

        let dir = scratch("single-writer");
        let store = TraceStore::new(&dir, StoreMode::ReadWrite);
        let generations = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = store.clone();
                let generations = Arc::clone(&generations);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    store
                        .load_or_record(&key(), || {
                            generations.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window: without the
                            // in-flight claim, several threads would be
                            // in here at once.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            make_trace(64)
                        })
                        .unwrap()
                })
            })
            .collect();
        let outcomes: Vec<StoreOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            generations.load(Ordering::SeqCst),
            1,
            "exactly one thread must pay the generation cost"
        );
        assert_eq!(outcomes.iter().filter(|o| o.recorded).count(), 1);
        assert_eq!(outcomes.iter().filter(|o| o.hit).count(), 7);
        let first = &outcomes[0].trace;
        assert!(outcomes.iter().all(|o| o.trace == *first));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mode_parsing_is_strict() {
        assert_eq!(StoreMode::parse("rw").unwrap(), StoreMode::ReadWrite);
        assert_eq!(StoreMode::parse("RO").unwrap(), StoreMode::ReadOnly);
        assert_eq!(StoreMode::parse("off").unwrap(), StoreMode::Off);
        let err = StoreMode::parse("banana").unwrap_err();
        assert!(err.contains(MODE_ENV), "{err}");
    }
}
