//! Streaming `.strc` writer.

use crate::bbv::FingerprintBuilder;
use crate::format::fnv64;
use crate::format::{CodecState, TraceHeader, TraceMeta, CHUNK_RECORDS, MAGIC};
use sim_isa::{DynInstr, TraceStats, VecTrace};
use std::io::{self, Write};

/// What a completed write produced, for logs and store accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteSummary {
    /// Instructions written (equal to the header's declared count).
    pub instructions: u64,
    /// Total bytes of the encoded stream, header included.
    pub bytes: u64,
    /// Number of chunks emitted.
    pub chunks: u64,
}

/// Streaming encoder: header up front, then records pushed one at a
/// time, flushed as checksummed chunks.
///
/// The header carries the trace statistics, so they must be known
/// before writing begins; workload generation materializes a
/// [`VecTrace`] anyway, making a stats-first pass free. [`finish`]
/// fails if the number of pushed records disagrees with the header —
/// a half-written trace must not look complete.
///
/// [`finish`]: TraceWriter::finish
pub struct TraceWriter<W: Write> {
    sink: W,
    codec: CodecState,
    bbv: FingerprintBuilder,
    buf: Vec<u8>,
    records_in_chunk: u32,
    expected: u64,
    written: u64,
    bytes: u64,
    chunks: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace: writes the magic and header for a trace with the
    /// given provenance and statistics.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors; rejects meta strings longer than the
    /// format's 255-byte length prefix.
    pub fn new(mut sink: W, meta: TraceMeta, stats: &TraceStats) -> io::Result<Self> {
        let header = TraceHeader::new(meta, stats).encode()?;
        sink.write_all(MAGIC)?;
        sink.write_all(&header)?;
        Ok(TraceWriter {
            sink,
            codec: CodecState::default(),
            bbv: FingerprintBuilder::new(),
            buf: Vec::with_capacity(CHUNK_RECORDS as usize * 8),
            records_in_chunk: 0,
            expected: stats.instructions(),
            written: 0,
            bytes: (MAGIC.len() + header.len()) as u64,
            chunks: 0,
        })
    }

    /// Appends one instruction.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors; rejects pushes past the instruction
    /// count declared in the header.
    pub fn push(&mut self, i: &DynInstr) -> io::Result<()> {
        if self.written == self.expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("trace header declares {} instructions", self.expected),
            ));
        }
        self.codec.encode(&mut self.buf, i);
        self.bbv.observe(i);
        self.written += 1;
        self.records_in_chunk += 1;
        if self.records_in_chunk == CHUNK_RECORDS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.records_in_chunk == 0 {
            return Ok(());
        }
        self.sink.write_all(&self.records_in_chunk.to_le_bytes())?;
        self.sink
            .write_all(&(self.buf.len() as u32).to_le_bytes())?;
        self.sink.write_all(&self.buf)?;
        self.sink.write_all(&fnv64(&self.buf).to_le_bytes())?;
        self.bytes += 16 + self.buf.len() as u64;
        self.chunks += 1;
        self.bbv.end_chunk();
        self.buf.clear();
        self.records_in_chunk = 0;
        Ok(())
    }

    /// Flushes the final chunk, appends the BBV side-section (see
    /// [`crate::bbv`]), and flushes the sink.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors; fails with `InvalidData` when fewer
    /// instructions were pushed than the header declares.
    pub fn finish(mut self) -> io::Result<WriteSummary> {
        self.flush_chunk()?;
        if self.written != self.expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace header declares {} instructions but {} were written",
                    self.expected, self.written
                ),
            ));
        }
        let section = self.bbv.finish().encode();
        self.sink.write_all(&section)?;
        self.bytes += section.len() as u64;
        self.sink.flush()?;
        Ok(WriteSummary {
            instructions: self.written,
            bytes: self.bytes,
            chunks: self.chunks,
        })
    }
}

/// Encodes a whole in-memory trace to `sink` (stats computed here).
///
/// # Errors
///
/// Propagates sink I/O errors and over-long meta strings.
pub fn write_trace<W: Write>(
    sink: W,
    meta: TraceMeta,
    trace: &VecTrace,
) -> io::Result<WriteSummary> {
    let stats = trace.stats();
    let mut w = TraceWriter::new(sink, meta, &stats)?;
    for i in trace.iter() {
        w.push(i)?;
    }
    w.finish()
}

/// Encodes a whole in-memory trace into a byte vector.
///
/// # Errors
///
/// Fails only on over-long meta strings (a `Vec` sink cannot fail).
pub fn encode_to_vec(meta: TraceMeta, trace: &VecTrace) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(trace.len() * 4 + 256);
    write_trace(&mut out, meta, trace)?;
    Ok(out)
}
