//! trace-pack: inspect, validate, and micro-benchmark `.strc` traces.
//!
//! ```text
//! trace-pack record --bench <name> [--budget N] [--seed N] [--scale LABEL] --out <path>
//! trace-pack info   <file>... [--chunks]
//! trace-pack verify <file|dir>...
//! trace-pack cat    <file> [--limit N]
//! trace-pack bench  <file> [--iters N]
//! ```
//!
//! Exit status: `0` on success, `1` when `verify` finds a bad file,
//! `2` on a usage error.

use sim_isa::TraceStats;
use sim_trace::bbv::BbvSection;
use sim_trace::{
    encode_to_vec, FingerprintBuilder, StatsSummary, TraceError, TraceReader, BBV_MAGIC,
    CHUNK_RECORDS,
};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read};
use std::path::{Path, PathBuf};
use std::process::exit;
use std::time::Instant;

const USAGE: &str = "\
usage: trace-pack <COMMAND> [ARGS]

commands:
  record --bench <name> [--budget N] [--seed N] [--scale LABEL] --out <path>
        generate a workload trace and write it as .strc
        (--out may be a directory: the store file name is used)
  info <file>... [--chunks]
        print each file's header, size, and bytes/instruction;
        --chunks adds a per-chunk table (record count, payload bytes,
        checksum, BBV fingerprint presence)
  verify <file|dir>...
        fully decode each .strc file (directories are scanned for
        *.strc), checking chunk checksums, record validity, the
        header's statistics summary, and — when a BBV side-section is
        present — that its fingerprints match the decoded records;
        exit 1 if any file fails
  cat <file> [--limit N]
        print decoded records (default limit 20; 0 = all)
  bench <file> [--iters N]
        measure decode and encode throughput on one file

exit status: 0 ok, 1 verification failure, 2 usage error
";

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("run trace-pack --help for usage");
    exit(2)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        exit(0);
    }
    if args.is_empty() {
        usage_error("missing command: record, info, verify, cat, bench");
    }
    let command = args.remove(0);
    match command.as_str() {
        "record" => record(&args),
        "info" => info(&args),
        "verify" => verify(&args),
        "cat" => cat(&args),
        "bench" => bench(&args),
        other => usage_error(&format!("unknown command {other:?}")),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => usage_error(&format!("{flag} wants a value")),
        })
}

fn parse_number(flag: &str, value: &str) -> u64 {
    value
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("{flag} wants a number, got {value:?}")))
}

fn positional(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a.clone());
    }
    out
}

fn record(args: &[String]) {
    let bench_name =
        flag_value(args, "--bench").unwrap_or_else(|| usage_error("record wants --bench <name>"));
    let out = flag_value(args, "--out").unwrap_or_else(|| usage_error("record wants --out <path>"));
    let bench = sim_workloads::Benchmark::from_name(&bench_name).unwrap_or_else(|| {
        usage_error(&format!(
            "unknown benchmark {bench_name:?}; accepted: {}",
            sim_workloads::Benchmark::ALL
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    });
    let workload = bench.workload();
    let budget = flag_value(args, "--budget")
        .map(|v| parse_number("--budget", &v))
        .unwrap_or(workload.default_budget() as u64);
    let seed = flag_value(args, "--seed")
        .map(|v| parse_number("--seed", &v))
        .unwrap_or(workload.seed());
    let scale = flag_value(args, "--scale").unwrap_or_else(|| "adhoc".to_string());
    let key = sim_trace::TraceKey {
        benchmark: bench.name().to_string(),
        scale,
        budget,
        seed,
        generator_version: sim_workloads::GENERATOR_VERSION,
    };
    let path = {
        let p = PathBuf::from(&out);
        if p.is_dir() {
            p.join(key.file_name())
        } else {
            p
        }
    };
    let started = Instant::now();
    let trace = workload.generate_seeded(seed, budget as usize);
    let generate_ns = started.elapsed().as_nanos() as u64;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {e}", parent.display());
                exit(2);
            }
        }
    }
    let file = File::create(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot create {}: {e}", path.display());
        exit(2);
    });
    let started = Instant::now();
    let summary =
        sim_trace::write_trace(BufWriter::new(file), key.meta(), &trace).unwrap_or_else(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            exit(2);
        });
    let encode_ns = started.elapsed().as_nanos() as u64;
    println!(
        "recorded {}: {} instructions, {} bytes ({:.2} bytes/instr, {} chunks)",
        path.display(),
        summary.instructions,
        summary.bytes,
        summary.bytes as f64 / summary.instructions.max(1) as f64,
        summary.chunks,
    );
    println!(
        "  generate {:.1} ms, encode {:.1} ms",
        generate_ns as f64 / 1e6,
        encode_ns as f64 / 1e6
    );
}

fn open_reader(path: &Path) -> Result<TraceReader<BufReader<File>>, TraceError> {
    TraceReader::new(BufReader::new(File::open(path)?))
}

fn print_header(path: &Path, reader: &TraceReader<BufReader<File>>) {
    let h = reader.header();
    let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("{}:", path.display());
    println!(
        "  format v{}, generator v{}, benchmark {}, scale {}, seed {:#x}",
        h.format_version, h.meta.generator_version, h.meta.benchmark, h.meta.scale, h.meta.seed
    );
    println!(
        "  {} instructions, {} bytes ({:.2} bytes/instr)",
        h.instructions,
        size,
        size as f64 / h.instructions.max(1) as f64
    );
    let branches: u64 = h.summary.branch_counts.iter().sum();
    let indirect = h.summary.branch_counts[sim_isa::BranchClass::IndirectJump.index()]
        + h.summary.branch_counts[sim_isa::BranchClass::IndirectCall.index()];
    println!(
        "  {branches} branches, {indirect} indirect jumps over {} static sites",
        h.summary.static_indirect_jumps
    );
}

fn info(args: &[String]) {
    // `--chunks` is a bare flag: strip it before positional parsing,
    // which would otherwise swallow the following file name.
    let chunks = args.iter().any(|a| a == "--chunks");
    let args: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--chunks")
        .cloned()
        .collect();
    let files = positional(&args);
    if files.is_empty() {
        usage_error("info wants at least one file");
    }
    for f in &files {
        let path = Path::new(f);
        match open_reader(path) {
            Ok(reader) => {
                print_header(path, &reader);
                if chunks {
                    print_chunk_table(path);
                }
            }
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                exit(2);
            }
        }
    }
}

/// One scanned chunk frame, as `info --chunks` reports it.
struct ChunkRow {
    records: u32,
    payload: u32,
    checksum: u64,
    ok: bool,
}

/// Prints the per-chunk view: record counts, payload sizes, stored
/// checksums (re-verified against the payload), and whether the file's
/// BBV side-section carries a fingerprint for the chunk.
fn print_chunk_table(path: &Path) {
    let mut bytes = Vec::new();
    if let Err(e) = File::open(path).and_then(|mut f| f.read_to_end(&mut bytes)) {
        eprintln!("error: cannot read {}: {e}", path.display());
        exit(2);
    }
    let header = match TraceReader::new(bytes.as_slice()) {
        Ok(r) => r.header().clone(),
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            exit(2);
        }
    };
    // The header has no stored length; re-encoding the parsed header
    // recovers exactly how many bytes it occupied.
    let mut pos = 8 + header.encode().expect("re-encoding a decoded header").len();
    let mut rows: Vec<ChunkRow> = Vec::new();
    let mut section: Option<Result<BbvSection, String>> = None;
    while pos < bytes.len() {
        if bytes.len() - pos >= 8 && &bytes[pos..pos + 8] == BBV_MAGIC {
            let mut src = &bytes[pos + 8..];
            section = Some(BbvSection::read_body(&mut src).unwrap_or_else(|e| Err(e.to_string())));
            pos = bytes.len() - src.len();
            continue;
        }
        if bytes.len() - pos < 8 {
            println!(
                "  … {} trailing bytes (not a chunk frame)",
                bytes.len() - pos
            );
            break;
        }
        let records = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4-byte field"));
        let payload = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4-byte field"));
        pos += 8;
        if bytes.len() - pos < payload as usize + 8 {
            println!("  … file ends inside chunk {} payload", rows.len());
            break;
        }
        let body = &bytes[pos..pos + payload as usize];
        pos += payload as usize;
        let checksum = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8-byte field"));
        pos += 8;
        rows.push(ChunkRow {
            records,
            payload,
            checksum,
            ok: sim_trace::format::fnv64(body) == checksum,
        });
    }
    println!("  chunk  records  payload   checksum          fingerprint");
    for (i, row) in rows.iter().enumerate() {
        let fingerprint = match &section {
            Some(Ok(s)) => match s.chunks.get(i) {
                Some(fp) => format!("{} blocks", fp.block_count()),
                None => "missing".to_string(),
            },
            Some(Err(_)) => "section corrupt".to_string(),
            None => "-".to_string(),
        };
        println!(
            "  {i:>5}  {:>7}  {:>7}   {:016x}{}  {fingerprint}",
            row.records,
            row.payload,
            row.checksum,
            if row.ok { " " } else { "!" },
        );
    }
    match &section {
        Some(Ok(s)) => println!(
            "  bbv side-section: v{}, {} chunk fingerprints",
            s.version,
            s.chunks.len()
        ),
        Some(Err(e)) => println!("  bbv side-section: CORRUPT ({e})"),
        None => println!("  bbv side-section: absent"),
    }
}

fn expand(paths: &[String]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for p in paths {
        let path = PathBuf::from(p);
        if path.is_dir() {
            let mut found: Vec<PathBuf> = match std::fs::read_dir(&path) {
                Ok(entries) => entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|e| e == "strc"))
                    .collect(),
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", path.display());
                    exit(2);
                }
            };
            found.sort();
            out.extend(found);
        } else {
            out.push(path);
        }
    }
    out
}

/// Streams the whole file, recomputing statistics and checking them
/// against the header summary. Fingerprints are recomputed alongside;
/// when the file carries a BBV side-section it must match them exactly.
/// Returns `(instructions, bytes, bbv chunk count if present)`.
fn verify_file(path: &Path) -> Result<(u64, u64, Option<usize>), TraceError> {
    let mut reader = open_reader(path)?;
    let summary = reader.header().summary;
    let declared = reader.header().instructions;
    let mut stats = TraceStats::default();
    let mut fingerprints = FingerprintBuilder::new();
    let mut seen = 0u64;
    for record in &mut reader {
        let record = record?;
        stats.record(&record);
        fingerprints.observe(&record);
        seen += 1;
        if seen.is_multiple_of(u64::from(CHUNK_RECORDS)) {
            fingerprints.end_chunk();
        }
    }
    if !seen.is_multiple_of(u64::from(CHUNK_RECORDS)) {
        fingerprints.end_chunk();
    }
    summary.check(&stats).map_err(TraceError::SummaryMismatch)?;
    let bbv_chunks = match reader.take_bbv() {
        Some(section) => {
            let recomputed = fingerprints.finish();
            if section != recomputed {
                let chunk = section
                    .chunks
                    .iter()
                    .zip(&recomputed.chunks)
                    .position(|(a, b)| a != b)
                    .unwrap_or(0) as u64;
                return Err(TraceError::CorruptChunk {
                    chunk,
                    reason: "bbv fingerprint does not match the decoded records".to_string(),
                });
            }
            Some(section.chunks.len())
        }
        None => None,
    };
    let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    debug_assert_eq!(stats.instructions(), declared);
    Ok((declared, size, bbv_chunks))
}

fn verify(args: &[String]) {
    let files = expand(&positional(args));
    if files.is_empty() {
        usage_error("verify wants at least one file or directory");
    }
    let mut failures = 0u32;
    for path in &files {
        match verify_file(path) {
            Ok((instructions, bytes, bbv)) => {
                let bbv = match bbv {
                    Some(chunks) => format!("bbv {chunks} chunks ok"),
                    None => "no bbv section".to_string(),
                };
                println!(
                    "{}: ok ({instructions} instructions, {bytes} bytes, {bbv})",
                    path.display()
                )
            }
            Err(e) => {
                println!("{}: FAIL ({e})", path.display());
                failures += 1;
            }
        }
    }
    println!(
        "\ntrace-pack: {} file(s), {failures} failure(s)",
        files.len()
    );
    if failures > 0 {
        exit(1);
    }
}

fn cat(args: &[String]) {
    let files = positional(args);
    let [file] = files.as_slice() else {
        usage_error("cat wants exactly one file");
    };
    let limit = flag_value(args, "--limit")
        .map(|v| parse_number("--limit", &v))
        .unwrap_or(20);
    let path = Path::new(file);
    let mut reader = open_reader(path).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", path.display());
        exit(2);
    });
    let total = reader.header().instructions;
    let mut printed = 0u64;
    for record in &mut reader {
        match record {
            Ok(i) => println!("{i:?}"),
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                exit(2);
            }
        }
        printed += 1;
        if limit != 0 && printed == limit {
            break;
        }
    }
    if printed < total {
        println!("… and {} more", total - printed);
    }
}

fn bench(args: &[String]) {
    let files = positional(args);
    let [file] = files.as_slice() else {
        usage_error("bench wants exactly one file");
    };
    let iters = flag_value(args, "--iters")
        .map(|v| parse_number("--iters", &v))
        .unwrap_or(5)
        .max(1);
    let path = Path::new(file);
    let mut bytes = Vec::new();
    if let Err(e) = File::open(path).and_then(|mut f| f.read_to_end(&mut bytes)) {
        eprintln!("error: cannot read {}: {e}", path.display());
        exit(2);
    }
    let mut decoded = None;
    let mut best_decode = u64::MAX;
    for _ in 0..iters {
        let started = Instant::now();
        let reader = TraceReader::new(bytes.as_slice()).unwrap_or_else(|e| {
            eprintln!("error: {}: {e}", path.display());
            exit(2);
        });
        let trace = reader.read_to_end().unwrap_or_else(|e| {
            eprintln!("error: {}: {e}", path.display());
            exit(2);
        });
        best_decode = best_decode.min(started.elapsed().as_nanos() as u64);
        decoded = Some(trace);
    }
    let trace = decoded.expect("at least one iteration");
    let meta = {
        let reader = TraceReader::new(bytes.as_slice()).expect("already decoded once");
        reader.header().meta.clone()
    };
    let mut best_encode = u64::MAX;
    for _ in 0..iters {
        let started = Instant::now();
        let out = encode_to_vec(meta.clone(), &trace).expect("encoding a decoded trace");
        best_encode = best_encode.min(started.elapsed().as_nanos() as u64);
        assert_eq!(out.len(), bytes.len());
    }
    // Sanity: the summary the file carries matches what we replayed.
    assert!(StatsSummary::of(&trace.stats())
        .check(&trace.stats())
        .is_ok());
    let n = trace.len() as f64;
    let mb = bytes.len() as f64 / (1024.0 * 1024.0);
    println!(
        "{}: {} instructions, {} bytes ({:.2} bytes/instr), best of {iters}:",
        path.display(),
        trace.len(),
        bytes.len(),
        bytes.len() as f64 / n.max(1.0)
    );
    println!(
        "  decode {:.1} ms  ({:.1} M instr/s, {:.1} MB/s)",
        best_decode as f64 / 1e6,
        n / (best_decode as f64 / 1e9) / 1e6,
        mb / (best_decode as f64 / 1e9)
    );
    println!(
        "  encode {:.1} ms  ({:.1} M instr/s, {:.1} MB/s)",
        best_encode as f64 / 1e6,
        n / (best_encode as f64 / 1e9) / 1e6,
        mb / (best_encode as f64 / 1e9)
    );
}
