//! Bench support: shared setup for the Criterion benches.
//!
//! The benches live in `benches/`:
//!
//! * `tables` — one bench per paper table (1, 2, 4, 5, 6, 7, 8, 9): each
//!   measures the end-to-end regeneration of that table at quick scale and,
//!   as a side effect, validates that the experiment still runs.
//! * `figures` — Figures 1–8 and 12–13, plus the headline.
//! * `ablations` — the design-choice ablations DESIGN.md calls out:
//!   index-hash cost, tagless vs tagged lookup cost, and history-source
//!   maintenance cost.
//! * `throughput` — raw component speeds: trace generation, functional
//!   prediction, and the timing model, in instructions per second. The
//!   bench bodies are the shared `repro-bench` scenario matrix
//!   (`experiments::perf::scenario_matrix`), so `cargo bench` and
//!   `repro-bench` report comparable rates.

use sim_isa::VecTrace;
use sim_workloads::Benchmark;

/// The trace budget benches use: big enough to exercise steady state,
/// small enough that `cargo bench` completes in minutes.
pub const BENCH_BUDGET: usize = 100_000;

/// Generates the standard bench trace for a benchmark.
pub fn bench_trace(bench: Benchmark) -> VecTrace {
    bench.workload().generate(BENCH_BUDGET)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_trace_has_expected_size() {
        assert_eq!(bench_trace(Benchmark::Compress).len(), BENCH_BUDGET);
    }
}
