//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! These isolate single components so a regression in, say, the tagged
//! lookup path shows up here before it muddies the table benches:
//!
//! * index-hash schemes (GAg vs GAs vs gshare; Address vs Concat vs Xor),
//! * tagless vs tagged storage on the same access stream,
//! * history-source maintenance (pattern vs global path vs per-address).

use branch_predictors::{PathFilter, PathHistoryConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_isa::{Addr, BranchClass};
use std::hint::black_box;
use target_cache::{
    HistorySource, HistoryTracker, IndexScheme, Organization, TaggedIndexScheme, TargetCache,
    TargetCacheConfig,
};

/// A deterministic pseudo-random access stream of (pc, history, target).
fn access_stream(n: usize) -> Vec<(Addr, u64, Addr)> {
    let mut x = 0x0123_4567_89AB_CDEFu64;
    (0..n)
        .map(|_| {
            // xorshift64
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = Addr::from_word_index(0x1000 + (x & 0xFF) * 31);
            let hist = (x >> 8) & 0xFFFF;
            let target = Addr::from_word_index(0x8000 + ((x >> 24) & 0x3F) * 17);
            (pc, hist, target)
        })
        .collect()
}

fn bench_hash_schemes(c: &mut Criterion) {
    let stream = access_stream(10_000);
    let mut group = c.benchmark_group("ablation_hash_schemes");

    let tagless = |scheme: IndexScheme| {
        TargetCacheConfig::new(
            Organization::Tagless {
                entries: 512,
                scheme,
            },
            HistorySource::Pattern { bits: 9 },
        )
    };
    for (name, scheme) in [
        ("tagless_gag", IndexScheme::GAg),
        ("tagless_gas", IndexScheme::GAs { addr_bits: 2 }),
        ("tagless_gshare", IndexScheme::Gshare),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut tc = TargetCache::new(tagless(scheme));
                for &(pc, hist, target) in &stream {
                    let (access, pred) = tc.lookup(pc, hist);
                    black_box(pred);
                    tc.update(access, target);
                }
                tc.occupancy()
            })
        });
    }

    let tagged = |scheme: TaggedIndexScheme| {
        TargetCacheConfig::new(
            Organization::Tagged {
                entries: 256,
                assoc: 4,
                scheme,
            },
            HistorySource::Pattern { bits: 9 },
        )
    };
    for (name, scheme) in [
        ("tagged_address", TaggedIndexScheme::Address),
        ("tagged_concat", TaggedIndexScheme::HistoryConcat),
        ("tagged_xor", TaggedIndexScheme::HistoryXor),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut tc = TargetCache::new(tagged(scheme));
                for &(pc, hist, target) in &stream {
                    let (access, pred) = tc.lookup(pc, hist);
                    black_box(pred);
                    tc.update(access, target);
                }
                tc.occupancy()
            })
        });
    }
    group.finish();
}

fn bench_tagless_vs_tagged_associativity(c: &mut Criterion) {
    let stream = access_stream(10_000);
    let mut group = c.benchmark_group("ablation_storage_organization");
    for assoc in [1usize, 4, 16, 256] {
        group.bench_function(format!("tagged_{assoc}way"), |b| {
            b.iter(|| {
                let mut tc = TargetCache::new(TargetCacheConfig::isca97_tagged(assoc));
                for &(pc, hist, target) in &stream {
                    let (access, pred) = tc.lookup(pc, hist);
                    black_box(pred);
                    tc.update(access, target);
                }
                tc.occupancy()
            })
        });
    }
    group.bench_function("tagless_512", |b| {
        b.iter(|| {
            let mut tc = TargetCache::new(TargetCacheConfig::isca97_tagless_gshare());
            for &(pc, hist, target) in &stream {
                let (access, pred) = tc.lookup(pc, hist);
                black_box(pred);
                tc.update(access, target);
            }
            tc.occupancy()
        })
    });
    group.finish();
}

fn bench_history_sources(c: &mut Criterion) {
    let stream = access_stream(10_000);
    let mut group = c.benchmark_group("ablation_history_sources");
    let sources = [
        ("pattern", HistorySource::Pattern { bits: 9 }),
        (
            "global_path",
            HistorySource::GlobalPath(PathHistoryConfig::isca97_default(PathFilter::Control)),
        ),
        (
            "per_address_path",
            HistorySource::PerAddressPath(PathHistoryConfig::isca97_default(
                PathFilter::IndirectJump,
            )),
        ),
    ];
    for (name, source) in sources {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut tracker = HistoryTracker::new(source);
                let mut acc = 0u64;
                for &(pc, hist, target) in &stream {
                    acc ^= tracker.value_for(pc);
                    let class = if hist & 1 == 0 {
                        BranchClass::CondDirect
                    } else {
                        BranchClass::IndirectJump
                    };
                    let taken = hist & 2 == 0 || class != BranchClass::CondDirect;
                    tracker.on_branch_resolved(pc, class, taken, target);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hash_schemes,
    bench_tagless_vs_tagged_associativity,
    bench_history_sources
);
criterion_main!(benches);
