//! Raw component throughput: how many instructions per second each layer
//! of the stack processes. Criterion's throughput mode reports elem/s.

use bench::{bench_trace, BENCH_BUDGET};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hps_uarch::{simulate, MachineConfig};
use sim_workloads::Benchmark;
use std::hint::black_box;
use target_cache::harness::{FrontEndConfig, PredictionHarness};
use target_cache::TargetCacheConfig;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BENCH_BUDGET as u64));

    // Trace generation speed for a representative pair.
    for bench in [Benchmark::Perl, Benchmark::Gcc] {
        let workload = bench.workload();
        group.bench_function(format!("generate_{bench}"), |b| {
            b.iter(|| black_box(workload.generate(BENCH_BUDGET)).len())
        });
    }

    // Functional prediction.
    let perl = bench_trace(Benchmark::Perl);
    group.bench_function("functional_baseline_perl", |b| {
        b.iter(|| {
            let mut h = PredictionHarness::new(FrontEndConfig::isca97_baseline());
            h.run(&perl);
            h.stats().total_mispredicted()
        })
    });
    group.bench_function("functional_target_cache_perl", |b| {
        b.iter(|| {
            let mut h = PredictionHarness::new(FrontEndConfig::isca97_with(
                TargetCacheConfig::isca97_tagless_gshare(),
            ));
            h.run(&perl);
            h.stats().total_mispredicted()
        })
    });

    // Full timing model.
    group.bench_function("timing_model_perl", |b| {
        b.iter(|| {
            simulate(
                &perl,
                &MachineConfig::isca97(FrontEndConfig::isca97_baseline()),
            )
            .cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
