//! Raw component throughput: how many instructions per second each layer
//! of the stack processes.
//!
//! The bench bodies are the `repro-bench` scenario matrix
//! ([`experiments::perf::scenario_matrix`]) — the same closures, run
//! under the same telemetry session — so `cargo bench` and `repro-bench`
//! measure identical code paths and their instructions-per-second
//! numbers are directly comparable. Criterion's `Elements` throughput is
//! set to each scenario's instruction count, so the printed `elem/s`
//! *is* instr/s.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use experiments::perf;
use experiments::telemetry::{self, ProfMode, TelemetryMode};
use experiments::Scale;

/// The subset of the matrix worth a Criterion timing loop: one scenario
/// per stack layer, on the indirect-heavy workloads. `repro-bench`
/// covers the full matrix.
const KEEP: [&str; 6] = [
    "trace-gen/perl",
    "trace-gen/gcc",
    "functional-btb/perl",
    "functional-tc/perl",
    "timing/perl",
    "timing/gcc",
];

fn bench_throughput(c: &mut Criterion) {
    // One summary-mode session across the group, exactly as repro-bench
    // installs: spans accumulate per-phase timings and the manifest
    // (with its perf section) lands in results/telemetry/.
    // Cargo runs benches with the crate directory as cwd; anchor the
    // output at the workspace root so it lands in the ignored
    // `results/telemetry/` with everything else.
    let session = telemetry::session_with_prof(
        "bench-throughput",
        Scale::Quick,
        TelemetryMode::Summary,
        ProfMode::default(),
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/telemetry"),
    );
    let ctx = session.ctx();
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    for mut scenario in perf::scenario_matrix(&ctx, Scale::Quick) {
        if !KEEP.contains(&scenario.name.as_str()) {
            continue;
        }
        // Untimed warm-up doubling as the per-iteration element count.
        let instructions = scenario.run_once();
        group.throughput(Throughput::Elements(instructions));
        group.bench_function(scenario.name.clone(), |b| b.iter(|| scenario.run_once()));
    }
    group.finish();
    drop(session);
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
