//! Criterion benches for the paper's figures and headline numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::Scale;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig1_8_targets_per_jump", |b| {
        b.iter(|| black_box(experiments::fig_targets::run(Scale::Quick)))
    });
    group.bench_function("fig12_13_tagless_vs_tagged", |b| {
        b.iter(|| black_box(experiments::fig_tagless_vs_tagged::run(Scale::Quick)))
    });
    group.bench_function("headline_abstract_numbers", |b| {
        b.iter(|| black_box(experiments::headline::run(Scale::Quick)))
    });
    group.bench_function("extension_oo_cpp_future_work", |b| {
        b.iter(|| black_box(experiments::extension_oo::run(Scale::Quick)))
    });
    group.bench_function("extension_oracle_limits", |b| {
        b.iter(|| black_box(experiments::extension_limits::run(Scale::Quick)))
    });
    group.bench_function("extension_cascade", |b| {
        b.iter(|| black_box(experiments::extension_cascade::run(Scale::Quick)))
    });
    group.bench_function("extension_hysteresis", |b| {
        b.iter(|| black_box(experiments::extension_hysteresis::run(Scale::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
