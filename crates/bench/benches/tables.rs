//! One Criterion bench per paper table: measures the end-to-end
//! regeneration of each table at quick scale.
//!
//! Run a single table with e.g. `cargo bench --bench tables -- table4`.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::Scale;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);

    group.bench_function("table1_benchmark_characterization", |b| {
        b.iter(|| black_box(experiments::table1::run(Scale::Quick)))
    });
    group.bench_function("table2_two_bit_btb", |b| {
        b.iter(|| black_box(experiments::table2::run(Scale::Quick)))
    });
    group.bench_function("table4_tagless_pattern_schemes", |b| {
        b.iter(|| black_box(experiments::table4::run(Scale::Quick)))
    });
    group.bench_function("table5_path_address_bits", |b| {
        b.iter(|| black_box(experiments::table5::run(Scale::Quick)))
    });
    group.bench_function("table6_path_bits_per_target", |b| {
        b.iter(|| black_box(experiments::table6::run(Scale::Quick)))
    });
    group.bench_function("table7_tagged_index_schemes", |b| {
        b.iter(|| black_box(experiments::table7::run(Scale::Quick)))
    });
    group.bench_function("table8_tagged_path_history", |b| {
        b.iter(|| black_box(experiments::table8::run(Scale::Quick)))
    });
    group.bench_function("table9_history_length", |b| {
        b.iter(|| black_box(experiments::table9::run(Scale::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
