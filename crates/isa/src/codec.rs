//! Binary trace serialization.
//!
//! A compact, versioned, deterministic on-disk format for [`VecTrace`]s,
//! so generated workloads can be exchanged and replayed as artifacts
//! (`tracegen` / `traceinfo` in the `sim-workloads` crate drive this).
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic    8 bytes  "IJPTRC01"
//! count    u64      number of instructions
//! records  count ×:
//!   kind   u8       0..=6 non-branch class index; 0x40|branch-class branch
//!   pc     u64
//!   ops    u8       bit0/1: src present, bit2: dst present, bit3: taken
//!   srcs   present × u16
//!   dst    present × u16
//!   mem    u64      loads/stores only
//!   target u64      branches only
//! ```

use crate::{Addr, BranchClass, BranchExec, DynInstr, InstrClass, Reg, VecTrace};
use std::io::{self, Read, Write};

/// File magic identifying format version 1.
pub const MAGIC: &[u8; 8] = b"IJPTRC01";

const BRANCH_KIND_BASE: u8 = 0x40;

/// Errors produced while decoding a trace.
#[derive(Debug)]
pub enum DecodeTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match [`MAGIC`].
    BadMagic([u8; 8]),
    /// A record carried an unknown kind byte.
    BadKind(u8),
    /// A register index was out of range.
    BadRegister(u16),
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            DecodeTraceError::BadMagic(m) => write!(f, "not a trace file (magic {m:02x?})"),
            DecodeTraceError::BadKind(k) => write!(f, "unknown record kind {k:#04x}"),
            DecodeTraceError::BadRegister(r) => write!(f, "register index {r} out of range"),
        }
    }
}

impl std::error::Error for DecodeTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeTraceError {
    fn from(e: io::Error) -> Self {
        DecodeTraceError::Io(e)
    }
}

const NON_BRANCH_CLASSES: [InstrClass; 7] = [
    InstrClass::Integer,
    InstrClass::FpAdd,
    InstrClass::Mul,
    InstrClass::Div,
    InstrClass::Load,
    InstrClass::Store,
    InstrClass::BitField,
];

fn kind_byte(i: &DynInstr) -> u8 {
    match i.branch_exec() {
        Some(b) => BRANCH_KIND_BASE | b.class.index() as u8,
        None => NON_BRANCH_CLASSES
            .iter()
            .position(|&c| c == i.class())
            .expect("non-branch instruction has a non-branch class") as u8,
    }
}

/// Writes a trace to `writer`. A `&mut` reference works as the writer.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W: Write>(mut writer: W, trace: &VecTrace) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    for i in trace.iter() {
        writer.write_all(&[kind_byte(i)])?;
        writer.write_all(&i.pc().raw().to_le_bytes())?;
        let srcs = i.srcs();
        let flags = srcs[0].is_some() as u8
            | (srcs[1].is_some() as u8) << 1
            | (i.dst().is_some() as u8) << 2
            | (i.branch_exec().is_some_and(|b| b.taken) as u8) << 3;
        writer.write_all(&[flags])?;
        for src in srcs.into_iter().flatten() {
            writer.write_all(&src.index().to_le_bytes())?;
        }
        if let Some(dst) = i.dst() {
            writer.write_all(&dst.index().to_le_bytes())?;
        }
        if let Some(mem) = i.mem() {
            writer.write_all(&mem.addr.to_le_bytes())?;
        }
        if let Some(b) = i.branch_exec() {
            writer.write_all(&b.target.raw().to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_array<R: Read, const N: usize>(reader: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    Ok(u64::from_le_bytes(read_array(reader)?))
}

fn read_reg<R: Read>(reader: &mut R) -> Result<Reg, DecodeTraceError> {
    let raw = u16::from_le_bytes(read_array(reader)?);
    if raw >= crate::reg::REG_COUNT {
        return Err(DecodeTraceError::BadRegister(raw));
    }
    Ok(Reg::new(raw))
}

/// Reads a trace from `reader`. A `&mut` reference works as the reader.
///
/// # Errors
///
/// Returns [`DecodeTraceError`] on I/O failure, bad magic, unknown record
/// kinds, or out-of-range register indices.
pub fn read_trace<R: Read>(mut reader: R) -> Result<VecTrace, DecodeTraceError> {
    let magic: [u8; 8] = read_array(&mut reader)?;
    if &magic != MAGIC {
        return Err(DecodeTraceError::BadMagic(magic));
    }
    let count = read_u64(&mut reader)?;
    let mut trace = VecTrace::new();
    for _ in 0..count {
        let [kind] = read_array(&mut reader)?;
        let pc = Addr::new(read_u64(&mut reader)?);
        let [flags] = read_array(&mut reader)?;
        let src_a = if flags & 1 != 0 {
            Some(read_reg(&mut reader)?)
        } else {
            None
        };
        let src_b = if flags & 2 != 0 {
            Some(read_reg(&mut reader)?)
        } else {
            None
        };
        let dst = if flags & 4 != 0 {
            Some(read_reg(&mut reader)?)
        } else {
            None
        };
        let taken = flags & 8 != 0;

        let mut instr = if kind & BRANCH_KIND_BASE != 0 {
            let class = *BranchClass::ALL
                .get((kind & !BRANCH_KIND_BASE) as usize)
                .ok_or(DecodeTraceError::BadKind(kind))?;
            let target = Addr::new(read_u64(&mut reader)?);
            DynInstr::branch(pc, BranchExec::new(class, taken, target))
        } else {
            let class = *NON_BRANCH_CLASSES
                .get(kind as usize)
                .ok_or(DecodeTraceError::BadKind(kind))?;
            match class {
                InstrClass::Load => {
                    let addr = read_u64(&mut reader)?;
                    DynInstr::load(pc, addr)
                }
                InstrClass::Store => {
                    let addr = read_u64(&mut reader)?;
                    DynInstr::store(pc, addr)
                }
                c => DynInstr::op(pc, c),
            }
        };
        instr = instr.with_srcs(src_a, src_b);
        if let Some(dst) = dst {
            instr = instr.with_dst(dst);
        }
        trace.push(instr);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> VecTrace {
        VecTrace::from_iter([
            DynInstr::op(Addr::new(0x100), InstrClass::Integer)
                .with_srcs(Some(Reg::new(1)), Some(Reg::new(2)))
                .with_dst(Reg::new(3)),
            DynInstr::load(Addr::new(0x104), 0xDEAD_BEEF).with_dst(Reg::new(4)),
            DynInstr::store(Addr::new(0x108), 0x1234_5678).with_srcs(Some(Reg::new(4)), None),
            DynInstr::branch(
                Addr::new(0x10c),
                BranchExec::not_taken(BranchClass::CondDirect, Addr::new(0x200)),
            ),
            DynInstr::branch(
                Addr::new(0x110),
                BranchExec::taken(BranchClass::IndirectJump, Addr::new(0x300)),
            ),
            DynInstr::branch(
                Addr::new(0x300),
                BranchExec::taken(BranchClass::Return, Addr::new(0x114)),
            ),
        ])
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let decoded = read_trace(buf.as_slice()).unwrap();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &VecTrace::new()).unwrap();
        assert_eq!(buf.len(), 16); // magic + count
        assert_eq!(read_trace(buf.as_slice()).unwrap(), VecTrace::new());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOTATRCE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, DecodeTraceError::BadMagic(_)), "{err}");
    }

    #[test]
    fn truncated_file_is_an_io_error() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, DecodeTraceError::Io(_)), "{err}");
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(0x3F); // not a valid non-branch class index
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.push(0);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, DecodeTraceError::BadKind(0x3F)), "{err}");
    }

    #[test]
    fn out_of_range_register_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(0); // integer op
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.push(1); // src_a present
        buf.extend_from_slice(&999u16.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, DecodeTraceError::BadRegister(999)), "{err}");
    }

    #[test]
    fn error_display_is_informative() {
        let e = DecodeTraceError::BadKind(0x3F);
        assert!(e.to_string().contains("0x3f"));
    }
}
