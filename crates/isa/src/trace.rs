//! Trace abstractions and whole-trace statistics.
//!
//! A *trace* is any iterator of [`DynInstr`]. Workload generators produce
//! traces lazily; [`VecTrace`] materializes one for repeated replay, and
//! [`TraceStats`] computes the per-benchmark characterization the paper
//! reports in Table 1 and Figures 1–8.

use crate::{Addr, BranchClass, DynInstr, InstrClass};
use std::collections::HashMap;

/// A materialized trace, replayable any number of times.
///
/// # Example
///
/// ```
/// use sim_isa::{Addr, BranchClass, BranchExec, DynInstr, VecTrace};
///
/// let trace = VecTrace::from_iter([
///     DynInstr::op(Addr::new(0x0), sim_isa::InstrClass::Integer),
///     DynInstr::branch(Addr::new(0x4), BranchExec::taken(BranchClass::IndirectJump, Addr::new(0x0))),
/// ]);
/// assert_eq!(trace.len(), 2);
/// let stats = trace.stats();
/// assert_eq!(stats.indirect_jumps(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VecTrace {
    instrs: Vec<DynInstr>,
}

impl VecTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        VecTrace::default()
    }

    /// Reserves room for at least `n` more instructions. Trace
    /// generators know their budget up front; reserving once avoids the
    /// doubling reallocations of growing a multi-hundred-thousand-entry
    /// trace from empty.
    pub fn reserve(&mut self, n: usize) {
        self.instrs.reserve(n);
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends an instruction.
    #[inline]
    pub fn push(&mut self, i: DynInstr) {
        self.instrs.push(i);
    }

    /// Borrowing iterator over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInstr> {
        self.instrs.iter()
    }

    /// The instructions as a slice.
    pub fn as_slice(&self) -> &[DynInstr] {
        &self.instrs
    }

    /// Computes whole-trace statistics (one pass).
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self.iter().copied())
    }
}

impl FromIterator<DynInstr> for VecTrace {
    fn from_iter<T: IntoIterator<Item = DynInstr>>(iter: T) -> Self {
        VecTrace {
            instrs: iter.into_iter().collect(),
        }
    }
}

impl Extend<DynInstr> for VecTrace {
    fn extend<T: IntoIterator<Item = DynInstr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

impl<'a> IntoIterator for &'a VecTrace {
    type Item = &'a DynInstr;
    type IntoIter = std::slice::Iter<'a, DynInstr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

impl IntoIterator for VecTrace {
    type Item = DynInstr;
    type IntoIter = std::vec::IntoIter<DynInstr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.into_iter()
    }
}

/// A replayable source of instructions: anything that can produce a
/// fresh pass over the same dynamic instruction sequence any number of
/// times.
///
/// [`VecTrace`] is the in-memory implementation; the `sim-trace` crate
/// adds on-disk ones. Simulators that accept `&impl Trace` work with
/// either without materializing anything themselves.
pub trait Trace {
    /// The iterator a replay yields.
    type Replay<'a>: Iterator<Item = DynInstr>
    where
        Self: 'a;

    /// Starts a fresh pass over the instructions.
    fn replay(&self) -> Self::Replay<'_>;

    /// The number of instructions a replay will yield, when known up
    /// front (lets consumers pre-size buffers and accounting).
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Computes whole-trace statistics with one replay pass.
    fn compute_stats(&self) -> TraceStats {
        TraceStats::from_trace(self.replay())
    }
}

impl Trace for VecTrace {
    type Replay<'a> = std::iter::Copied<std::slice::Iter<'a, DynInstr>>;

    fn replay(&self) -> Self::Replay<'_> {
        self.iter().copied()
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len() as u64)
    }
}

/// Per-static-branch dynamic target census for one indirect jump.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TargetCensus {
    /// Dynamic execution count of this static branch.
    pub executions: u64,
    /// Distinct dynamic targets seen, with per-target counts.
    pub targets: HashMap<Addr, u64>,
}

impl TargetCensus {
    /// Number of distinct targets observed.
    pub fn distinct_targets(&self) -> usize {
        self.targets.len()
    }
}

/// Whole-trace statistics: the characterization data of Table 1 and the
/// targets-per-indirect-jump histograms of Figures 1–8.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    instructions: u64,
    class_counts: [u64; 8],
    branch_counts: [u64; 6],
    taken_conditional: u64,
    indirect_jump_census: HashMap<Addr, TargetCensus>,
}

impl TraceStats {
    /// Computes statistics over a trace in one pass.
    pub fn from_trace<I: IntoIterator<Item = DynInstr>>(trace: I) -> Self {
        let mut s = TraceStats::default();
        for i in trace {
            s.record(&i);
        }
        s
    }

    /// Folds one instruction into the statistics.
    pub fn record(&mut self, i: &DynInstr) {
        self.instructions += 1;
        self.class_counts[i.class().index()] += 1;
        if let Some(b) = i.branch_exec() {
            self.branch_counts[b.class.index()] += 1;
            if b.class.is_conditional() && b.taken {
                self.taken_conditional += 1;
            }
            if b.class.uses_target_cache() {
                let census = self.indirect_jump_census.entry(i.pc()).or_default();
                census.executions += 1;
                *census.targets.entry(b.target).or_insert(0) += 1;
            }
        }
    }

    /// Total dynamic instruction count.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Dynamic count of a given instruction class.
    pub fn class_count(&self, class: InstrClass) -> u64 {
        self.class_counts[class.index()]
    }

    /// All per-class dynamic counts, indexed by [`InstrClass::index`].
    pub fn class_counts(&self) -> [u64; 8] {
        self.class_counts
    }

    /// All per-branch-class dynamic counts, indexed by
    /// [`BranchClass::index`].
    pub fn branch_class_counts(&self) -> [u64; 6] {
        self.branch_counts
    }

    /// Dynamic count of all control instructions.
    pub fn branches(&self) -> u64 {
        self.class_counts[InstrClass::Branch.index()]
    }

    /// Dynamic count of a given branch class.
    pub fn branch_count(&self, class: BranchClass) -> u64 {
        self.branch_counts[class.index()]
    }

    /// Dynamic count of target-cache-eligible branches (indirect jumps and
    /// indirect calls, excluding returns) — the paper's "# Indirect Jumps"
    /// column of Table 1.
    pub fn indirect_jumps(&self) -> u64 {
        self.branch_counts[BranchClass::IndirectJump.index()]
            + self.branch_counts[BranchClass::IndirectCall.index()]
    }

    /// Dynamic count of taken conditional branches.
    pub fn taken_conditional(&self) -> u64 {
        self.taken_conditional
    }

    /// Fraction of dynamic instructions that are target-cache-eligible
    /// indirect branches (the paper quotes 0.5% for gcc, 0.6% for perl).
    pub fn indirect_jump_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.indirect_jumps() as f64 / self.instructions as f64
        }
    }

    /// Number of *static* indirect jump sites observed.
    pub fn static_indirect_jumps(&self) -> usize {
        self.indirect_jump_census.len()
    }

    /// Per-site dynamic target census.
    pub fn indirect_jump_census(&self) -> &HashMap<Addr, TargetCensus> {
        &self.indirect_jump_census
    }

    /// Histogram for Figures 1–8: for each static indirect jump, the number
    /// of distinct dynamic targets it exhibited, bucketed `1..cap` with a
    /// final `>= cap` bucket (the paper uses `cap = 30`).
    ///
    /// Returns a vector of length `cap` where slot `k-1` (for `k < cap`)
    /// counts static jumps with exactly `k` targets and slot `cap-1` counts
    /// those with `cap` or more.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0.
    pub fn targets_per_jump_histogram(&self, cap: usize) -> Vec<u64> {
        assert!(cap >= 1, "histogram cap must be at least 1");
        let mut hist = vec![0u64; cap];
        for census in self.indirect_jump_census.values() {
            let n = census.distinct_targets().max(1);
            let bucket = n.min(cap) - 1;
            hist[bucket] += 1;
        }
        hist
    }

    /// Same histogram weighted by *dynamic* executions instead of static
    /// sites: how many dynamic indirect jumps were executions of a site with
    /// `k` distinct targets. This is what determines prediction difficulty.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0.
    pub fn dynamic_targets_per_jump_histogram(&self, cap: usize) -> Vec<u64> {
        assert!(cap >= 1, "histogram cap must be at least 1");
        let mut hist = vec![0u64; cap];
        for census in self.indirect_jump_census.values() {
            let n = census.distinct_targets().max(1);
            let bucket = n.min(cap) - 1;
            hist[bucket] += census.executions;
        }
        hist
    }

    /// Merges another statistics object into this one (useful for sharded
    /// trace generation).
    pub fn merge(&mut self, other: &TraceStats) {
        self.instructions += other.instructions;
        for (a, b) in self.class_counts.iter_mut().zip(other.class_counts) {
            *a += b;
        }
        for (a, b) in self.branch_counts.iter_mut().zip(other.branch_counts) {
            *a += b;
        }
        self.taken_conditional += other.taken_conditional;
        for (pc, census) in &other.indirect_jump_census {
            let mine = self.indirect_jump_census.entry(*pc).or_default();
            mine.executions += census.executions;
            for (t, n) in &census.targets {
                *mine.targets.entry(*t).or_insert(0) += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchExec;

    fn ijmp(pc: u64, target: u64) -> DynInstr {
        DynInstr::branch(
            Addr::new(pc),
            BranchExec::taken(BranchClass::IndirectJump, Addr::new(target)),
        )
    }

    fn cond(pc: u64, taken: bool, target: u64) -> DynInstr {
        DynInstr::branch(
            Addr::new(pc),
            BranchExec::new(BranchClass::CondDirect, taken, Addr::new(target)),
        )
    }

    #[test]
    fn vec_trace_roundtrip() {
        let mut t = VecTrace::new();
        assert!(t.is_empty());
        t.push(DynInstr::op(Addr::new(0), InstrClass::Integer));
        t.extend([DynInstr::op(Addr::new(4), InstrClass::FpAdd)]);
        assert_eq!(t.len(), 2);
        let collected: Vec<_> = t.iter().map(|i| i.class()).collect();
        assert_eq!(collected, vec![InstrClass::Integer, InstrClass::FpAdd]);
    }

    #[test]
    fn stats_count_classes_and_branches() {
        let t = VecTrace::from_iter([
            DynInstr::op(Addr::new(0), InstrClass::Integer),
            DynInstr::load(Addr::new(4), 0x100),
            cond(8, true, 0x20),
            cond(12, false, 0x20),
            ijmp(16, 0x40),
        ]);
        let s = t.stats();
        assert_eq!(s.instructions(), 5);
        assert_eq!(s.class_count(InstrClass::Integer), 1);
        assert_eq!(s.class_count(InstrClass::Load), 1);
        assert_eq!(s.branches(), 3);
        assert_eq!(s.branch_count(BranchClass::CondDirect), 2);
        assert_eq!(s.taken_conditional(), 1);
        assert_eq!(s.indirect_jumps(), 1);
        assert!((s.indirect_jump_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn returns_do_not_count_as_target_cache_jumps() {
        let t = VecTrace::from_iter([DynInstr::branch(
            Addr::new(0),
            BranchExec::taken(BranchClass::Return, Addr::new(0x40)),
        )]);
        let s = t.stats();
        assert_eq!(s.indirect_jumps(), 0);
        assert_eq!(s.static_indirect_jumps(), 0);
    }

    #[test]
    fn census_tracks_distinct_targets_per_site() {
        let t = VecTrace::from_iter([
            ijmp(0x100, 0x200),
            ijmp(0x100, 0x300),
            ijmp(0x100, 0x200),
            ijmp(0x900, 0x400),
        ]);
        let s = t.stats();
        assert_eq!(s.static_indirect_jumps(), 2);
        let c = &s.indirect_jump_census()[&Addr::new(0x100)];
        assert_eq!(c.executions, 3);
        assert_eq!(c.distinct_targets(), 2);
        assert_eq!(c.targets[&Addr::new(0x200)], 2);
    }

    #[test]
    fn histogram_buckets_and_cap() {
        // site A: 1 target, site B: 2 targets, site C: 5 targets (cap 3 -> >=3 bucket)
        let t = VecTrace::from_iter([
            ijmp(0x0, 0x10),
            ijmp(0x4, 0x10),
            ijmp(0x4, 0x20),
            ijmp(0x8, 0x10),
            ijmp(0x8, 0x20),
            ijmp(0x8, 0x30),
            ijmp(0x8, 0x40),
            ijmp(0x8, 0x50),
        ]);
        let s = t.stats();
        assert_eq!(s.targets_per_jump_histogram(3), vec![1, 1, 1]);
        let dyn_hist = s.dynamic_targets_per_jump_histogram(3);
        assert_eq!(dyn_hist, vec![1, 2, 5]);
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn histogram_rejects_zero_cap() {
        TraceStats::default().targets_per_jump_histogram(0);
    }

    #[test]
    fn merge_combines_counts() {
        let a = VecTrace::from_iter([ijmp(0x0, 0x10), cond(4, true, 0x20)]).stats();
        let b = VecTrace::from_iter([ijmp(0x0, 0x20)]).stats();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.instructions(), 3);
        assert_eq!(m.indirect_jumps(), 2);
        assert_eq!(
            m.indirect_jump_census()[&Addr::new(0x0)].distinct_targets(),
            2
        );
    }

    #[test]
    fn trace_trait_replays_vec_traces() {
        let t = VecTrace::from_iter([ijmp(0x100, 0x200), cond(0x104, true, 0x40)]);
        let replayed: VecTrace = t.replay().collect();
        assert_eq!(replayed, t);
        assert_eq!(t.len_hint(), Some(2));
        assert_eq!(t.compute_stats(), t.stats());
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TraceStats::default();
        assert_eq!(s.instructions(), 0);
        assert_eq!(s.indirect_jump_fraction(), 0.0);
        assert_eq!(s.targets_per_jump_histogram(30), vec![0; 30]);
    }
}
