#![warn(missing_docs)]

//! Instruction and branch model substrate for the indirect-jump-prediction
//! workspace.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! reproduction of *Chang, Hao & Patt, "Target Prediction for Indirect
//! Jumps" (ISCA 1997)*:
//!
//! * [`Addr`] — word-aligned instruction addresses,
//! * [`Reg`] — architectural register names,
//! * [`InstrClass`] — the instruction classes of Table 3 of the paper,
//! * [`BranchClass`] — the conditional/unconditional × direct/indirect
//!   branch taxonomy of the paper's introduction,
//! * [`DynInstr`] — one dynamic instruction of an execution trace,
//! * [`trace`] — trace abstractions and whole-trace statistics.
//!
//! # Example
//!
//! ```
//! use sim_isa::{Addr, BranchClass, BranchExec, DynInstr};
//!
//! // A taken indirect jump at 0x1000 landing on 0x2040.
//! let jump = DynInstr::branch(
//!     Addr::new(0x1000),
//!     BranchExec::taken(BranchClass::IndirectJump, Addr::new(0x2040)),
//! );
//! assert!(jump.branch_exec().unwrap().class.is_indirect());
//! assert_eq!(jump.branch_exec().unwrap().next_pc(Addr::new(0x1000)), Addr::new(0x2040));
//! ```

pub mod addr;
pub mod branch;
pub mod class;
pub mod codec;
pub mod instr;
pub mod reg;
pub mod trace;

pub use addr::{is_instr_aligned, Addr};
pub use branch::{BranchClass, BranchExec};
pub use class::InstrClass;
pub use instr::{DynInstr, MemAccess};
pub use reg::Reg;
pub use trace::{Trace, TraceStats, VecTrace};
