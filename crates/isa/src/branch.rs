//! The branch taxonomy of the paper and the dynamic outcome of a branch.

use crate::Addr;
use std::fmt;

/// Branch classes, following the paper's taxonomy.
///
/// "A program's branches can be categorized as conditional or unconditional
/// and direct or indirect" — giving four combinations, of which three occur
/// in practice (conditional-indirect branches are essentially absent from
/// compiled code). Calls and returns are distinguished because the paper
/// treats them specially: returns are predicted by the return address stack
/// and are *not* handled by the target cache, and the Call/ret path-history
/// filter records only them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BranchClass {
    /// Conditional direct branch: statically-known target, taken or not.
    CondDirect,
    /// Unconditional direct jump (always taken, statically-known target).
    UncondDirect,
    /// Direct call (jump-to-subroutine with statically-known target).
    Call,
    /// Indirect call through a register/function pointer.
    IndirectCall,
    /// Subroutine return (an indirect jump handled by the return stack).
    Return,
    /// Indirect jump: dynamically-computed target (switch tables etc.).
    /// This is the branch class the target cache predicts.
    IndirectJump,
}

impl BranchClass {
    /// All branch classes.
    pub const ALL: [BranchClass; 6] = [
        BranchClass::CondDirect,
        BranchClass::UncondDirect,
        BranchClass::Call,
        BranchClass::IndirectCall,
        BranchClass::Return,
        BranchClass::IndirectJump,
    ];

    /// Whether the branch's target is computed at run time.
    #[inline]
    pub const fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchClass::IndirectJump | BranchClass::IndirectCall | BranchClass::Return
        )
    }

    /// Whether the branch's target is encoded in the instruction (the
    /// complement of [`BranchClass::is_indirect`]).
    #[inline]
    pub const fn is_direct(self) -> bool {
        !self.is_indirect()
    }

    /// Whether the branch may fall through (only conditional branches may).
    #[inline]
    pub const fn is_conditional(self) -> bool {
        matches!(self, BranchClass::CondDirect)
    }

    /// Whether the branch pushes a return address (calls of either kind).
    #[inline]
    pub const fn is_call(self) -> bool {
        matches!(self, BranchClass::Call | BranchClass::IndirectCall)
    }

    /// Whether the branch pops the return address stack.
    #[inline]
    pub const fn is_return(self) -> bool {
        matches!(self, BranchClass::Return)
    }

    /// Whether the target cache is responsible for predicting this branch's
    /// target.
    ///
    /// Per the paper: indirect jumps (and indirect calls) are predicted by
    /// the target cache; returns, "although technically indirect jumps, are
    /// not handled with the target cache because they are effectively handled
    /// with the return address stack".
    #[inline]
    pub const fn uses_target_cache(self) -> bool {
        matches!(self, BranchClass::IndirectJump | BranchClass::IndirectCall)
    }

    /// A dense index in `0..6` for per-class statistics arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            BranchClass::CondDirect => 0,
            BranchClass::UncondDirect => 1,
            BranchClass::Call => 2,
            BranchClass::IndirectCall => 3,
            BranchClass::Return => 4,
            BranchClass::IndirectJump => 5,
        }
    }

    /// Short mnemonic used in reports.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchClass::CondDirect => "cond",
            BranchClass::UncondDirect => "jmp",
            BranchClass::Call => "call",
            BranchClass::IndirectCall => "icall",
            BranchClass::Return => "ret",
            BranchClass::IndirectJump => "ijmp",
        }
    }
}

impl fmt::Display for BranchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The dynamic outcome of one executed branch: direction plus the computed
/// target.
///
/// `target` is the address control transfers to *when taken*. For a
/// not-taken conditional branch it still records the would-be taken target
/// (which is what a BTB stores); [`BranchExec::next_pc`] resolves the actual
/// successor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BranchExec {
    /// Which kind of branch this is.
    pub class: BranchClass,
    /// Whether the branch redirected control flow this execution.
    pub taken: bool,
    /// The taken-path target address.
    pub target: Addr,
}

impl BranchExec {
    /// A taken branch of class `class` landing on `target`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a non-conditional class is created as
    /// not-taken via [`BranchExec::new`]; this constructor always sets
    /// `taken`.
    #[inline]
    pub fn taken(class: BranchClass, target: Addr) -> Self {
        BranchExec {
            class,
            taken: true,
            target,
        }
    }

    /// A not-taken conditional branch whose taken-path target would have
    /// been `target`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not conditional: unconditional branches are
    /// always taken.
    #[inline]
    pub fn not_taken(class: BranchClass, target: Addr) -> Self {
        assert!(
            class.is_conditional(),
            "only conditional branches can be not-taken, got {class:?}"
        );
        BranchExec {
            class,
            taken: false,
            target,
        }
    }

    /// General constructor.
    ///
    /// # Panics
    ///
    /// Panics if `taken` is false for a non-conditional class.
    #[inline]
    pub fn new(class: BranchClass, taken: bool, target: Addr) -> Self {
        assert!(
            taken || class.is_conditional(),
            "only conditional branches can be not-taken, got {class:?}"
        );
        BranchExec {
            class,
            taken,
            target,
        }
    }

    /// The address control actually flowed to, given the branch lives at
    /// `pc`: the target if taken, the fall-through otherwise.
    #[inline]
    pub fn next_pc(&self, pc: Addr) -> Addr {
        if self.taken {
            self.target
        } else {
            pc.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_indirectness() {
        assert!(BranchClass::IndirectJump.is_indirect());
        assert!(BranchClass::IndirectCall.is_indirect());
        assert!(BranchClass::Return.is_indirect());
        assert!(!BranchClass::CondDirect.is_indirect());
        assert!(!BranchClass::UncondDirect.is_indirect());
        assert!(!BranchClass::Call.is_indirect());
    }

    #[test]
    fn only_cond_direct_is_conditional() {
        for c in BranchClass::ALL {
            assert_eq!(c.is_conditional(), c == BranchClass::CondDirect);
        }
    }

    #[test]
    fn target_cache_covers_indirect_jumps_and_calls_but_not_returns() {
        assert!(BranchClass::IndirectJump.uses_target_cache());
        assert!(BranchClass::IndirectCall.uses_target_cache());
        assert!(!BranchClass::Return.uses_target_cache());
        assert!(!BranchClass::CondDirect.uses_target_cache());
    }

    #[test]
    fn call_and_return_helpers() {
        assert!(BranchClass::Call.is_call());
        assert!(BranchClass::IndirectCall.is_call());
        assert!(!BranchClass::Return.is_call());
        assert!(BranchClass::Return.is_return());
    }

    #[test]
    fn indices_are_dense_and_in_order() {
        for (i, c) in BranchClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn next_pc_taken_goes_to_target() {
        let b = BranchExec::taken(BranchClass::UncondDirect, Addr::new(0x500));
        assert_eq!(b.next_pc(Addr::new(0x100)), Addr::new(0x500));
    }

    #[test]
    fn next_pc_not_taken_falls_through() {
        let b = BranchExec::not_taken(BranchClass::CondDirect, Addr::new(0x500));
        assert_eq!(b.next_pc(Addr::new(0x100)), Addr::new(0x104));
    }

    #[test]
    #[should_panic(expected = "not-taken")]
    fn unconditional_cannot_be_not_taken() {
        BranchExec::new(BranchClass::IndirectJump, false, Addr::new(0x500));
    }

    #[test]
    #[should_panic(expected = "not-taken")]
    fn not_taken_constructor_rejects_unconditional() {
        BranchExec::not_taken(BranchClass::Return, Addr::new(0x500));
    }
}
