//! Architectural register names.

use std::fmt;

/// Number of architectural registers in the simulated ISA.
///
/// The HPS machine of the paper is modelled with a conventional 32-register
/// integer file; the timing model renames these, so the count only bounds
/// how much parallelism a workload can express.
pub const REG_COUNT: u16 = 32;

/// An architectural register name (`r0`..`r31`).
///
/// Register `r0` is an ordinary register in this ISA (it is *not* hardwired
/// to zero); the workload generators simply treat all registers uniformly.
///
/// # Example
///
/// ```
/// use sim_isa::Reg;
///
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(format!("{r}"), "r5");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(u16);

impl Reg {
    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= REG_COUNT`.
    #[inline]
    pub fn new(index: u16) -> Self {
        assert!(index < REG_COUNT, "register index {index} out of range");
        Reg(index)
    }

    /// Creates a register name from an arbitrary value by wrapping it into
    /// range. Convenient for pseudo-random register assignment in workload
    /// generators.
    #[inline]
    pub fn wrapping(index: u64) -> Self {
        Reg((index % REG_COUNT as u64) as u16)
    }

    /// The register's index in `0..REG_COUNT`.
    #[inline]
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Iterator over every architectural register.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..REG_COUNT).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid_indices() {
        assert_eq!(Reg::new(0).index(), 0);
        assert_eq!(Reg::new(REG_COUNT - 1).index(), REG_COUNT - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        Reg::new(REG_COUNT);
    }

    #[test]
    fn wrapping_maps_into_range() {
        assert_eq!(Reg::wrapping(0).index(), 0);
        assert_eq!(Reg::wrapping(REG_COUNT as u64).index(), 0);
        assert_eq!(Reg::wrapping(REG_COUNT as u64 + 7).index(), 7);
        assert_eq!(
            Reg::wrapping(u64::MAX).index(),
            (u64::MAX % REG_COUNT as u64) as u16
        );
    }

    #[test]
    fn all_enumerates_every_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), REG_COUNT as usize);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Reg::new(17)), "r17");
    }
}
