//! Instruction classes (Table 3 of the paper).

use std::fmt;

/// The instruction classes of Table 3 of the paper, which also defines their
/// execution latencies in the HPS machine model.
///
/// | Class      | Paper description                  |
/// |------------|------------------------------------|
/// | `Integer`  | INT add, sub and logic ops         |
/// | `FpAdd`    | FP add, sub, and convert           |
/// | `Mul`      | FP mul and INT mul                 |
/// | `Div`      | FP div and INT div                 |
/// | `Load`     | memory loads                       |
/// | `Store`    | memory stores                      |
/// | `BitField` | shift and bit testing              |
/// | `Branch`   | control instructions               |
///
/// Latencies live in the timing model's configuration
/// (`hps_uarch::MachineConfig`), not here, so alternative machines can be
/// modelled without touching the ISA.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum InstrClass {
    /// Integer add, subtract, and logic operations.
    Integer,
    /// Floating-point add, subtract, and convert.
    FpAdd,
    /// Integer and floating-point multiply.
    Mul,
    /// Integer and floating-point divide.
    Div,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Shift and bit-field operations.
    BitField,
    /// Control instructions (all branches and jumps).
    Branch,
}

impl InstrClass {
    /// All instruction classes, in Table 3 order.
    pub const ALL: [InstrClass; 8] = [
        InstrClass::Integer,
        InstrClass::FpAdd,
        InstrClass::Mul,
        InstrClass::Div,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::BitField,
        InstrClass::Branch,
    ];

    /// Whether the class accesses memory.
    #[inline]
    pub const fn is_memory(self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }

    /// Whether the class redirects control flow.
    #[inline]
    pub const fn is_control(self) -> bool {
        matches!(self, InstrClass::Branch)
    }

    /// A dense index in `0..8`, useful for per-class statistics arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            InstrClass::Integer => 0,
            InstrClass::FpAdd => 1,
            InstrClass::Mul => 2,
            InstrClass::Div => 3,
            InstrClass::Load => 4,
            InstrClass::Store => 5,
            InstrClass::BitField => 6,
            InstrClass::Branch => 7,
        }
    }

    /// Short mnemonic used in reports.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            InstrClass::Integer => "int",
            InstrClass::FpAdd => "fadd",
            InstrClass::Mul => "mul",
            InstrClass::Div => "div",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::BitField => "bit",
            InstrClass::Branch => "br",
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_each_class_once_in_index_order() {
        assert_eq!(InstrClass::ALL.len(), 8);
        for (i, c) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn memory_classes() {
        assert!(InstrClass::Load.is_memory());
        assert!(InstrClass::Store.is_memory());
        assert!(!InstrClass::Integer.is_memory());
        assert!(!InstrClass::Branch.is_memory());
    }

    #[test]
    fn control_class() {
        assert!(InstrClass::Branch.is_control());
        assert!(!InstrClass::Load.is_control());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in InstrClass::ALL {
            assert!(seen.insert(c.mnemonic()), "duplicate mnemonic {}", c);
        }
    }
}
