//! Dynamic instruction records.

use crate::{Addr, BranchExec, InstrClass, Reg};
use std::fmt;

/// A dynamic memory access made by a load or store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemAccess {
    /// The byte address accessed. Need not be instruction-aligned.
    pub addr: u64,
}

impl MemAccess {
    /// Creates a memory access record.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        MemAccess { addr }
    }
}

/// One dynamic instruction of an execution trace.
///
/// A `DynInstr` carries everything the predictors and the timing model need:
/// the fetch address, the instruction class (for functional-unit latency),
/// register operands (for the data-flow schedule), the data address of a
/// load/store (for the data cache), and — for control instructions — the
/// resolved [`BranchExec`] outcome.
///
/// Invariants, enforced by the constructors:
/// * `class == Branch` ⟺ `branch.is_some()`
/// * `class ∈ {Load, Store}` ⟺ `mem.is_some()`
///
/// # Example
///
/// ```
/// use sim_isa::{Addr, DynInstr, InstrClass, Reg};
///
/// let add = DynInstr::op(Addr::new(0x100), InstrClass::Integer)
///     .with_srcs(Some(Reg::new(1)), Some(Reg::new(2)))
///     .with_dst(Reg::new(3));
/// assert_eq!(add.class(), InstrClass::Integer);
/// assert!(add.branch_exec().is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DynInstr {
    pc: Addr,
    class: InstrClass,
    srcs: [Option<Reg>; 2],
    dst: Option<Reg>,
    mem: Option<MemAccess>,
    branch: Option<BranchExec>,
}

impl DynInstr {
    /// Creates a non-memory, non-branch operation of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is `Branch`, `Load`, or `Store`; use
    /// [`DynInstr::branch`](DynInstr::branch()) /
    /// [`DynInstr::load`] / [`DynInstr::store`] for those.
    pub fn op(pc: Addr, class: InstrClass) -> Self {
        assert!(
            !class.is_control() && !class.is_memory(),
            "use the dedicated constructor for {class:?}"
        );
        DynInstr {
            pc,
            class,
            srcs: [None, None],
            dst: None,
            mem: None,
            branch: None,
        }
    }

    /// Creates a load from `mem_addr`.
    pub fn load(pc: Addr, mem_addr: u64) -> Self {
        DynInstr {
            pc,
            class: InstrClass::Load,
            srcs: [None, None],
            dst: None,
            mem: Some(MemAccess::new(mem_addr)),
            branch: None,
        }
    }

    /// Creates a store to `mem_addr`.
    pub fn store(pc: Addr, mem_addr: u64) -> Self {
        DynInstr {
            pc,
            class: InstrClass::Store,
            srcs: [None, None],
            dst: None,
            mem: Some(MemAccess::new(mem_addr)),
            branch: None,
        }
    }

    /// Creates a control instruction with the given resolved outcome.
    pub fn branch(pc: Addr, exec: BranchExec) -> Self {
        DynInstr {
            pc,
            class: InstrClass::Branch,
            srcs: [None, None],
            dst: None,
            mem: None,
            branch: Some(exec),
        }
    }

    /// Sets the source registers (builder style).
    #[must_use]
    pub fn with_srcs(mut self, a: Option<Reg>, b: Option<Reg>) -> Self {
        self.srcs = [a, b];
        self
    }

    /// Sets the destination register (builder style).
    #[must_use]
    pub fn with_dst(mut self, dst: Reg) -> Self {
        self.dst = Some(dst);
        self
    }

    /// The instruction's fetch address.
    #[inline]
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// The instruction's class.
    #[inline]
    pub fn class(&self) -> InstrClass {
        self.class
    }

    /// Source register operands (up to two).
    #[inline]
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        self.srcs
    }

    /// Destination register, if any.
    #[inline]
    pub fn dst(&self) -> Option<Reg> {
        self.dst
    }

    /// Memory access, if this is a load or store.
    #[inline]
    pub fn mem(&self) -> Option<MemAccess> {
        self.mem
    }

    /// Resolved branch outcome, if this is a control instruction.
    #[inline]
    pub fn branch_exec(&self) -> Option<BranchExec> {
        self.branch
    }

    /// The address of the next instruction on the executed path.
    #[inline]
    pub fn next_pc(&self) -> Addr {
        match self.branch {
            Some(b) => b.next_pc(self.pc),
            None => self.pc.next(),
        }
    }
}

impl fmt::Debug for DynInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.pc, self.class)?;
        if let Some(b) = &self.branch {
            write!(
                f,
                " {} {} -> {}",
                b.class,
                if b.taken { "T" } else { "N" },
                b.target
            )?;
        }
        if let Some(m) = &self.mem {
            write!(f, " [{:#x}]", m.addr)?;
        }
        if let Some(d) = self.dst {
            write!(f, " => {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchClass;

    #[test]
    fn op_constructor_sets_class() {
        let i = DynInstr::op(Addr::new(0x10), InstrClass::Mul);
        assert_eq!(i.class(), InstrClass::Mul);
        assert!(i.mem().is_none());
        assert!(i.branch_exec().is_none());
        assert_eq!(i.next_pc(), Addr::new(0x14));
    }

    #[test]
    #[should_panic(expected = "dedicated constructor")]
    fn op_rejects_branch_class() {
        DynInstr::op(Addr::new(0), InstrClass::Branch);
    }

    #[test]
    #[should_panic(expected = "dedicated constructor")]
    fn op_rejects_load_class() {
        DynInstr::op(Addr::new(0), InstrClass::Load);
    }

    #[test]
    fn load_and_store_carry_memory() {
        let l = DynInstr::load(Addr::new(0x20), 0xdead);
        assert_eq!(l.class(), InstrClass::Load);
        assert_eq!(l.mem().unwrap().addr, 0xdead);
        let s = DynInstr::store(Addr::new(0x24), 0xbeef);
        assert_eq!(s.class(), InstrClass::Store);
        assert_eq!(s.mem().unwrap().addr, 0xbeef);
    }

    #[test]
    fn branch_next_pc_follows_outcome() {
        let t = DynInstr::branch(
            Addr::new(0x100),
            BranchExec::taken(BranchClass::IndirectJump, Addr::new(0x900)),
        );
        assert_eq!(t.next_pc(), Addr::new(0x900));
        let n = DynInstr::branch(
            Addr::new(0x100),
            BranchExec::not_taken(BranchClass::CondDirect, Addr::new(0x900)),
        );
        assert_eq!(n.next_pc(), Addr::new(0x104));
    }

    #[test]
    fn builder_attaches_operands() {
        let i = DynInstr::op(Addr::new(0), InstrClass::Integer)
            .with_srcs(Some(Reg::new(1)), None)
            .with_dst(Reg::new(2));
        assert_eq!(i.srcs()[0], Some(Reg::new(1)));
        assert_eq!(i.srcs()[1], None);
        assert_eq!(i.dst(), Some(Reg::new(2)));
    }

    #[test]
    fn debug_output_mentions_branch_details() {
        let t = DynInstr::branch(
            Addr::new(0x100),
            BranchExec::taken(BranchClass::Call, Addr::new(0x200)),
        );
        let s = format!("{t:?}");
        assert!(s.contains("call"), "{s}");
        assert!(s.contains('T'), "{s}");
    }
}
