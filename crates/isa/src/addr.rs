//! Word-aligned instruction addresses.

use std::fmt;
use std::ops::{Add, Sub};

/// The size, in bytes, of every instruction in the simulated ISA.
///
/// The paper's machine fetches fixed-width instructions aligned on word
/// boundaries; Section 4.2.2 notes that "the least significant bits from each
/// address are ignored because instructions are aligned on word boundaries".
pub const INSTR_BYTES: u64 = 4;

/// Whether a raw byte address sits on an instruction-word boundary.
///
/// [`Addr`]'s constructor rounds down, so every `Addr` passes this by
/// construction; the free function exists for validating addresses that
/// arrive as raw integers (layout tables, serialized traces) before they
/// are laundered through `Addr::new`.
#[inline]
pub const fn is_instr_aligned(raw: u64) -> bool {
    raw.is_multiple_of(INSTR_BYTES)
}

/// A word-aligned instruction address.
///
/// `Addr` is a newtype over `u64`. Constructing an `Addr` rounds the raw
/// value down to the nearest instruction boundary, so every `Addr` is
/// guaranteed word-aligned — predictors may therefore discard the two low
/// bits without checking.
///
/// # Example
///
/// ```
/// use sim_isa::Addr;
///
/// let a = Addr::new(0x1003); // rounds down to the containing word
/// assert_eq!(a.raw(), 0x1000);
/// assert_eq!(a.next().raw(), 0x1004);
/// assert_eq!(a.word_index(), 0x400);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The zero address. Used as a sentinel "before the program" value.
    pub const NULL: Addr = Addr(0);

    /// Creates an address, rounding `raw` down to the instruction boundary.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw & !(INSTR_BYTES - 1))
    }

    /// Creates the address of the `index`-th instruction word.
    #[inline]
    pub const fn from_word_index(index: u64) -> Self {
        Addr(index * INSTR_BYTES)
    }

    /// The raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The address divided by the instruction size: a dense index with the
    /// alignment bits already stripped, which is what predictors hash.
    #[inline]
    pub const fn word_index(self) -> u64 {
        self.0 / INSTR_BYTES
    }

    /// The address of the next sequential instruction (the fall-through
    /// address of an instruction located at `self`).
    #[inline]
    pub const fn next(self) -> Self {
        Addr(self.0 + INSTR_BYTES)
    }

    /// The address `n` instructions after `self`.
    #[inline]
    pub const fn offset(self, n: u64) -> Self {
        Addr(self.0 + n * INSTR_BYTES)
    }

    /// Extracts `count` bits of the word index starting at bit `lo`.
    ///
    /// This is the primitive used by path-history registers when recording
    /// "the least significant bits from each target" (paper Section 4.2.2),
    /// or higher slices of the target for the address-bit-selection study of
    /// Table 5. Bit 0 is the lowest bit *above* the alignment bits.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 64.
    #[inline]
    pub fn bits(self, lo: u32, count: u32) -> u64 {
        assert!((1..=64).contains(&count), "bit count must be in 1..=64");
        let shifted = self.word_index() >> lo;
        if count == 64 {
            shifted
        } else {
            shifted & ((1u64 << count) - 1)
        }
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.raw()
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    /// Adds `n` *instructions* (not bytes).
    fn add(self, n: u64) -> Addr {
        self.offset(n)
    }
}

impl Sub for Addr {
    type Output = i64;

    /// Distance in *instructions* from `rhs` to `self`.
    fn sub(self, rhs: Addr) -> i64 {
        (self.0 as i64 - rhs.0 as i64) / INSTR_BYTES as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rounds_down_to_word() {
        assert_eq!(Addr::new(0x1000).raw(), 0x1000);
        assert_eq!(Addr::new(0x1001).raw(), 0x1000);
        assert_eq!(Addr::new(0x1002).raw(), 0x1000);
        assert_eq!(Addr::new(0x1003).raw(), 0x1000);
        assert_eq!(Addr::new(0x1004).raw(), 0x1004);
    }

    #[test]
    fn word_index_strips_alignment() {
        assert_eq!(Addr::new(0).word_index(), 0);
        assert_eq!(Addr::new(4).word_index(), 1);
        assert_eq!(Addr::new(0x100).word_index(), 0x40);
        assert_eq!(Addr::from_word_index(77).word_index(), 77);
    }

    #[test]
    fn next_and_offset_step_by_instruction() {
        let a = Addr::new(0x2000);
        assert_eq!(a.next(), Addr::new(0x2004));
        assert_eq!(a.offset(3), Addr::new(0x200c));
        assert_eq!(a + 3, Addr::new(0x200c));
    }

    #[test]
    fn sub_measures_instruction_distance() {
        assert_eq!(Addr::new(0x2010) - Addr::new(0x2000), 4);
        assert_eq!(Addr::new(0x2000) - Addr::new(0x2010), -4);
    }

    #[test]
    fn bits_extract_word_index_slices() {
        let a = Addr::from_word_index(0b1011_0110);
        assert_eq!(a.bits(0, 1), 0);
        assert_eq!(a.bits(1, 1), 1);
        assert_eq!(a.bits(0, 4), 0b0110);
        assert_eq!(a.bits(2, 3), 0b101);
        assert_eq!(a.bits(4, 4), 0b1011);
    }

    #[test]
    fn bits_full_width() {
        let a = Addr::from_word_index(u64::MAX / INSTR_BYTES);
        assert_eq!(a.bits(0, 64), a.word_index());
    }

    #[test]
    #[should_panic(expected = "bit count")]
    fn bits_zero_count_panics() {
        Addr::new(0).bits(0, 0);
    }

    #[test]
    fn display_and_debug() {
        let a = Addr::new(0x1234 & !3);
        assert_eq!(format!("{a}"), "0x00001234");
        assert_eq!(format!("{a:?}"), "Addr(0x1234)");
        assert_eq!(format!("{a:x}"), "1234");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(Addr::new(0x1000) < Addr::new(0x1004));
        let mut v = vec![Addr::new(8), Addr::new(0), Addr::new(4)];
        v.sort();
        assert_eq!(v, vec![Addr::new(0), Addr::new(4), Addr::new(8)]);
    }
}
