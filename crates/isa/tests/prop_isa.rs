//! Property-based tests for the ISA substrate.

use proptest::prelude::*;
use sim_isa::{Addr, BranchClass, BranchExec, DynInstr, InstrClass, Reg, VecTrace};

proptest! {
    #[test]
    fn addr_is_always_word_aligned(raw in any::<u64>()) {
        let a = Addr::new(raw);
        prop_assert_eq!(a.raw() % 4, 0);
        prop_assert!(a.raw() <= raw);
        prop_assert!(raw - a.raw() < 4);
    }

    #[test]
    fn addr_word_index_roundtrip(idx in 0u64..(u64::MAX / 4)) {
        let a = Addr::from_word_index(idx);
        prop_assert_eq!(a.word_index(), idx);
    }

    #[test]
    fn addr_bits_match_manual_shift(idx in any::<u64>(), lo in 0u32..32, count in 1u32..32) {
        let a = Addr::from_word_index(idx & (u64::MAX / 4));
        let expect = (a.word_index() >> lo) & ((1u64 << count) - 1);
        prop_assert_eq!(a.bits(lo, count), expect);
    }

    #[test]
    fn reg_wrapping_is_always_valid(x in any::<u64>()) {
        let r = Reg::wrapping(x);
        prop_assert!(r.index() < sim_isa::reg::REG_COUNT);
    }

    #[test]
    fn branch_next_pc_is_target_or_fallthrough(
        pc in 0u64..1_000_000,
        target in 0u64..1_000_000,
        taken in any::<bool>(),
    ) {
        let pc = Addr::new(pc * 4);
        let target = Addr::new(target * 4);
        let class = if taken { BranchClass::UncondDirect } else { BranchClass::CondDirect };
        let b = BranchExec::new(class, taken, target);
        let next = b.next_pc(pc);
        if taken {
            prop_assert_eq!(next, target);
        } else {
            prop_assert_eq!(next, pc.next());
        }
    }

    #[test]
    fn stats_instruction_count_matches_len(n in 0usize..200) {
        let trace: VecTrace = (0..n)
            .map(|i| DynInstr::op(Addr::from_word_index(i as u64), InstrClass::Integer))
            .collect();
        prop_assert_eq!(trace.stats().instructions(), n as u64);
    }

    #[test]
    fn histogram_total_equals_static_sites(
        sites in proptest::collection::vec(1usize..40, 0..20),
    ) {
        // Build a trace where site i jumps to `sites[i]` distinct targets.
        let mut trace = VecTrace::new();
        for (i, &ntargets) in sites.iter().enumerate() {
            let pc = Addr::from_word_index(1000 + i as u64);
            for t in 0..ntargets {
                trace.push(DynInstr::branch(
                    pc,
                    BranchExec::taken(
                        BranchClass::IndirectJump,
                        Addr::from_word_index(5000 + (i * 100 + t) as u64),
                    ),
                ));
            }
        }
        let stats = trace.stats();
        let hist = stats.targets_per_jump_histogram(30);
        let total: u64 = hist.iter().sum();
        prop_assert_eq!(total, sites.len() as u64);
        // Dynamic histogram mass must equal dynamic indirect-jump count.
        let dyn_hist = stats.dynamic_targets_per_jump_histogram(30);
        prop_assert_eq!(dyn_hist.iter().sum::<u64>(), stats.indirect_jumps());
    }

    #[test]
    fn merge_is_equivalent_to_concatenation(split in 0usize..50, n in 0usize..50) {
        let n = n.max(split);
        let instrs: Vec<DynInstr> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    DynInstr::branch(
                        Addr::from_word_index((i % 7) as u64),
                        BranchExec::taken(
                            BranchClass::IndirectJump,
                            Addr::from_word_index((i % 5) as u64 + 100),
                        ),
                    )
                } else {
                    DynInstr::op(Addr::from_word_index(i as u64), InstrClass::Integer)
                }
            })
            .collect();
        let whole: VecTrace = instrs.iter().copied().collect();
        let left: VecTrace = instrs[..split].iter().copied().collect();
        let right: VecTrace = instrs[split..].iter().copied().collect();
        let mut merged = left.stats();
        merged.merge(&right.stats());
        let whole = whole.stats();
        prop_assert_eq!(merged.instructions(), whole.instructions());
        prop_assert_eq!(merged.indirect_jumps(), whole.indirect_jumps());
        prop_assert_eq!(merged.targets_per_jump_histogram(30), whole.targets_per_jump_histogram(30));
    }
}

// --- codec round-trip properties ------------------------------------

fn arb_instr() -> impl Strategy<Value = DynInstr> {
    let reg = proptest::option::of(0u16..32).prop_map(|r| r.map(Reg::new));
    let pc = (0u64..1 << 40).prop_map(Addr::from_word_index);
    prop_oneof![
        // Plain ops
        (
            pc.clone(),
            prop::sample::select(vec![
                InstrClass::Integer,
                InstrClass::FpAdd,
                InstrClass::Mul,
                InstrClass::Div,
                InstrClass::BitField,
            ]),
            reg.clone(),
            reg.clone(),
            reg.clone(),
        )
            .prop_map(|(pc, class, a, b, d)| {
                let mut i = DynInstr::op(pc, class).with_srcs(a, b);
                if let Some(d) = d {
                    i = i.with_dst(d);
                }
                i
            }),
        // Memory ops
        (pc.clone(), any::<u64>(), any::<bool>(), reg.clone()).prop_map(|(pc, addr, load, r)| {
            let mut i = if load {
                DynInstr::load(pc, addr)
            } else {
                DynInstr::store(pc, addr)
            };
            if let Some(r) = r {
                i = if load {
                    i.with_dst(r)
                } else {
                    i.with_srcs(Some(r), None)
                };
            }
            i
        }),
        // Branches
        (
            pc.clone(),
            (0u64..1 << 40).prop_map(Addr::from_word_index),
            prop::sample::select(BranchClass::ALL.to_vec()),
            any::<bool>(),
        )
            .prop_map(|(pc, target, class, taken)| {
                let taken = taken || !class.is_conditional();
                DynInstr::branch(pc, BranchExec::new(class, taken, target))
            }),
    ]
}

proptest! {
    #[test]
    fn codec_roundtrip_preserves_arbitrary_traces(
        instrs in proptest::collection::vec(arb_instr(), 0..200),
    ) {
        use sim_isa::codec::{read_trace, write_trace};
        let trace: VecTrace = instrs.into_iter().collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let decoded = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(decoded, trace);
    }

    #[test]
    fn codec_output_is_deterministic(
        instrs in proptest::collection::vec(arb_instr(), 0..100),
    ) {
        use sim_isa::codec::write_trace;
        let trace: VecTrace = instrs.into_iter().collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_trace(&mut a, &trace).unwrap();
        write_trace(&mut b, &trace).unwrap();
        prop_assert_eq!(a, b);
    }
}
