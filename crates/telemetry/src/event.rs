//! Structured events: what happened, per dynamic branch, when you need
//! more than a counter.
//!
//! The hot path records [`Event`]s into a bounded [`EventRing`]; once the
//! ring is full the *oldest* events are dropped (and counted), so a
//! misbehaving run degrades to "recent history plus a drop count" instead
//! of unbounded memory. A shared, clonable [`EventSink`] wraps the ring
//! for recording from inside simulator structures, and
//! [`write_jsonl`] renders drained events as one JSON object per line.

use crate::json::{obj, Json};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// A structured telemetry event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// One mispredicted branch, with everything the front end knew.
    Mispredict {
        /// Address of the branch instruction.
        pc: u64,
        /// Branch class mnemonic (`ijmp`, `icall`, `cond`, `ret`, …).
        class: &'static str,
        /// The next-fetch address the front end predicted.
        predicted: u64,
        /// The next-fetch address the branch actually produced.
        actual: u64,
        /// The history-register value used to index the target cache
        /// (0 when no history source is configured).
        history: u64,
        /// Which predictor supplied the used prediction (see
        /// `target_cache::harness` for the vocabulary: `btb`,
        /// `target-cache`, `ras`, `cascade-btb`, `fallthrough`, …).
        source: &'static str,
    },
    /// A named phase of a run began (paired with [`Event::PhaseEnd`]).
    PhaseStart {
        /// Phase name (`workload-gen`, `harness-replay`, `uarch-sim`).
        phase: &'static str,
    },
    /// A named phase of a run finished.
    PhaseEnd {
        /// Phase name.
        phase: &'static str,
        /// Wall-clock nanoseconds the phase took.
        wall_ns: u64,
    },
}

impl Event {
    /// The event as a JSON object (one JSONL line, without the newline).
    /// `run` labels which benchmark/run produced it.
    pub fn to_json(&self, run: &str) -> Json {
        match *self {
            Event::Mispredict {
                pc,
                class,
                predicted,
                actual,
                history,
                source,
            } => obj([
                ("event", Json::from("mispredict")),
                ("run", Json::from(run)),
                ("pc", Json::from(pc)),
                ("class", Json::from(class)),
                ("predicted", Json::from(predicted)),
                ("actual", Json::from(actual)),
                ("history", Json::from(history)),
                ("source", Json::from(source)),
            ]),
            Event::PhaseStart { phase } => obj([
                ("event", Json::from("phase-start")),
                ("run", Json::from(run)),
                ("phase", Json::from(phase)),
            ]),
            Event::PhaseEnd { phase, wall_ns } => obj([
                ("event", Json::from("phase-end")),
                ("run", Json::from(run)),
                ("phase", Json::from(phase)),
                ("wall_ns", Json::from(wall_ns)),
            ]),
        }
    }
}

/// Default ring capacity: enough for every mispredict of a quick-scale
/// benchmark run with room to spare, small enough to never matter.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 17;

/// A bounded event buffer that drops its oldest entries when full.
#[derive(Debug)]
pub struct EventRing {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be nonzero");
        EventRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all buffered events, oldest first. The drop
    /// count is left untouched (it describes the whole run).
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::new(DEFAULT_RING_CAPACITY)
    }
}

/// A shared handle to an [`EventRing`], clonable into any structure that
/// wants to record events.
#[derive(Clone, Debug, Default)]
pub struct EventSink(Arc<Mutex<EventRing>>);

impl EventSink {
    /// Creates a sink over a fresh default-capacity ring.
    pub fn new() -> Self {
        EventSink::default()
    }

    /// Creates a sink over a ring of the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventSink(Arc::new(Mutex::new(EventRing::new(capacity))))
    }

    /// Records one event.
    pub fn record(&self, event: Event) {
        self.0.lock().expect("event sink poisoned").push(event);
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.0.lock().expect("event sink poisoned").drain()
    }

    /// Events evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.0.lock().expect("event sink poisoned").dropped()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.0.lock().expect("event sink poisoned").len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Writes events as JSONL (one `{...}` object per line) labelled with the
/// run that produced them.
pub fn write_jsonl<W: Write>(out: &mut W, run: &str, events: &[Event]) -> io::Result<()> {
    for e in events {
        writeln!(out, "{}", e.to_json(run))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn mp(pc: u64) -> Event {
        Event::Mispredict {
            pc,
            class: "ijmp",
            predicted: 0x900,
            actual: 0xA00,
            history: 0b1011,
            source: "target-cache",
        }
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut ring = EventRing::new(3);
        for pc in 0..5u64 {
            ring.push(mp(pc));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let drained = ring.drain();
        assert_eq!(drained.len(), 3);
        assert!(matches!(drained[0], Event::Mispredict { pc: 2, .. }));
        assert!(matches!(drained[2], Event::Mispredict { pc: 4, .. }));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2, "drain keeps the drop count");
    }

    #[test]
    fn sink_is_shared_across_clones() {
        let sink = EventSink::new();
        let clone = sink.clone();
        clone.record(mp(1));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.drain().len(), 1);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let mut out = Vec::new();
        write_jsonl(
            &mut out,
            "perl",
            &[
                mp(0x40),
                Event::PhaseStart {
                    phase: "harness-replay",
                },
                Event::PhaseEnd {
                    phase: "harness-replay",
                    wall_ns: 12_345,
                },
            ],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let first = parse(lines[0]).expect("line parses");
        assert_eq!(first.get("event").unwrap().as_str(), Some("mispredict"));
        assert_eq!(first.get("run").unwrap().as_str(), Some("perl"));
        assert_eq!(first.get("pc").unwrap().as_u64(), Some(0x40));
        assert_eq!(first.get("source").unwrap().as_str(), Some("target-cache"));
        let last = parse(lines[2]).expect("line parses");
        assert_eq!(last.get("wall_ns").unwrap().as_u64(), Some(12_345));
    }
}
