//! Correlation identifiers joining every artifact of one run.
//!
//! A [`TraceId`] is minted once per campaign (or per `repro-serve`
//! request) and then written into every artifact the run produces — the
//! progress stream's `campaign-started` event, the journal header, the
//! run manifest, the flight-recorder dump, the Chrome trace export, and
//! the `/status` response — so one grep over `results/` joins all the
//! silos for a run:
//!
//! ```text
//! $ grep -r tr-9f2ab04c71d3e586 results/
//! results/progress/chaos.progress.jsonl:{"event":"campaign-started","trace_id":"tr-9f2ab04c71d3e586",...}
//! results/journal/chaos.jsonl:{"journal":1,"trace_id":"tr-9f2ab04c71d3e586",...}
//! results/flightrec/chaos.flight.jsonl:{"flight":1,"trace_id":"tr-9f2ab04c71d3e586",...}
//! ```
//!
//! Ids are minted from a SplitMix64 stream seeded with the wall clock,
//! the process id, and a process-global counter: unique across
//! processes and across mints within one process, with no RNG
//! dependency. [`SpanId`] is the short per-unit form (one cell attempt,
//! one HTTP request) carried inside a trace.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A campaign/request-scoped correlation id: `tr-` + 16 hex digits.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

/// A unit-of-work id inside a trace: `sp-` + 8 hex digits.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u32);

/// Process-global mint counter: two ids minted in the same nanosecond
/// still differ.
static MINTED: AtomicU64 = AtomicU64::new(0);

/// One step of SplitMix64 — the same mixer the jobs pool uses for
/// backoff jitter, chosen for full 64-bit avalanche with zero state.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn entropy() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seq = MINTED.fetch_add(1, Ordering::Relaxed);
    // Mix each source through its own SplitMix64 step so a broken clock
    // (nanos == 0) still yields distinct ids from the counter alone.
    splitmix64(nanos) ^ splitmix64(u64::from(std::process::id()).rotate_left(32)) ^ splitmix64(seq)
}

impl TraceId {
    /// Mints a fresh id, unique across processes and mints.
    pub fn mint() -> TraceId {
        TraceId(entropy())
    }

    /// Parses the canonical `tr-<16 hex>` form (as produced by
    /// `Display`); rejects anything else so a truncated id in an
    /// artifact fails loudly instead of aliasing another run.
    pub fn parse(text: &str) -> Result<TraceId, String> {
        let hex = text
            .strip_prefix("tr-")
            .ok_or_else(|| format!("trace id {text:?} does not start with \"tr-\""))?;
        if hex.len() != 16 {
            return Err(format!(
                "trace id {text:?} must be tr- followed by 16 hex digits"
            ));
        }
        u64::from_str_radix(hex, 16)
            .map(TraceId)
            .map_err(|_| format!("trace id {text:?} has non-hex digits"))
    }

    /// The raw 64-bit value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tr-{:016x}", self.0)
    }
}

impl SpanId {
    /// Mints a fresh short id.
    pub fn mint() -> SpanId {
        SpanId(entropy() as u32)
    }

    /// Parses the canonical `sp-<8 hex>` form.
    pub fn parse(text: &str) -> Result<SpanId, String> {
        let hex = text
            .strip_prefix("sp-")
            .ok_or_else(|| format!("span id {text:?} does not start with \"sp-\""))?;
        if hex.len() != 8 {
            return Err(format!(
                "span id {text:?} must be sp- followed by 8 hex digits"
            ));
        }
        u32::from_str_radix(hex, 16)
            .map(SpanId)
            .map_err(|_| format!("span id {text:?} has non-hex digits"))
    }

    /// The raw 32-bit value.
    pub fn value(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sp-{:08x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_unique_across_calls() {
        let ids: std::collections::BTreeSet<String> =
            (0..1000).map(|_| TraceId::mint().to_string()).collect();
        assert_eq!(ids.len(), 1000, "collision within one process");
    }

    #[test]
    fn display_parse_round_trip() {
        let id = TraceId::mint();
        let text = id.to_string();
        assert!(text.starts_with("tr-"), "{text}");
        assert_eq!(text.len(), 3 + 16, "{text}");
        assert_eq!(TraceId::parse(&text), Ok(id));

        let sp = SpanId::mint();
        let text = sp.to_string();
        assert!(text.starts_with("sp-"), "{text}");
        assert_eq!(text.len(), 3 + 8, "{text}");
        assert_eq!(SpanId::parse(&text), Ok(sp));
    }

    #[test]
    fn parse_rejects_malformed_ids() {
        for bad in [
            "",
            "tr-",
            "tr-123",               // too short
            "tr-00000000000000000", // too long
            "tr-zzzzzzzzzzzzzzzz",  // non-hex
            "sp-0011223344556677",  // wrong prefix for the length
            "9f2ab04c71d3e586",     // no prefix
        ] {
            assert!(TraceId::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(SpanId::parse("sp-123").is_err());
        assert!(SpanId::parse("tr-00112233").is_err());
    }

    #[test]
    fn parse_is_exact_inverse_of_display() {
        let id = TraceId(0x9f2a_b04c_71d3_e586);
        assert_eq!(id.to_string(), "tr-9f2ab04c71d3e586");
        assert_eq!(TraceId::parse("tr-9f2ab04c71d3e586"), Ok(id));
        let sp = SpanId(0x0011_2233);
        assert_eq!(sp.to_string(), "sp-00112233");
        assert_eq!(SpanId::parse("sp-00112233"), Ok(sp));
    }

    #[test]
    fn zero_entropy_sources_still_mint_distinct_ids() {
        // Even if the clock were stuck, the mint counter alone must
        // separate consecutive ids.
        let a = splitmix64(0) ^ splitmix64(1);
        let b = splitmix64(0) ^ splitmix64(2);
        assert_ne!(a, b);
    }
}
