//! # sim-telemetry
//!
//! Zero-dependency observability for the indirect-jump-prediction
//! workspace: metrics, event tracing, span timing, and run manifests.
//!
//! The crate is deliberately `std`-only so every simulator crate can
//! depend on it without dragging anything external into the build. It
//! provides four instruments:
//!
//! - [`MetricsRegistry`] — named [`Counter`]s and log2-bucketed
//!   [`Histogram`]s behind `Arc`-backed handles; one relaxed atomic add
//!   per event, safe on simulator hot paths.
//! - [`EventSink`] / [`Event`] — a bounded ring of structured events
//!   (per-branch mispredict records and phase markers), serialized as
//!   JSONL by [`write_jsonl`].
//! - [`SpanRegistry`] — hierarchical wall-clock timing scopes with
//!   `Drop` guards: nested spans build `parent;child` paths with
//!   self-vs-total accounting and a folded-stack (flamegraph) dump.
//! - [`PhaseTimer`] / [`HotProfiler`] — lock-free per-operation timers
//!   for the prediction hot loop, enabled by `REPRO_PROF=full` (see
//!   [`ProfMode`]).
//! - [`RunManifest`] — the per-invocation JSON document tying it all
//!   together: configuration snapshot, per-benchmark counters copied from
//!   the simulator's own statistics, span totals, and the metrics
//!   snapshot.
//! - [`TraceId`] / [`SpanId`] — correlation ids minted once per
//!   campaign and stamped into every artifact, so one grep joins the
//!   progress stream, journal, manifest, flight dump, and trace export.
//! - [`FlightRecorder`] — the always-on bounded ring of recent
//!   structured events, dumped atomically on panic, cell failure,
//!   deadline sweep, or drain ([`flight`]).
//! - [`TraceCollector`] — Chrome trace-event export of cell lifecycles
//!   and span phases, loadable in Perfetto ([`traceviz`]).
//!
//! All JSON is hand-rolled ([`json`]) — escaping, a value tree, and a
//! strict parser — because the environment has no serde.
//!
//! Experiments opt in via the `REPRO_TELEMETRY` environment variable,
//! parsed strictly by [`TelemetryMode::from_env`]; profiling depth is
//! the separate `REPRO_PROF` knob, parsed by [`ProfMode::from_env`].

pub mod ctx;
pub mod event;
pub mod flight;
pub mod fsio;
pub mod id;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod prof;
pub mod progress;
pub mod sampler;
pub mod span;
pub mod traceviz;

pub use ctx::{
    TelemetryConfig, TraceExportMode, DEFAULT_FLIGHT_DIR, DEFAULT_PROGRESS_DIR,
    DEFAULT_PROGRESS_TICK_MS, DEFAULT_TELEMETRY_DIR, DEFAULT_TRACEVIZ_DIR,
};
pub use event::{write_jsonl, Event, EventRing, EventSink, DEFAULT_RING_CAPACITY};
pub use flight::{flight_path, FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use fsio::{atomic_write, atomic_write_str};
pub use id::{SpanId, TraceId};
pub use json::Json;
pub use manifest::{CellRecord, RunManifest, RunRecord, SampleRow};
pub use metrics::{
    bucket_bounds, bucket_index, check_prometheus_text, prometheus_name, Counter, Gauge, Histogram,
    MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use prof::{HotProfiler, PhaseStat, PhaseTimer, ProfMode};
pub use progress::{
    eta_ms, parse_events, progress_path, read_events, ProgressEvent, ProgressStreamContents,
    ProgressWriter,
};
pub use sampler::Sampler;
pub use span::{SpanGuard, SpanRegistry, SpanStat};
pub use traceviz::{trace_path, TraceCollector, TraceSummary};

/// How much telemetry an experiment run captures.
///
/// Controlled by the `REPRO_TELEMETRY` environment variable:
///
/// | value       | behaviour                                              |
/// |-------------|--------------------------------------------------------|
/// | `off` (default) | no instrumentation beyond the simulator's own stats |
/// | `summary`   | counters + spans + a run manifest, no event stream     |
/// | `events`    | everything in `summary` plus per-mispredict JSONL      |
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TelemetryMode {
    /// No telemetry (the default): zero overhead beyond existing stats.
    #[default]
    Off,
    /// Counters, spans, and a run manifest.
    Summary,
    /// `Summary` plus a JSONL stream of per-branch mispredict events.
    Events,
}

impl TelemetryMode {
    /// The accepted `REPRO_TELEMETRY` values, for error messages.
    pub const ACCEPTED: &'static str = "off, summary, events";

    /// Parses a `REPRO_TELEMETRY` value (case-insensitive).
    ///
    /// Unlike a lenient "anything unknown means off" parser, this rejects
    /// unrecognized values so a typo (`REPRO_TELEMETRY=event`) fails loudly
    /// instead of silently discarding the data the user asked for.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Ok(TelemetryMode::Off),
            "summary" => Ok(TelemetryMode::Summary),
            "events" => Ok(TelemetryMode::Events),
            other => Err(format!(
                "unrecognized REPRO_TELEMETRY value {other:?}; accepted values: {}",
                TelemetryMode::ACCEPTED
            )),
        }
    }

    /// Reads the mode from `REPRO_TELEMETRY`, defaulting to [`Off`] when
    /// unset or set to the empty string (the `REPRO_TELEMETRY= cmd` shell
    /// idiom for "unset").
    ///
    /// Returns the parse error (listing the accepted values) if the
    /// variable is set to something unrecognized; binaries turn that into
    /// an `eprintln` + `exit(2)` instead of a panic backtrace.
    ///
    /// [`Off`]: TelemetryMode::Off
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("REPRO_TELEMETRY") {
            Ok(v) if v.is_empty() => Ok(TelemetryMode::Off),
            Ok(v) => TelemetryMode::parse(&v),
            Err(_) => Ok(TelemetryMode::Off),
        }
    }

    /// Whether any telemetry is captured at all.
    pub fn enabled(self) -> bool {
        self != TelemetryMode::Off
    }

    /// Whether the per-event JSONL stream is captured.
    pub fn events(self) -> bool {
        self == TelemetryMode::Events
    }

    /// The mode's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            TelemetryMode::Off => "off",
            TelemetryMode::Summary => "summary",
            TelemetryMode::Events => "events",
        }
    }
}

impl std::fmt::Display for TelemetryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_accepted_values() {
        assert_eq!(TelemetryMode::parse("off"), Ok(TelemetryMode::Off));
        assert_eq!(TelemetryMode::parse("OFF"), Ok(TelemetryMode::Off));
        assert_eq!(TelemetryMode::parse("none"), Ok(TelemetryMode::Off));
        assert_eq!(TelemetryMode::parse("summary"), Ok(TelemetryMode::Summary));
        assert_eq!(TelemetryMode::parse("Events"), Ok(TelemetryMode::Events));
    }

    #[test]
    fn mode_rejects_typos_with_accepted_list() {
        let err = TelemetryMode::parse("event").unwrap_err();
        assert!(err.contains("event"), "{err}");
        assert!(err.contains("off, summary, events"), "{err}");
    }

    #[test]
    fn mode_predicates() {
        assert!(!TelemetryMode::Off.enabled());
        assert!(TelemetryMode::Summary.enabled());
        assert!(!TelemetryMode::Summary.events());
        assert!(TelemetryMode::Events.events());
        assert_eq!(TelemetryMode::Events.to_string(), "events");
    }
}
