//! Span-style timing scopes, now hierarchical: the phase profiler.
//!
//! A [`SpanRegistry`] accumulates wall-clock time under named spans. Call
//! [`SpanRegistry::span`] to start one; the returned [`SpanGuard`] stops
//! the clock when dropped, so a span covers exactly one lexical scope.
//! Spans opened while another span of the same registry is live **on the
//! same thread** become its children: the registry keys totals by the
//! full `parent;child` path, computes self-vs-total time per node, and
//! can dump the whole tree in the folded-stack format flamegraph tooling
//! consumes.
//!
//! ```
//! use sim_telemetry::SpanRegistry;
//!
//! let spans = SpanRegistry::new();
//! {
//!     let _outer = spans.span("uarch-sim");
//!     {
//!         let _inner = spans.span("predict");
//!         // ... hot work ...
//!     }
//! }
//! let snap = spans.snapshot();
//! assert_eq!(snap[0].path, "uarch-sim");
//! assert_eq!(snap[1].path, "uarch-sim;predict");
//! // The parent's self time excludes the child's total time.
//! assert!(snap[0].self_ns <= snap[0].total_ns);
//! ```
//!
//! Nesting is tracked per `(thread, registry)` pair, so parallel workers
//! (the `REPRO_JOBS` pool) each build their own stacks into the shared
//! registry without cross-attributing each other's phases.
//!
//! A registry can be created [disabled](SpanRegistry::disabled) — the
//! `REPRO_PROF=off` path — in which case `span()` is a single atomic
//! load and the guard records nothing.

use crate::json::{obj, Json};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Separator between path components of nested spans (the folded-stack
/// convention, so dumps feed straight into flamegraph tooling).
pub const PATH_SEPARATOR: char = ';';

#[derive(Debug, Default, Clone, Copy)]
struct SpanTotals {
    count: u64,
    total_ns: u64,
}

#[derive(Debug, Default)]
struct Inner {
    totals: Mutex<BTreeMap<String, SpanTotals>>,
    disabled: AtomicBool,
}

thread_local! {
    /// Per-thread stack of live span paths, tagged with the registry they
    /// belong to so concurrent registries (tests, nested sessions) don't
    /// adopt each other's parents.
    static ACTIVE: RefCell<Vec<(usize, String)>> = const { RefCell::new(Vec::new()) };
}

/// A registry of named, hierarchical timing spans.
#[derive(Clone, Debug, Default)]
pub struct SpanRegistry(Arc<Inner>);

impl SpanRegistry {
    /// Creates an empty, enabled registry.
    pub fn new() -> Self {
        SpanRegistry::default()
    }

    /// Creates a registry whose spans are no-ops (`REPRO_PROF=off`): the
    /// guard is still returned so call sites need no branching, but it
    /// holds no path and records nothing on drop.
    pub fn disabled() -> Self {
        let r = SpanRegistry::default();
        r.0.disabled.store(true, Ordering::Relaxed);
        r
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        !self.0.disabled.load(Ordering::Relaxed)
    }

    fn id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// Starts a timing scope under `name`; the elapsed time is recorded
    /// when the returned guard drops. If another span of this registry is
    /// live on the calling thread, the new span becomes its child
    /// (recorded under the `parent;child` path).
    pub fn span(&self, name: &str) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard {
                registry: self.clone(),
                path: None,
                started: Instant::now(),
            };
        }
        let id = self.id();
        let path = ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.iter().rev().find(|(rid, _)| *rid == id) {
                Some((_, parent)) => format!("{parent}{PATH_SEPARATOR}{name}"),
                None => name.to_string(),
            };
            stack.push((id, path.clone()));
            path
        });
        SpanGuard {
            registry: self.clone(),
            path: Some(path),
            started: Instant::now(),
        }
    }

    fn record(&self, path: &str, elapsed_ns: u64) {
        let mut map = self.0.totals.lock().expect("span registry poisoned");
        let entry = map.entry(path.to_string()).or_default();
        entry.count += 1;
        entry.total_ns += elapsed_ns;
    }

    /// Directly accumulates `elapsed_ns` under a pre-built path without
    /// opening a guard — used to fold externally measured phase totals
    /// (hot-path timers) into the same tree.
    pub fn record_external(&self, path: &str, count: u64, elapsed_ns: u64) {
        if !self.enabled() || count == 0 && elapsed_ns == 0 {
            return;
        }
        let mut map = self.0.totals.lock().expect("span registry poisoned");
        let entry = map.entry(path.to_string()).or_default();
        entry.count += count;
        entry.total_ns += elapsed_ns;
    }

    /// Point-in-time totals for every span path, sorted by path, with
    /// self time (total minus the totals of direct children) computed.
    pub fn snapshot(&self) -> Vec<SpanStat> {
        let map = self.0.totals.lock().expect("span registry poisoned");
        let mut stats: Vec<SpanStat> = map
            .iter()
            .map(|(path, t)| SpanStat {
                path: path.clone(),
                count: t.count,
                total_ns: t.total_ns,
                self_ns: t.total_ns,
            })
            .collect();
        // Subtract each node's direct-children totals to get self time.
        // Paths are sorted, so children follow their parent; saturate in
        // case a child is still running when the parent closed (overlap
        // noise must not underflow).
        let child_totals: BTreeMap<String, u64> = {
            let mut sums: BTreeMap<String, u64> = BTreeMap::new();
            for (path, t) in map.iter() {
                if let Some(parent) = parent_path(path) {
                    *sums.entry(parent.to_string()).or_insert(0) += t.total_ns;
                }
            }
            sums
        };
        for s in &mut stats {
            if let Some(&children) = child_totals.get(&s.path) {
                s.self_ns = s.total_ns.saturating_sub(children);
            }
        }
        stats
    }

    /// The snapshot as a JSON object: span path → `{count, total_ns,
    /// self_ns}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.snapshot()
                .into_iter()
                .map(|s| {
                    (
                        s.path,
                        obj([
                            ("count", Json::from(s.count)),
                            ("total_ns", Json::from(s.total_ns)),
                            ("self_ns", Json::from(s.self_ns)),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// The tree in folded-stack format, one line per path:
    /// `root;child;leaf <self_ns>` — directly consumable by flamegraph
    /// tooling (`flamegraph.pl`, inferno), which re-derives totals by
    /// summing descendants.
    pub fn folded(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in self.snapshot() {
            if s.self_ns > 0 {
                let _ = writeln!(out, "{} {}", s.path, s.self_ns);
            }
        }
        out
    }
}

/// The parent of a span path (`a;b;c` → `a;b`), or `None` for roots.
pub fn parent_path(path: &str) -> Option<&str> {
    path.rfind(PATH_SEPARATOR).map(|i| &path[..i])
}

/// The leaf name of a span path (`a;b;c` → `c`).
pub fn leaf_name(path: &str) -> &str {
    path.rfind(PATH_SEPARATOR)
        .map(|i| &path[i + 1..])
        .unwrap_or(path)
}

/// Accumulated totals for one span path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Full `parent;child` span path (just the name for root spans).
    pub path: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds across all entries (children
    /// included).
    pub total_ns: u64,
    /// Nanoseconds spent in this span excluding its direct children.
    pub self_ns: u64,
}

impl SpanStat {
    /// The span's nesting depth (0 for roots).
    pub fn depth(&self) -> usize {
        self.path.matches(PATH_SEPARATOR).count()
    }

    /// The span's leaf name.
    pub fn name(&self) -> &str {
        leaf_name(&self.path)
    }
}

/// Live timing scope; records its elapsed time into the registry on drop.
#[derive(Debug)]
pub struct SpanGuard {
    registry: SpanRegistry,
    /// The full path this guard records under; `None` for a disabled
    /// registry's no-op guard.
    path: Option<String>,
    started: Instant,
}

impl SpanGuard {
    /// Nanoseconds elapsed so far (the span keeps running).
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// The full path this span records under (`None` when profiling is
    /// off).
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        let elapsed = self.started.elapsed().as_nanos() as u64;
        let id = self.registry.id();
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normally the last entry; search backwards to stay correct
            // if guards are dropped out of lexical order.
            if let Some(i) = stack.iter().rposition(|(rid, p)| *rid == id && *p == path) {
                stack.remove(i);
            }
        });
        self.registry.record(&path, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_count_and_time() {
        let spans = SpanRegistry::new();
        for _ in 0..3 {
            let _g = spans.span("work");
            std::hint::black_box(0u64);
        }
        {
            let _g = spans.span("other");
        }
        let snap = spans.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].path, "other"); // BTreeMap order
        assert_eq!(snap[1].path, "work");
        assert_eq!(snap[1].count, 3);
    }

    #[test]
    fn nested_spans_build_paths_and_self_time() {
        let spans = SpanRegistry::new();
        {
            let _outer = spans.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = spans.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _leaf = spans.span("leaf");
                }
            }
        }
        let snap = spans.snapshot();
        let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["outer", "outer;inner", "outer;inner;leaf"]);
        let outer = &snap[0];
        let inner = &snap[1];
        assert_eq!(outer.depth(), 0);
        assert_eq!(inner.depth(), 1);
        assert_eq!(inner.name(), "inner");
        // total >= children's total; self = total - children.
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        assert!(
            outer.self_ns >= 1_000_000,
            "outer slept ~2ms outside inner, self {}",
            outer.self_ns
        );
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let spans = SpanRegistry::new();
        {
            let _p = spans.span("parent");
            for _ in 0..2 {
                let _a = spans.span("a");
            }
            let _b = spans.span("b");
        }
        let snap = spans.snapshot();
        let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["parent", "parent;a", "parent;b"]);
        assert_eq!(snap[1].count, 2);
    }

    #[test]
    fn concurrent_threads_do_not_cross_nest() {
        // Two threads each open their own root + child into one shared
        // registry; neither must become a child of the other's root.
        let spans = SpanRegistry::new();
        let mut handles = Vec::new();
        for name in ["t1", "t2"] {
            let spans = spans.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _root = spans.span(name);
                    let _child = spans.span("work");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = spans.snapshot();
        let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["t1", "t1;work", "t2", "t2;work"]);
        assert_eq!(snap[1].count, 50);
        assert_eq!(snap[3].count, 50);
    }

    #[test]
    fn two_registries_on_one_thread_keep_separate_stacks() {
        let a = SpanRegistry::new();
        let b = SpanRegistry::new();
        {
            let _ga = a.span("a-root");
            let _gb = b.span("b-root"); // must NOT nest under a-root
            let _ga2 = a.span("a-child");
        }
        assert_eq!(b.snapshot()[0].path, "b-root");
        assert_eq!(a.snapshot()[1].path, "a-root;a-child");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let spans = SpanRegistry::disabled();
        assert!(!spans.enabled());
        {
            let g = spans.span("ignored");
            assert_eq!(g.path(), None);
        }
        assert!(spans.snapshot().is_empty());
        assert!(spans.folded().is_empty());
    }

    #[test]
    fn folded_output_is_flamegraph_shaped() {
        let spans = SpanRegistry::new();
        {
            let _outer = spans.span("run");
            std::thread::sleep(std::time::Duration::from_millis(1));
            let _inner = spans.span("phase");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let folded = spans.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "{folded}");
        assert!(lines[0].starts_with("run "), "{folded}");
        assert!(lines[1].starts_with("run;phase "), "{folded}");
        for line in lines {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value > 0);
        }
    }

    #[test]
    fn record_external_folds_into_the_tree() {
        let spans = SpanRegistry::new();
        {
            let _g = spans.span("replay");
        }
        spans.record_external("replay;hot.btb-lookup", 10, 1234);
        let snap = spans.snapshot();
        assert_eq!(snap[1].path, "replay;hot.btb-lookup");
        assert_eq!(snap[1].count, 10);
        assert_eq!(snap[1].total_ns, 1234);
        // Disabled registries ignore external records too.
        let off = SpanRegistry::disabled();
        off.record_external("x", 1, 1);
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn to_json_parses_and_carries_counts() {
        let spans = SpanRegistry::new();
        {
            let _g = spans.span("phase");
        }
        let text = spans.to_json().to_string();
        let v = crate::json::parse(&text).expect("span json parses");
        assert_eq!(
            v.get("phase").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
        assert!(v
            .get("phase")
            .unwrap()
            .get("total_ns")
            .unwrap()
            .as_u64()
            .is_some());
        assert!(v
            .get("phase")
            .unwrap()
            .get("self_ns")
            .unwrap()
            .as_u64()
            .is_some());
    }

    #[test]
    fn path_helpers() {
        assert_eq!(parent_path("a;b;c"), Some("a;b"));
        assert_eq!(parent_path("a"), None);
        assert_eq!(leaf_name("a;b;c"), "c");
        assert_eq!(leaf_name("a"), "a");
    }
}
