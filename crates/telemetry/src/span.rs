//! Span-style timing scopes.
//!
//! A [`SpanRegistry`] accumulates wall-clock time under named spans. Call
//! [`SpanRegistry::span`] to start one; the returned [`SpanGuard`] stops
//! the clock when dropped, so a span covers exactly one lexical scope:
//!
//! ```
//! use sim_telemetry::SpanRegistry;
//!
//! let spans = SpanRegistry::new();
//! {
//!     let _guard = spans.span("uarch-sim");
//!     // ... simulate ...
//! }
//! assert_eq!(spans.snapshot()[0].count, 1);
//! ```

use crate::json::{obj, Json};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug, Default, Clone, Copy)]
struct SpanTotals {
    count: u64,
    total_ns: u64,
}

/// A registry of named timing spans.
#[derive(Clone, Debug, Default)]
pub struct SpanRegistry(Arc<Mutex<BTreeMap<String, SpanTotals>>>);

impl SpanRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SpanRegistry::default()
    }

    /// Starts a timing scope under `name`; the elapsed time is recorded
    /// when the returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            registry: self.clone(),
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    fn record(&self, name: &str, elapsed_ns: u64) {
        let mut map = self.0.lock().expect("span registry poisoned");
        let entry = map.entry(name.to_string()).or_default();
        entry.count += 1;
        entry.total_ns += elapsed_ns;
    }

    /// Point-in-time totals for every span, sorted by name.
    pub fn snapshot(&self) -> Vec<SpanStat> {
        self.0
            .lock()
            .expect("span registry poisoned")
            .iter()
            .map(|(name, t)| SpanStat {
                name: name.clone(),
                count: t.count,
                total_ns: t.total_ns,
            })
            .collect()
    }

    /// The snapshot as a JSON object: span name → `{count, total_ns}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.snapshot()
                .into_iter()
                .map(|s| {
                    (
                        s.name,
                        obj([
                            ("count", Json::from(s.count)),
                            ("total_ns", Json::from(s.total_ns)),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// Accumulated totals for one named span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds across all entries.
    pub total_ns: u64,
}

/// Live timing scope; records its elapsed time into the registry on drop.
#[derive(Debug)]
pub struct SpanGuard {
    registry: SpanRegistry,
    name: String,
    started: Instant,
}

impl SpanGuard {
    /// Nanoseconds elapsed so far (the span keeps running).
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed().as_nanos() as u64;
        self.registry.record(&self.name, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_count_and_time() {
        let spans = SpanRegistry::new();
        for _ in 0..3 {
            let _g = spans.span("work");
            std::hint::black_box(0u64);
        }
        {
            let _g = spans.span("other");
        }
        let snap = spans.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "other"); // BTreeMap order
        assert_eq!(snap[1].name, "work");
        assert_eq!(snap[1].count, 3);
    }

    #[test]
    fn to_json_parses_and_carries_counts() {
        let spans = SpanRegistry::new();
        {
            let _g = spans.span("phase");
        }
        let text = spans.to_json().to_string();
        let v = crate::json::parse(&text).expect("span json parses");
        assert_eq!(
            v.get("phase").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
        assert!(v
            .get("phase")
            .unwrap()
            .get("total_ns")
            .unwrap()
            .as_u64()
            .is_some());
    }
}
