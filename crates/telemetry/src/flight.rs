//! The always-on flight recorder: a fixed-size in-memory ring of recent
//! structured events, dumped to disk only when something goes wrong.
//!
//! Every campaign (and every `repro-serve` request) keeps one
//! [`FlightRecorder`] recording admissions, cell transitions, retries,
//! store activity, and HTTP errors into a bounded ring. In steady state
//! the recorder costs one short mutex acquisition per event and writes
//! nothing; on a triggering condition — panic, cell failure after
//! retries, a deadline sweep, or a SIGTERM drain — [`FlightRecorder::dump`]
//! writes the ring's contents atomically to
//! `results/flightrec/<run-id>.flight.jsonl`, so post-mortems no longer
//! depend on having enabled `REPRO_PROGRESS` beforehand.
//!
//! The dump is single-writer by construction: every trigger rewrites the
//! same per-run path through [`crate::fsio::atomic_write_str`] (tmp +
//! rename), so concurrent triggers cannot interleave lines and the file
//! on disk is always the complete, most recent dump — one flight file
//! per run, not one per trigger.
//!
//! Recorders can also be *armed* into a process-global registry so the
//! panic hook can dump every live recorder when a thread dies outside
//! the pool's `catch_unwind` fence; the [`ArmedGuard`] disarms on drop.

use crate::fsio::atomic_write_str;
use crate::json::{obj, Json};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity (`REPRO_FLIGHT_CAP`): enough for the full cell
/// lifecycle of the largest campaign (77 cells × started/finished plus
/// retries) without measurable memory cost.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One structured event in the ring.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Monotonic sequence number since the recorder was created; never
    /// reset, so wraparound is visible as a gap from 0.
    pub seq: u64,
    /// Milliseconds since the recorder was created.
    pub t_ms: u64,
    /// Event kind (`cell-started`, `cell-retry`, `admission`, …).
    pub kind: String,
    /// Free-form detail fields, kept sorted for byte-stable dumps.
    pub fields: Vec<(String, Json)>,
}

impl FlightEvent {
    fn to_json(&self) -> Json {
        let mut doc = vec![
            ("seq".to_string(), Json::from(self.seq)),
            ("t_ms".to_string(), Json::from(self.t_ms)),
            ("kind".to_string(), Json::from(self.kind.as_str())),
        ];
        doc.extend(self.fields.iter().cloned());
        Json::Obj(doc.into_iter().collect())
    }
}

#[derive(Debug)]
struct RecorderInner {
    ring: VecDeque<FlightEvent>,
    seq: u64,
    dumps: u64,
}

/// A bounded ring of recent events plus the dump path it drains to.
///
/// Clones share the same ring (`Arc`-backed), so the serve layer, the
/// jobs pool, and the panic hook can all record into one recorder.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
    started: Instant,
    capacity: usize,
    run_id: String,
    trace_id: String,
    path: PathBuf,
}

impl FlightRecorder {
    /// A recorder for `run_id` dumping to `<dir>/<run-id>.flight.jsonl`.
    /// `capacity` is clamped to at least 1.
    pub fn new(dir: &Path, run_id: &str, trace_id: &str, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                ring: VecDeque::new(),
                seq: 0,
                dumps: 0,
            })),
            started: Instant::now(),
            capacity: capacity.max(1),
            run_id: run_id.to_string(),
            trace_id: trace_id.to_string(),
            path: flight_path(dir, run_id),
        }
    }

    /// The dump path this recorder writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The trace id stamped into every dump header.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Records one event, overwriting the oldest when the ring is full.
    pub fn record<I>(&self, kind: &str, fields: I)
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        let seq = inner.seq;
        inner.seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(FlightEvent {
            seq,
            t_ms: self.started.elapsed().as_millis() as u64,
            kind: kind.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    /// A copy of the ring's current contents, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        inner.ring.iter().cloned().collect()
    }

    /// Total events ever recorded (events beyond the ring capacity were
    /// overwritten).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("flight recorder poisoned").seq
    }

    /// How many times this recorder has dumped.
    pub fn dumps(&self) -> u64 {
        self.inner.lock().expect("flight recorder poisoned").dumps
    }

    /// Dumps the ring to the recorder's path: one header line naming the
    /// run, trace id, and trigger, then one line per event, oldest
    /// first. Atomic (tmp + rename) and idempotent — a later trigger
    /// rewrites the same file with the newer ring, so exactly one
    /// `<run-id>.flight.jsonl` exists per run regardless of how many
    /// triggers fired. Returns the dump path.
    ///
    /// A dump failure degrades observability, never the run: the error
    /// is reported to stderr and swallowed.
    pub fn dump(&self, reason: &str) -> PathBuf {
        let (events, recorded) = {
            let mut inner = self.inner.lock().expect("flight recorder poisoned");
            inner.dumps += 1;
            (inner.ring.iter().cloned().collect::<Vec<_>>(), inner.seq)
        };
        let mut text = String::new();
        let header = obj([
            ("flight", Json::from(1u64)),
            ("run", Json::from(self.run_id.as_str())),
            ("trace_id", Json::from(self.trace_id.as_str())),
            ("reason", Json::from(reason)),
            ("recorded", Json::from(recorded)),
            ("dropped", Json::from(recorded - events.len() as u64)),
        ]);
        let _ = writeln!(text, "{header}");
        for event in &events {
            let _ = writeln!(text, "{}", event.to_json());
        }
        if let Err(e) = atomic_write_str(&self.path, &text) {
            eprintln!(
                "warning: flight recorder dump to {} failed: {e}",
                self.path.display()
            );
        }
        self.path.clone()
    }
}

/// The flight dump path for a run id.
pub fn flight_path(dir: &Path, run_id: &str) -> PathBuf {
    dir.join(format!("{run_id}.flight.jsonl"))
}

/// Recorders armed for the panic hook, keyed by an opaque token so a
/// guard removes exactly the recorder it armed.
fn armed() -> &'static Mutex<Vec<(u64, FlightRecorder)>> {
    static ARMED: OnceLock<Mutex<Vec<(u64, FlightRecorder)>>> = OnceLock::new();
    ARMED.get_or_init(|| Mutex::new(Vec::new()))
}

/// Disarms its recorder when dropped.
#[derive(Debug)]
pub struct ArmedGuard(u64);

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        if let Ok(mut list) = armed().lock() {
            list.retain(|(token, _)| *token != self.0);
        }
    }
}

/// Arms `recorder` into the process-global registry the panic hook
/// drains; the returned guard disarms it on drop (normal campaign end).
pub fn arm(recorder: &FlightRecorder) -> ArmedGuard {
    static TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let token = TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    if let Ok(mut list) = armed().lock() {
        list.push((token, recorder.clone()));
    }
    ArmedGuard(token)
}

/// Dumps every armed recorder (panic hook, SIGTERM drain). Returns the
/// paths written.
pub fn dump_armed(reason: &str) -> Vec<PathBuf> {
    let recorders: Vec<FlightRecorder> = match armed().lock() {
        Ok(list) => list.iter().map(|(_, r)| r.clone()).collect(),
        Err(_) => Vec::new(),
    };
    recorders.iter().map(|r| r.dump(reason)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("repro-flight-{tag}-{}", std::process::id()))
    }

    fn recorder(tag: &str, capacity: usize) -> FlightRecorder {
        FlightRecorder::new(&scratch(tag), "r1", "tr-0000000000000001", capacity)
    }

    #[test]
    fn ring_overwrites_oldest_and_preserves_order() {
        let rec = recorder("wrap", 3);
        for i in 0..5u64 {
            rec.record("tick", [("i", Json::from(i))]);
        }
        let events = rec.events();
        // Capacity 3, 5 recorded: events 0 and 1 were overwritten and
        // the survivors appear oldest-first with their original seqs.
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(rec.recorded(), 5);
        let is: Vec<u64> = events
            .iter()
            .map(|e| e.fields[0].1.as_u64().unwrap())
            .collect();
        assert_eq!(is, vec![2, 3, 4]);
    }

    #[test]
    fn dump_writes_header_then_events_and_is_idempotent() {
        let dir = scratch("dump");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(&dir, "r7", "tr-00000000000000ab", 8);
        rec.record("cell-started", [("cell", Json::from("table4/perl"))]);
        rec.record("cell-retry", [("attempt", Json::from(2u64))]);

        let path = rec.dump("cell-failed");
        assert_eq!(path, flight_path(&dir, "r7"));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = parse(lines[0]).unwrap();
        assert_eq!(header.get("flight").unwrap().as_u64(), Some(1));
        assert_eq!(header.get("run").unwrap().as_str(), Some("r7"));
        assert_eq!(
            header.get("trace_id").unwrap().as_str(),
            Some("tr-00000000000000ab")
        );
        assert_eq!(header.get("reason").unwrap().as_str(), Some("cell-failed"));
        assert_eq!(header.get("dropped").unwrap().as_u64(), Some(0));
        let first = parse(lines[1]).unwrap();
        assert_eq!(first.get("kind").unwrap().as_str(), Some("cell-started"));
        assert_eq!(first.get("cell").unwrap().as_str(), Some("table4/perl"));

        // A second trigger rewrites the same file (single-writer path):
        // still exactly one flight file for the run, with the newer ring.
        rec.record("deadline-kill", [("cell", Json::from("table4/gcc"))]);
        let path2 = rec.dump("deadline-sweep");
        assert_eq!(path, path2);
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(files.len(), 1, "one flight file per run");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("deadline-sweep"));
        assert!(text.contains("deadline-kill"));
        assert_eq!(rec.dumps(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_reports_overwritten_events_as_dropped() {
        let dir = scratch("dropped");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(&dir, "r8", "tr-0000000000000002", 2);
        for _ in 0..5 {
            rec.record("tick", []);
        }
        let path = rec.dump("panic");
        let text = std::fs::read_to_string(&path).unwrap();
        let header = parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("recorded").unwrap().as_u64(), Some(5));
        assert_eq!(header.get("dropped").unwrap().as_u64(), Some(3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_recorders_dump_and_guards_disarm() {
        let dir = scratch("armed");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = FlightRecorder::new(&dir, "r9", "tr-0000000000000003", 4);
        rec.record("admission", [("id", Json::from("req-1"))]);
        {
            let _guard = arm(&rec);
            let paths = dump_armed("sigterm-drain");
            assert!(paths.contains(&flight_path(&dir, "r9")));
        }
        // Guard dropped → disarmed → later sweeps skip it.
        let before = rec.dumps();
        let paths = dump_armed("panic");
        assert!(!paths.contains(&flight_path(&dir, "r9")));
        assert_eq!(rec.dumps(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
