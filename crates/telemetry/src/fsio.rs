//! Crash-safe file writes.
//!
//! Every durable artifact the telemetry layer produces — run manifests,
//! event streams, and the experiment runner's journal — goes through
//! [`atomic_write`]: the bytes land in a `*.tmp` sibling first, are
//! fsynced, and only then renamed over the destination. A crash (or an
//! operator's ctrl-C) at any instant leaves either the old complete file
//! or the new complete file, never a torn half-document.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// The suffix appended to a destination path while its replacement is
/// being staged.
pub const TMP_SUFFIX: &str = ".tmp";

/// Atomically replaces `path` with `bytes`.
///
/// Writes `<path>.tmp` in the same directory (so the rename cannot cross
/// filesystems), fsyncs the staged file, renames it over `path`, and
/// best-effort fsyncs the parent directory so the rename itself is
/// durable. Creates the parent directory if it does not exist.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_path(path);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => {}
        Err(e) => {
            // Don't leave the stage file behind on failure.
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
    }
    // Durability of the rename: sync the directory entry. Not all
    // platforms allow opening a directory for sync; failure here never
    // loses data already safely renamed, so it is best-effort.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// [`atomic_write`] for string content.
pub fn atomic_write_str(path: &Path, text: &str) -> io::Result<()> {
    atomic_write(path, text.as_bytes())
}

/// The staging path [`atomic_write`] uses for `path`.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(TMP_SUFFIX);
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sim-telemetry-fsio-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_and_replaces_atomically() {
        let dir = scratch("replace");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("out.json");

        atomic_write_str(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");

        atomic_write_str(&path, "second, longer than the first").unwrap();
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "second, longer than the first"
        );

        // No stage file is left behind.
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_path_is_a_sibling() {
        let p = Path::new("/a/b/c.json");
        assert_eq!(tmp_path(p), Path::new("/a/b/c.json.tmp"));
    }
}
