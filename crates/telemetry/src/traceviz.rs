//! Chrome trace-event export (`chrome://tracing` / Perfetto).
//!
//! `REPRO_TRACE_EXPORT=chrome` turns a campaign's cell lifecycle and its
//! hierarchical [`SpanRegistry`] phases into one trace-event JSON
//! document at `results/traceviz/<run-id>.trace.json`. Load it in
//! Perfetto (ui.perfetto.dev) or `chrome://tracing` to see per-worker
//! lanes of cell attempts, retry markers, and the phase tree on its own
//! lane — the systems-layer equivalent of the per-branch timelines the
//! predictor analysis already has.
//!
//! The document uses the object form of the trace-event format:
//! `{"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}`
//! with complete (`ph:"X"`) events for cell attempts and span phases,
//! instant (`ph:"i"`) events for retries and deadline kills, and
//! metadata (`ph:"M"`) events naming the lanes. All timestamps are
//! microseconds from one monotonic clock owned by the collector, and
//! cell begin/end is driven from the pool's single-threaded scheduler,
//! so `ts` is non-decreasing per lane by construction — the invariant
//! [`validate`] (and the `trace-viz verify` subcommand built on it)
//! checks.
//!
//! Span phases carry aggregate totals, not timestamped intervals, so
//! the exporter synthesizes their timeline: each parent's window is its
//! total time and children are laid out sequentially inside it. The
//! result is exact in durations and containment, schematic in offsets —
//! the right trade for a profile lane.

use crate::fsio::atomic_write_str;
use crate::json::{obj, Json};
use crate::span::SpanRegistry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The `pid` all campaign events share (one process per trace; merges
/// remap it per source file).
const TRACE_PID: u64 = 1;
/// The scheduler/control lane: campaign markers, retries, kills.
const CONTROL_TID: u64 = 0;
/// The synthesized span-phase lane.
const SPANS_TID: u64 = 1000;

/// One trace event in memory (a subset of the trace-event format).
#[derive(Clone, Debug)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    ph: &'static str,
    ts_us: u64,
    dur_us: Option<u64>,
    tid: u64,
    args: Vec<(String, Json)>,
}

impl TraceEvent {
    fn to_json(&self) -> Json {
        let mut fields = BTreeMap::from([
            ("name".to_string(), Json::from(self.name.as_str())),
            ("cat".to_string(), Json::from(self.cat)),
            ("ph".to_string(), Json::from(self.ph)),
            ("ts".to_string(), Json::from(self.ts_us)),
            ("pid".to_string(), Json::from(TRACE_PID)),
            ("tid".to_string(), Json::from(self.tid)),
        ]);
        if let Some(dur) = self.dur_us {
            fields.insert("dur".to_string(), Json::from(dur));
        }
        if self.ph == "i" {
            // Thread-scoped instants render as small arrows on the lane.
            fields.insert("s".to_string(), Json::from("t"));
        }
        if !self.args.is_empty() {
            fields.insert(
                "args".to_string(),
                Json::Obj(self.args.iter().cloned().collect()),
            );
        }
        Json::Obj(fields)
    }
}

#[derive(Debug)]
struct OpenSlice {
    lane: u64,
    started_us: u64,
    attempt: u32,
}

#[derive(Debug, Default)]
struct CollectorInner {
    events: Vec<TraceEvent>,
    /// Worker-lane occupancy; index i is lane tid `i + 1`.
    lanes: Vec<bool>,
    open: BTreeMap<String, OpenSlice>,
}

/// Collects cell-lifecycle events during a campaign and serializes the
/// Chrome trace document. `Arc`-backed: the driver keeps one clone, the
/// pool scheduler another.
#[derive(Clone, Debug)]
pub struct TraceCollector {
    inner: Arc<Mutex<CollectorInner>>,
    started: Instant,
    run_id: String,
    trace_id: String,
}

impl TraceCollector {
    /// A collector for `run_id`, stamped with `trace_id`.
    pub fn new(run_id: &str, trace_id: &str) -> TraceCollector {
        TraceCollector {
            inner: Arc::new(Mutex::new(CollectorInner::default())),
            started: Instant::now(),
            run_id: run_id.to_string(),
            trace_id: trace_id.to_string(),
        }
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CollectorInner> {
        self.inner.lock().expect("trace collector poisoned")
    }

    /// Marks a cell attempt as started; it occupies the smallest free
    /// worker lane until [`TraceCollector::end`].
    pub fn begin(&self, cell: &str, attempt: u32) {
        let ts = self.now_us();
        let mut inner = self.lock();
        let lane = match inner.lanes.iter().position(|busy| !busy) {
            Some(i) => {
                inner.lanes[i] = true;
                i as u64 + 1
            }
            None => {
                inner.lanes.push(true);
                inner.lanes.len() as u64
            }
        };
        inner.open.insert(
            cell.to_string(),
            OpenSlice {
                lane,
                started_us: ts,
                attempt,
            },
        );
    }

    /// Closes a cell attempt opened by [`TraceCollector::begin`] as one
    /// complete (`X`) slice on its lane, labeled with the outcome
    /// (`ok`, `err`, `killed`). Unknown cells are ignored.
    pub fn end(&self, cell: &str, outcome: &str) {
        let ts = self.now_us();
        let mut inner = self.lock();
        let Some(slice) = inner.open.remove(cell) else {
            return;
        };
        if let Some(busy) = inner.lanes.get_mut(slice.lane as usize - 1) {
            *busy = false;
        }
        inner.events.push(TraceEvent {
            name: cell.to_string(),
            cat: "cell",
            ph: "X",
            ts_us: slice.started_us,
            dur_us: Some(ts.saturating_sub(slice.started_us)),
            tid: slice.lane,
            args: vec![
                ("attempt".to_string(), Json::from(slice.attempt as u64)),
                ("outcome".to_string(), Json::from(outcome)),
            ],
        });
    }

    /// Records an instant marker (`cell-retry`, `deadline-kill`,
    /// `campaign-cancelled`, …) on the scheduler's control lane.
    pub fn instant(&self, name: &str, cell: &str) {
        let ts = self.now_us();
        let mut inner = self.lock();
        inner.events.push(TraceEvent {
            name: name.to_string(),
            cat: "scheduler",
            ph: "i",
            ts_us: ts,
            dur_us: None,
            tid: CONTROL_TID,
            args: vec![("cell".to_string(), Json::from(cell))],
        });
    }

    /// Closes any still-open attempts (campaign cancelled mid-flight) so
    /// the export never loses a running cell.
    pub fn close_open(&self, outcome: &str) {
        let open: Vec<String> = self.lock().open.keys().cloned().collect();
        for cell in open {
            self.end(&cell, outcome);
        }
    }

    /// Folds the span registry's aggregated phase tree into the export
    /// as nested `X` slices on a dedicated lane: each parent's window is
    /// its total time, children laid out sequentially inside it (exact
    /// durations, schematic offsets).
    pub fn add_spans(&self, spans: &SpanRegistry) {
        let snapshot = spans.snapshot();
        // Paths sort parents before children ("a" < "a;b"), so one pass
        // with a placement map suffices. Roots start where the previous
        // root ended.
        let mut placed: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new(); // path -> (start, end, cursor)
        let mut root_cursor = 0u64;
        let mut inner = self.lock();
        for stat in snapshot {
            let dur_us = stat.total_ns / 1000;
            let (start, end) = match crate::span::parent_path(&stat.path) {
                Some(parent) => match placed.get_mut(parent) {
                    Some((_, pend, cursor)) => {
                        let start = *cursor;
                        // Overlap noise can make children sum past the
                        // parent; clamp so containment always holds.
                        let end = (start + dur_us).min(*pend);
                        *cursor = end;
                        (start, end)
                    }
                    None => (0, dur_us), // orphan path; place at origin
                },
                None => {
                    let start = root_cursor;
                    root_cursor = start + dur_us;
                    (start, root_cursor)
                }
            };
            placed.insert(stat.path.clone(), (start, end, start));
            inner.events.push(TraceEvent {
                name: crate::span::leaf_name(&stat.path).to_string(),
                cat: "phase",
                ph: "X",
                ts_us: start,
                dur_us: Some(end.saturating_sub(start)),
                tid: SPANS_TID,
                args: vec![
                    ("path".to_string(), Json::from(stat.path.as_str())),
                    ("count".to_string(), Json::from(stat.count)),
                    ("total_ns".to_string(), Json::from(stat.total_ns)),
                    ("self_ns".to_string(), Json::from(stat.self_ns)),
                ],
            });
        }
    }

    /// The complete Chrome trace document.
    pub fn to_json(&self) -> Json {
        let inner = self.lock();
        let mut events = inner.events.clone();
        drop(inner);
        // Sort by (lane, ts) stably so per-lane ts monotonicity is
        // explicit in the serialized order, then prepend lane names.
        events.sort_by_key(|e| (e.tid, e.ts_us));
        let mut docs: Vec<Json> = Vec::new();
        let mut lanes: Vec<u64> = events.iter().map(|e| e.tid).collect();
        lanes.sort_unstable();
        lanes.dedup();
        for tid in lanes {
            let label = match tid {
                CONTROL_TID => "scheduler".to_string(),
                SPANS_TID => "phases".to_string(),
                lane => format!("worker-{lane}"),
            };
            docs.push(obj([
                ("name", Json::from("thread_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(TRACE_PID)),
                ("tid", Json::from(tid)),
                ("args", obj([("name", Json::from(label.as_str()))])),
            ]));
        }
        docs.extend(events.iter().map(TraceEvent::to_json));
        obj([
            ("traceEvents", Json::Arr(docs)),
            ("displayTimeUnit", Json::from("ms")),
            (
                "otherData",
                obj([
                    ("run", Json::from(self.run_id.as_str())),
                    ("trace_id", Json::from(self.trace_id.as_str())),
                ]),
            ),
        ])
    }

    /// Writes the document atomically to
    /// `<dir>/<run-id>.trace.json` and returns the path.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = trace_path(dir, &self.run_id);
        let mut text = self.to_json().to_pretty_string();
        text.push('\n');
        atomic_write_str(&path, &text)?;
        Ok(path)
    }
}

/// The trace export path for a run id.
pub fn trace_path(dir: &Path, run_id: &str) -> PathBuf {
    dir.join(format!("{run_id}.trace.json"))
}

/// What [`validate`] learned about a trace document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events, metadata included.
    pub events: usize,
    /// Complete (`X`) slices.
    pub complete: usize,
    /// Instant (`i`) markers.
    pub instants: usize,
    /// Matched `B`/`E` pairs.
    pub durations: usize,
    /// Distinct `(pid, tid)` lanes with at least one event.
    pub lanes: usize,
    /// Largest `ts + dur` seen, in microseconds.
    pub span_us: u64,
    /// `otherData.trace_id`, when present.
    pub trace_id: Option<String>,
    /// `otherData.run`, when present.
    pub run: Option<String>,
}

/// Strictly validates a parsed Chrome trace document: the shape
/// (`traceEvents` array, required fields per phase type), matched
/// `B`/`E` nesting per lane, and non-decreasing `ts` per lane in
/// serialized order. Returns a summary on success, the first violation
/// otherwise.
pub fn validate(doc: &Json) -> Result<TraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("document has no \"traceEvents\" array")?;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    if let Some(other) = doc.get("otherData") {
        summary.trace_id = other
            .get("trace_id")
            .and_then(Json::as_str)
            .map(String::from);
        summary.run = other.get("run").and_then(Json::as_str).map(String::from);
    }
    // Per-lane state: last ts seen and the B/E stack of open names.
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let at = |what: &str| format!("traceEvents[{i}]: {what}");
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing \"name\""))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing \"ph\""))?;
        let pid = event
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| at("missing \"pid\""))?;
        let tid = event
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| at("missing \"tid\""))?;
        if ph == "M" {
            continue; // metadata carries no timeline
        }
        let ts = event
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| at("missing numeric \"ts\""))?;
        let lane = (pid, tid);
        if let Some(&prev) = last_ts.get(&lane) {
            if ts < prev {
                return Err(at(&format!(
                    "ts {ts} goes backwards on lane pid={pid} tid={tid} (previous {prev})"
                )));
            }
        }
        last_ts.insert(lane, ts);
        match ph {
            "X" => {
                let dur = event
                    .get("dur")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| at("complete event missing \"dur\""))?;
                summary.complete += 1;
                summary.span_us = summary.span_us.max(ts + dur);
            }
            "B" => stacks.entry(lane).or_default().push(name.to_string()),
            "E" => {
                let open = stacks
                    .entry(lane)
                    .or_default()
                    .pop()
                    .ok_or_else(|| at("E event with no matching B on its lane"))?;
                // The E event's name may be empty (the format allows it);
                // when present it must close the innermost open B.
                if !name.is_empty() && name != open {
                    return Err(at(&format!(
                        "E event for {name:?} closes mismatched B {open:?}"
                    )));
                }
                summary.durations += 1;
                summary.span_us = summary.span_us.max(ts);
            }
            "i" | "I" => {
                summary.instants += 1;
                summary.span_us = summary.span_us.max(ts);
            }
            other => return Err(at(&format!("unsupported phase type {other:?}"))),
        }
    }
    for ((pid, tid), stack) in stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "B event {open:?} on lane pid={pid} tid={tid} never closed"
            ));
        }
    }
    summary.lanes = last_ts.len();
    Ok(summary)
}

/// Merges several trace documents into one, remapping each source's
/// `pid` to its 1-based input index so lanes never collide; `otherData`
/// lists the merged runs.
pub fn merge(docs: &[Json]) -> Result<Json, String> {
    let mut events: Vec<Json> = Vec::new();
    let mut runs: Vec<Json> = Vec::new();
    for (i, doc) in docs.iter().enumerate() {
        let pid = i as u64 + 1;
        let source = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("input {i}: no \"traceEvents\" array"))?;
        for event in source {
            let Json::Obj(fields) = event else {
                return Err(format!("input {i}: non-object trace event"));
            };
            let mut fields = fields.clone();
            fields.insert("pid".to_string(), Json::from(pid));
            events.push(Json::Obj(fields));
        }
        if let Some(other) = doc.get("otherData") {
            let mut entry = BTreeMap::from([("pid".to_string(), Json::from(pid))]);
            for key in ["run", "trace_id"] {
                if let Some(v) = other.get(key).and_then(Json::as_str) {
                    entry.insert(key.to_string(), Json::from(v));
                }
            }
            runs.push(Json::Obj(entry));
        }
    }
    Ok(obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ms")),
        ("otherData", obj([("merged", Json::Arr(runs))])),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn cell_lifecycle_exports_complete_events_on_worker_lanes() {
        let tc = TraceCollector::new("r1", "tr-0000000000000001");
        tc.begin("table4/perl", 1);
        tc.begin("table4/gcc", 1);
        tc.end("table4/perl", "err");
        tc.instant("cell-retry", "table4/perl");
        tc.begin("table4/perl", 2);
        tc.end("table4/gcc", "ok");
        tc.end("table4/perl", "ok");
        let doc = tc.to_json();
        let summary = validate(&doc).expect("export validates");
        assert_eq!(summary.complete, 3);
        assert_eq!(summary.instants, 1);
        assert_eq!(
            doc.get("otherData")
                .unwrap()
                .get("trace_id")
                .unwrap()
                .as_str(),
            Some("tr-0000000000000001")
        );
        // perl's two attempts: the first freed lane 1; gcc held lane 2.
        // Lanes in use: control lane (instant) + two worker lanes.
        assert_eq!(summary.lanes, 3);
        // Round-trip through text: what we write is what validates.
        let reparsed = parse(&doc.to_string()).unwrap();
        assert_eq!(validate(&reparsed), Ok(summary));
    }

    #[test]
    fn close_open_flushes_running_cells() {
        let tc = TraceCollector::new("r2", "tr-0000000000000002");
        tc.begin("a/b", 1);
        tc.begin("c/d", 1);
        tc.close_open("killed");
        let summary = validate(&tc.to_json()).unwrap();
        assert_eq!(summary.complete, 2);
    }

    #[test]
    fn span_tree_exports_nested_slices_on_the_phases_lane() {
        let spans = SpanRegistry::new();
        {
            let _outer = spans.span("campaign");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = spans.span("cell:table4");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let tc = TraceCollector::new("r3", "tr-0000000000000003");
        tc.add_spans(&spans);
        let doc = tc.to_json();
        validate(&doc).expect("span export validates");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let slices: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        // The child's window is contained in the parent's.
        let (parent, child) = (&slices[0], &slices[1]);
        assert_eq!(parent.get("name").unwrap().as_str(), Some("campaign"));
        assert_eq!(child.get("name").unwrap().as_str(), Some("cell:table4"));
        let p_ts = parent.get("ts").unwrap().as_u64().unwrap();
        let p_end = p_ts + parent.get("dur").unwrap().as_u64().unwrap();
        let c_ts = child.get("ts").unwrap().as_u64().unwrap();
        let c_end = c_ts + child.get("dur").unwrap().as_u64().unwrap();
        assert!(
            p_ts <= c_ts && c_end <= p_end,
            "{c_ts}..{c_end} outside {p_ts}..{p_end}"
        );
    }

    #[test]
    fn validate_rejects_broken_documents() {
        // No traceEvents.
        assert!(validate(&parse(r#"{"displayTimeUnit":"ms"}"#).unwrap()).is_err());
        // Backwards ts on one lane.
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":1},
                {"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":1}]}"#,
        )
        .unwrap();
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
        // Backwards ts on different lanes is fine.
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":1},
                {"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":2}]}"#,
        )
        .unwrap();
        assert!(validate(&doc).is_ok());
        // Unmatched B.
        let doc =
            parse(r#"{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}"#).unwrap();
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
        // E with no B.
        let doc =
            parse(r#"{"traceEvents":[{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}"#).unwrap();
        assert!(validate(&doc).unwrap_err().contains("no matching B"));
        // Mismatched E name.
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
                {"name":"z","ph":"E","ts":2,"pid":1,"tid":1}]}"#,
        )
        .unwrap();
        assert!(validate(&doc).unwrap_err().contains("mismatched"));
        // X without dur.
        let doc =
            parse(r#"{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1,"tid":1}]}"#).unwrap();
        assert!(validate(&doc).unwrap_err().contains("dur"));
    }

    #[test]
    fn validate_accepts_matched_duration_pairs() {
        let doc = parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
                {"name":"b","ph":"B","ts":2,"pid":1,"tid":1},
                {"name":"b","ph":"E","ts":3,"pid":1,"tid":1},
                {"name":"","ph":"E","ts":4,"pid":1,"tid":1}]}"#,
        )
        .unwrap();
        let summary = validate(&doc).unwrap();
        assert_eq!(summary.durations, 2);
        assert_eq!(summary.lanes, 1);
        assert_eq!(summary.span_us, 4);
    }

    #[test]
    fn merge_remaps_pids_per_source() {
        let a = TraceCollector::new("r-a", "tr-000000000000000a");
        a.begin("x/y", 1);
        a.end("x/y", "ok");
        let b = TraceCollector::new("r-b", "tr-000000000000000b");
        b.begin("x/y", 1);
        b.end("x/y", "ok");
        let merged = merge(&[a.to_json(), b.to_json()]).unwrap();
        validate(&merged).expect("merged trace validates");
        let pids: std::collections::BTreeSet<u64> = merged
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| e.get("pid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(pids, std::collections::BTreeSet::from([1, 2]));
        let sources = merged
            .get("otherData")
            .unwrap()
            .get("merged")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[1].get("run").unwrap().as_str(), Some("r-b"));
    }

    #[test]
    fn write_produces_a_parseable_file() {
        let dir = std::env::temp_dir().join(format!("repro-traceviz-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tc = TraceCollector::new("r9", "tr-0000000000000009");
        tc.begin("a/b", 1);
        tc.end("a/b", "ok");
        let path = tc.write(&dir).unwrap();
        assert_eq!(path, trace_path(&dir, "r9"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        validate(&parse(text.trim()).unwrap()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
