//! Hand-rolled JSON: escaping, a value tree, a writer, and a small strict
//! parser.
//!
//! The workspace is offline (no serde), and telemetry output must be
//! consumable by standard tooling (`jq`, Python, spreadsheets), so this
//! module implements exactly the JSON subset the telemetry layer needs:
//! objects, arrays, strings, booleans, null, and numbers that are either
//! `u64`/`i64` integers or finite `f64`s. The parser exists so the
//! workspace's own tests and the `telemetry-report` viewer can read back
//! what the writer produced without an external dependency.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes a string for inclusion in a JSON document (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

/// Appends the escaped form of `s` to `out`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly; telemetry
    /// counters are written as integers and read back via [`Json::as_u64`].
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys, so output is deterministic).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object field lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Renders the value with two-space indentation, one field or element
    /// per line — for documents meant to be read by humans (SARIF logs,
    /// lint reports) rather than streamed line-per-record.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => {
                out.push_str(&self.to_string());
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: byte offset and description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(fields: I) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\r\u{08}\u{0C}"), "\\r\\b\\f");
        assert_eq!(escape("\u{01}"), "\\u0001");
        assert_eq!(escape("\u{1F}"), "\\u001f");
        // The first printable character must not be escaped.
        assert_eq!(escape(" "), " ");
        // Unicode beyond ASCII passes through unescaped (JSON allows it).
        assert_eq!(escape("héllo"), "héllo");
    }

    #[test]
    fn writer_and_parser_round_trip() {
        let v = obj([
            ("name", Json::from("bench\"quoted\"")),
            ("count", Json::from(12345u64)),
            ("rate", Json::from(0.5f64)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::from(1u64), Json::from("two"), Json::Bool(false)]),
            ),
        ]);
        let text = v.to_string();
        let back = parse(&text).expect("round trip parses");
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn integers_print_without_exponent_or_fraction() {
        assert_eq!(Json::from(0u64).to_string(), "0");
        assert_eq!(Json::from(1_000_000_007u64).to_string(), "1000000007");
        assert_eq!(Json::from(2.5f64).to_string(), "2.5");
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\x\"",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn pretty_output_is_indented_and_round_trips() {
        let v = obj([
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(Default::default())),
            ("nested", obj([("k", Json::Arr(vec![Json::from(1u64)]))])),
        ]);
        let pretty = v.to_pretty_string();
        assert!(pretty.contains("\"nested\": {\n"));
        assert!(pretty.contains("\"empty_arr\": []"));
        assert!(pretty.contains("    \"k\": [\n"));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_escapes_back() {
        let v = parse("\"a\\n\\t\\\"\\\\\\u0041\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\A");
    }
}
