//! Run manifests: one JSON document per experiment invocation recording
//! what ran, under which configuration, and what the counters said.
//!
//! The manifest is the reconciliation point of the telemetry layer: its
//! per-run counters are copied straight from the simulator's own
//! statistics structures, so a consumer can cross-check the event stream
//! (and the printed tables) against it without re-running anything.

use crate::json::{obj, Json};
use crate::metrics::MetricsSnapshot;
use crate::span::SpanRegistry;
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Counters and identity for one benchmark run inside an experiment.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// Benchmark label (`perl`, `gcc`, …).
    pub label: String,
    /// Human-readable description of the predictor configuration.
    pub config: String,
    /// Dynamic instructions replayed.
    pub instructions: u64,
    /// Named counters copied from the simulator's statistics
    /// (`tc.lookups`, `class.ijmp.executed`, …). A `BTreeMap` so the
    /// manifest is byte-stable across runs.
    pub counters: BTreeMap<String, u64>,
    /// Wall-clock nanoseconds for this run.
    pub wall_ns: u64,
}

impl RunRecord {
    /// Creates a record for `label` under `config`.
    pub fn new(label: impl Into<String>, config: impl Into<String>) -> Self {
        RunRecord {
            label: label.into(),
            config: config.into(),
            ..RunRecord::default()
        }
    }

    /// Adds `n` to the named counter.
    pub fn count(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// The value of a named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    fn to_json(&self) -> Json {
        obj([
            ("label", Json::from(self.label.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("instructions", Json::from(self.instructions)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::from(v)))
                        .collect(),
                ),
            ),
            ("wall_ns", Json::from(self.wall_ns)),
        ])
    }
}

/// The manifest for one experiment invocation (one table binary run).
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    /// Which experiment produced this (`table1`, `repro_all`, …).
    pub tool: String,
    /// The `REPRO_SCALE` the run used (`quick`, `standard`, `full`).
    pub scale: String,
    /// The `REPRO_TELEMETRY` mode (`summary` or `events`).
    pub mode: String,
    /// Per-benchmark instruction budget at this scale.
    pub instruction_budget: u64,
    /// One record per benchmark × configuration executed.
    pub runs: Vec<RunRecord>,
    /// Events captured to the JSONL stream (0 in `summary` mode).
    pub events_recorded: u64,
    /// Events lost to ring overflow.
    pub events_dropped: u64,
    /// Wall-clock nanoseconds for the whole invocation.
    pub wall_ns: u64,
}

impl RunManifest {
    /// Creates a manifest shell for `tool`.
    pub fn new(tool: impl Into<String>) -> Self {
        RunManifest {
            tool: tool.into(),
            ..RunManifest::default()
        }
    }

    /// Appends a completed run record.
    pub fn push_run(&mut self, run: RunRecord) {
        self.runs.push(run);
    }

    /// Sums a named counter across all runs.
    pub fn total(&self, counter: &str) -> u64 {
        self.runs.iter().map(|r| r.counter(counter)).sum()
    }

    /// The manifest as a JSON document, embedding span timings and a
    /// metrics snapshot.
    pub fn to_json(&self, spans: &SpanRegistry, metrics: &MetricsSnapshot) -> Json {
        obj([
            ("tool", Json::from(self.tool.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            ("telemetry_mode", Json::from(self.mode.as_str())),
            ("instruction_budget", Json::from(self.instruction_budget)),
            (
                "runs",
                Json::Arr(self.runs.iter().map(RunRecord::to_json).collect()),
            ),
            ("events_recorded", Json::from(self.events_recorded)),
            ("events_dropped", Json::from(self.events_dropped)),
            ("spans", spans.to_json()),
            ("metrics", metrics.to_json()),
            ("wall_ns", Json::from(self.wall_ns)),
        ])
    }

    /// Writes the manifest as pretty-stable single-line JSON plus a
    /// trailing newline.
    pub fn write_to<W: Write>(
        &self,
        out: &mut W,
        spans: &SpanRegistry,
        metrics: &MetricsSnapshot,
    ) -> io::Result<()> {
        writeln!(out, "{}", self.to_json(spans, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn manifest_round_trips_through_json() {
        let mut manifest = RunManifest::new("table1");
        manifest.scale = "quick".to_string();
        manifest.mode = "events".to_string();
        manifest.instruction_budget = 100_000;

        let mut run = RunRecord::new("perl", "target-cache 512-entry tagless");
        run.instructions = 100_000;
        run.count("tc.lookups", 750);
        run.count("tc.hits", 500);
        run.count("tc.misses", 250);
        manifest.push_run(run);
        manifest.events_recorded = 250;

        let registry = MetricsRegistry::new();
        registry.counter("harness.branches").add(9);
        let spans = SpanRegistry::new();
        {
            let _g = spans.span("harness-replay");
        }

        let mut buf = Vec::new();
        manifest
            .write_to(&mut buf, &spans, &registry.snapshot())
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = parse(text.trim()).expect("manifest parses");

        assert_eq!(v.get("tool").unwrap().as_str(), Some("table1"));
        assert_eq!(v.get("scale").unwrap().as_str(), Some("quick"));
        let runs = v.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("label").unwrap().as_str(), Some("perl"));
        let counters = runs[0].get("counters").unwrap();
        assert_eq!(counters.get("tc.lookups").unwrap().as_u64(), Some(750));
        // The reconciliation invariant consumers rely on.
        assert_eq!(
            counters.get("tc.hits").unwrap().as_u64().unwrap()
                + counters.get("tc.misses").unwrap().as_u64().unwrap(),
            counters.get("tc.lookups").unwrap().as_u64().unwrap()
        );
        assert_eq!(
            v.get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("harness.branches")
                .unwrap()
                .as_u64(),
            Some(9)
        );
        assert!(v
            .get("spans")
            .unwrap()
            .get("harness-replay")
            .unwrap()
            .get("count")
            .unwrap()
            .as_u64()
            .is_some());
    }

    #[test]
    fn totals_sum_across_runs() {
        let mut m = RunManifest::new("table2");
        for (label, hits) in [("perl", 10u64), ("gcc", 32)] {
            let mut r = RunRecord::new(label, "btb");
            r.count("tc.hits", hits);
            m.push_run(r);
        }
        assert_eq!(m.total("tc.hits"), 42);
        assert_eq!(m.total("absent"), 0);
    }
}
