//! Run manifests: one JSON document per experiment invocation recording
//! what ran, under which configuration, and what the counters said.
//!
//! The manifest is the reconciliation point of the telemetry layer: its
//! per-run counters are copied straight from the simulator's own
//! statistics structures, so a consumer can cross-check the event stream
//! (and the printed tables) against it without re-running anything.

use crate::json::{obj, Json};
use crate::metrics::MetricsSnapshot;
use crate::prof::PhaseStat;
use crate::span::SpanRegistry;
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Instructions (or events) per second given a count and elapsed
/// nanoseconds; 0 when no time elapsed.
pub fn per_sec(count: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        count as f64 * 1e9 / wall_ns as f64
    }
}

/// Counters and identity for one benchmark run inside an experiment.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// Benchmark label (`perl`, `gcc`, …).
    pub label: String,
    /// Human-readable description of the predictor configuration.
    pub config: String,
    /// Dynamic instructions replayed.
    pub instructions: u64,
    /// Named counters copied from the simulator's statistics
    /// (`tc.lookups`, `class.ijmp.executed`, …). A `BTreeMap` so the
    /// manifest is byte-stable across runs.
    pub counters: BTreeMap<String, u64>,
    /// Wall-clock nanoseconds for this run.
    pub wall_ns: u64,
}

impl RunRecord {
    /// Creates a record for `label` under `config`.
    pub fn new(label: impl Into<String>, config: impl Into<String>) -> Self {
        RunRecord {
            label: label.into(),
            config: config.into(),
            ..RunRecord::default()
        }
    }

    /// Adds `n` to the named counter.
    pub fn count(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// The value of a named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    fn to_json(&self) -> Json {
        obj([
            ("label", Json::from(self.label.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("instructions", Json::from(self.instructions)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::from(v)))
                        .collect(),
                ),
            ),
            ("wall_ns", Json::from(self.wall_ns)),
        ])
    }
}

/// The outcome of one experiment-runner cell (an `experiment × benchmark`
/// unit of work), as recorded in the manifest's `cells` array.
///
/// Written by the fault-tolerant job runner so a manifest documents not
/// just *what* numbers were produced but *how reliably*: attempts taken,
/// deadline kills survived, and whether the result was resumed from a
/// previous run's journal instead of recomputed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellRecord {
    /// Cell identity, `experiment/benchmark` (e.g. `table4/perl`).
    pub cell: String,
    /// Whether the cell ultimately produced data.
    pub ok: bool,
    /// Attempts executed (1 = first try succeeded; 0 = resumed).
    pub attempts: u32,
    /// Attempts killed by the per-cell deadline watchdog.
    pub deadline_kills: u32,
    /// Whether the result was restored from a journal instead of run.
    pub resumed: bool,
    /// Failure reason when `ok` is false.
    pub reason: Option<String>,
    /// Wall-clock milliseconds spent across all attempts.
    pub wall_ms: u64,
    /// Simulated instructions the cell processed (0 when unknown, e.g.
    /// records journaled before this field existed).
    pub instructions: u64,
}

impl CellRecord {
    fn to_json(&self) -> Json {
        let mut fields = std::collections::BTreeMap::from([
            ("cell".to_string(), Json::from(self.cell.as_str())),
            ("ok".to_string(), Json::Bool(self.ok)),
            ("attempts".to_string(), Json::from(self.attempts as u64)),
            (
                "deadline_kills".to_string(),
                Json::from(self.deadline_kills as u64),
            ),
            ("resumed".to_string(), Json::Bool(self.resumed)),
            ("wall_ms".to_string(), Json::from(self.wall_ms)),
            ("instructions".to_string(), Json::from(self.instructions)),
            (
                "instr_per_sec".to_string(),
                Json::from(per_sec(self.instructions, self.wall_ms * 1_000_000)),
            ),
        ]);
        if let Some(reason) = &self.reason {
            fields.insert("reason".to_string(), Json::from(reason.as_str()));
        }
        Json::Obj(fields)
    }
}

/// One fixed-tick snapshot of a running campaign, as captured by the
/// progress sampler into the manifest's `timeseries` section.
///
/// Rows give the manifest the same "phase behavior over time" lens the
/// SimPoint line of work applies to programs: how throughput and cell
/// completion evolved over the run, not just the final totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SampleRow {
    /// Milliseconds since campaign start (monotonic clock).
    pub t_ms: u64,
    /// Cells with a final outcome at this tick.
    pub done: u64,
    /// Cells with an attempt in flight at this tick.
    pub active: u64,
    /// Cumulative values of key counters at this tick (subset of the
    /// metrics registry, chosen by the sampler).
    pub counters: BTreeMap<String, u64>,
}

impl SampleRow {
    fn to_json(&self) -> Json {
        obj([
            ("t_ms", Json::from(self.t_ms)),
            ("done", Json::from(self.done)),
            ("active", Json::from(self.active)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::from(v)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The manifest for one experiment invocation (one table binary run).
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    /// Which experiment produced this (`table1`, `repro_all`, …).
    pub tool: String,
    /// The campaign's correlation id (`tr-…`; empty when the invocation
    /// predates correlation ids or never minted one).
    pub trace_id: String,
    /// The `REPRO_SCALE` the run used (`quick`, `standard`, `full`).
    pub scale: String,
    /// The `REPRO_TELEMETRY` mode (`summary` or `events`).
    pub mode: String,
    /// The `REPRO_PROF` mode (`off`, `spans`, or `full`).
    pub prof_mode: String,
    /// Per-benchmark instruction budget at this scale.
    pub instruction_budget: u64,
    /// One record per benchmark × configuration executed.
    pub runs: Vec<RunRecord>,
    /// One record per job-runner cell, when the invocation went through
    /// the fault-tolerant runner (empty otherwise).
    pub cells: Vec<CellRecord>,
    /// Events captured to the JSONL stream (0 in `summary` mode).
    pub events_recorded: u64,
    /// Events lost to ring overflow.
    pub events_dropped: u64,
    /// Wall-clock nanoseconds for the whole invocation.
    pub wall_ns: u64,
    /// Hot-path phase totals (`REPRO_PROF=full` only; empty otherwise).
    pub hot_phases: Vec<PhaseStat>,
    /// Fixed-tick campaign snapshots from the progress sampler
    /// (`REPRO_PROGRESS=on` campaigns only; empty otherwise).
    pub timeseries: Vec<SampleRow>,
}

impl RunManifest {
    /// Creates a manifest shell for `tool`.
    pub fn new(tool: impl Into<String>) -> Self {
        RunManifest {
            tool: tool.into(),
            ..RunManifest::default()
        }
    }

    /// Appends a completed run record.
    pub fn push_run(&mut self, run: RunRecord) {
        self.runs.push(run);
    }

    /// Sums a named counter across all runs.
    pub fn total(&self, counter: &str) -> u64 {
        self.runs.iter().map(|r| r.counter(counter)).sum()
    }

    /// Total simulated instructions across all runs.
    pub fn total_instructions(&self) -> u64 {
        self.runs.iter().map(|r| r.instructions).sum()
    }

    /// The throughput-accounting section: per-run and aggregate
    /// instructions/sec and predictions/sec derived from the run records
    /// themselves, so consumers never recompute rates differently.
    fn perf_json(&self) -> Json {
        let total_instr = self.total_instructions();
        let run_wall: u64 = self.runs.iter().map(|r| r.wall_ns).sum();
        let branches = self.total("branches");
        obj([
            ("instructions", Json::from(total_instr)),
            ("run_wall_ns", Json::from(run_wall)),
            ("instr_per_sec", Json::from(per_sec(total_instr, run_wall))),
            ("predictions", Json::from(branches)),
            (
                "predictions_per_sec",
                Json::from(per_sec(branches, run_wall)),
            ),
            (
                "runs",
                Json::Arr(
                    self.runs
                        .iter()
                        .map(|r| {
                            obj([
                                ("label", Json::from(r.label.as_str())),
                                ("config", Json::from(r.config.as_str())),
                                (
                                    "instr_per_sec",
                                    Json::from(per_sec(r.instructions, r.wall_ns)),
                                ),
                                (
                                    "predictions_per_sec",
                                    Json::from(per_sec(r.counter("branches"), r.wall_ns)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The trace-store section: cache effectiveness of the on-disk trace
    /// store, derived from the `trace_store.*` counters the experiment
    /// runner records. `None` when the invocation never touched the
    /// store (so older manifests and store-free tools stay byte-stable).
    fn trace_store_json(metrics: &MetricsSnapshot) -> Option<Json> {
        let hits = metrics.counter("trace_store.hits");
        let misses = metrics.counter("trace_store.misses");
        if hits + misses == 0 {
            return None;
        }
        let decoded = metrics.counter("trace_store.decoded_instructions");
        let decode_ns = metrics.counter("trace_store.decode_ns");
        Some(obj([
            ("hits", Json::from(hits)),
            ("misses", Json::from(misses)),
            (
                "records",
                Json::from(metrics.counter("trace_store.records")),
            ),
            (
                "bytes_written",
                Json::from(metrics.counter("trace_store.bytes_written")),
            ),
            (
                "bytes_read",
                Json::from(metrics.counter("trace_store.bytes_read")),
            ),
            ("decoded_instructions", Json::from(decoded)),
            ("decode_ns", Json::from(decode_ns)),
            (
                "decode_instr_per_sec",
                Json::from(per_sec(decoded, decode_ns)),
            ),
        ]))
    }

    /// The phase-sampling section: how much of the campaign was
    /// simulated under SimPoint sampling, derived from the `sampling.*`
    /// counters. `None` when sampling never ran (so exact-campaign
    /// manifests keep their historical shape). `simulated_fraction` is
    /// the cost ratio — sampled instructions (warm-up included) over
    /// the instructions exact simulation would have replayed.
    fn sampling_json(metrics: &MetricsSnapshot) -> Option<Json> {
        let sampled = metrics.counter("sampling.sampled_instructions");
        let chunks = metrics.counter("sampling.chunks");
        if sampled + chunks == 0 {
            return None;
        }
        let total = metrics.counter("sampling.total_instructions");
        Some(obj([
            ("chunks", Json::from(chunks)),
            ("phases", Json::from(metrics.counter("sampling.phases"))),
            ("shards", Json::from(metrics.counter("sampling.shards"))),
            ("sampled_instructions", Json::from(sampled)),
            ("total_instructions", Json::from(total)),
            (
                "simulated_fraction",
                Json::from(if total == 0 {
                    0.0
                } else {
                    sampled as f64 / total as f64
                }),
            ),
        ]))
    }

    /// The manifest as a JSON document, embedding span timings and a
    /// metrics snapshot.
    pub fn to_json(&self, spans: &SpanRegistry, metrics: &MetricsSnapshot) -> Json {
        let json = obj([
            ("tool", Json::from(self.tool.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            ("telemetry_mode", Json::from(self.mode.as_str())),
            ("prof_mode", Json::from(self.prof_mode.as_str())),
            ("instruction_budget", Json::from(self.instruction_budget)),
            (
                "runs",
                Json::Arr(self.runs.iter().map(RunRecord::to_json).collect()),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(CellRecord::to_json).collect()),
            ),
            ("events_recorded", Json::from(self.events_recorded)),
            ("events_dropped", Json::from(self.events_dropped)),
            ("spans", spans.to_json()),
            (
                "hot_phases",
                Json::Obj(
                    self.hot_phases
                        .iter()
                        .map(|s| {
                            (
                                s.name.clone(),
                                obj([
                                    ("count", Json::from(s.count)),
                                    ("total_ns", Json::from(s.total_ns)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("perf", self.perf_json()),
            ("metrics", metrics.to_json()),
            ("wall_ns", Json::from(self.wall_ns)),
        ]);
        let Json::Obj(mut fields) = json else {
            unreachable!("obj() builds an object");
        };
        // Only stamped manifests carry the id, so tools that never mint
        // one keep their historical shape.
        if !self.trace_id.is_empty() {
            fields.insert("trace_id".to_string(), Json::from(self.trace_id.as_str()));
        }
        if let Some(store) = Self::trace_store_json(metrics) {
            fields.insert("trace_store".to_string(), store);
        }
        if let Some(sampling) = Self::sampling_json(metrics) {
            fields.insert("sampling".to_string(), sampling);
        }
        // Only campaigns with the sampler running carry a time series;
        // omitting the empty section keeps older manifests byte-stable.
        if !self.timeseries.is_empty() {
            fields.insert(
                "timeseries".to_string(),
                Json::Arr(self.timeseries.iter().map(SampleRow::to_json).collect()),
            );
        }
        Json::Obj(fields)
    }

    /// Writes the manifest as pretty-stable single-line JSON plus a
    /// trailing newline.
    pub fn write_to<W: Write>(
        &self,
        out: &mut W,
        spans: &SpanRegistry,
        metrics: &MetricsSnapshot,
    ) -> io::Result<()> {
        writeln!(out, "{}", self.to_json(spans, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn manifest_round_trips_through_json() {
        let mut manifest = RunManifest::new("table1");
        manifest.scale = "quick".to_string();
        manifest.mode = "events".to_string();
        manifest.instruction_budget = 100_000;

        let mut run = RunRecord::new("perl", "target-cache 512-entry tagless");
        run.instructions = 100_000;
        run.count("tc.lookups", 750);
        run.count("tc.hits", 500);
        run.count("tc.misses", 250);
        manifest.push_run(run);
        manifest.events_recorded = 250;

        let registry = MetricsRegistry::new();
        registry.counter("harness.branches").add(9);
        let spans = SpanRegistry::new();
        {
            let _g = spans.span("harness-replay");
        }

        let mut buf = Vec::new();
        manifest
            .write_to(&mut buf, &spans, &registry.snapshot())
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = parse(text.trim()).expect("manifest parses");

        assert_eq!(v.get("tool").unwrap().as_str(), Some("table1"));
        assert_eq!(v.get("scale").unwrap().as_str(), Some("quick"));
        let runs = v.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("label").unwrap().as_str(), Some("perl"));
        let counters = runs[0].get("counters").unwrap();
        assert_eq!(counters.get("tc.lookups").unwrap().as_u64(), Some(750));
        // The reconciliation invariant consumers rely on.
        assert_eq!(
            counters.get("tc.hits").unwrap().as_u64().unwrap()
                + counters.get("tc.misses").unwrap().as_u64().unwrap(),
            counters.get("tc.lookups").unwrap().as_u64().unwrap()
        );
        assert_eq!(
            v.get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("harness.branches")
                .unwrap()
                .as_u64(),
            Some(9)
        );
        assert!(v
            .get("spans")
            .unwrap()
            .get("harness-replay")
            .unwrap()
            .get("count")
            .unwrap()
            .as_u64()
            .is_some());
    }

    #[test]
    fn cell_records_serialize_with_optional_reason() {
        let mut m = RunManifest::new("repro_all");
        m.cells.push(CellRecord {
            cell: "table4/gcc".into(),
            ok: true,
            attempts: 1,
            deadline_kills: 0,
            resumed: false,
            reason: None,
            wall_ms: 12,
            instructions: 100_000,
        });
        m.cells.push(CellRecord {
            cell: "table4/perl".into(),
            ok: false,
            attempts: 3,
            deadline_kills: 1,
            resumed: false,
            reason: Some("panicked: injected".into()),
            wall_ms: 99,
            instructions: 0,
        });
        let registry = MetricsRegistry::new();
        let spans = SpanRegistry::new();
        let mut buf = Vec::new();
        m.write_to(&mut buf, &spans, &registry.snapshot()).unwrap();
        let v = parse(String::from_utf8(buf).unwrap().trim()).unwrap();
        let cells = v.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("cell").unwrap().as_str(), Some("table4/gcc"));
        assert!(cells[0].get("reason").is_none());
        assert_eq!(cells[1].get("attempts").unwrap().as_u64(), Some(3));
        assert_eq!(
            cells[1].get("reason").unwrap().as_str(),
            Some("panicked: injected")
        );
    }

    #[test]
    fn perf_section_reports_throughput() {
        let mut m = RunManifest::new("table1");
        m.prof_mode = "full".to_string();
        let mut run = RunRecord::new("perl", "btb");
        run.instructions = 1_000_000;
        run.wall_ns = 500_000_000; // 0.5 s → 2 M instr/sec
        run.count("branches", 100_000);
        m.push_run(run);
        m.hot_phases.push(PhaseStat {
            name: "btb-lookup".to_string(),
            count: 100_000,
            total_ns: 42_000,
        });

        let registry = MetricsRegistry::new();
        let spans = SpanRegistry::new();
        let v = m.to_json(&spans, &registry.snapshot());
        assert_eq!(v.get("prof_mode").unwrap().as_str(), Some("full"));
        let perf = v.get("perf").unwrap();
        assert_eq!(perf.get("instructions").unwrap().as_u64(), Some(1_000_000));
        let ips = perf.get("instr_per_sec").unwrap().as_f64().unwrap();
        assert!((ips - 2_000_000.0).abs() < 1.0, "{ips}");
        let pps = perf.get("predictions_per_sec").unwrap().as_f64().unwrap();
        assert!((pps - 200_000.0).abs() < 1.0, "{pps}");
        let per_run = perf.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(per_run[0].get("label").unwrap().as_str(), Some("perl"));
        let hot = v.get("hot_phases").unwrap();
        assert_eq!(
            hot.get("btb-lookup")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(100_000)
        );
        // And the whole document still parses strictly.
        assert!(parse(&v.to_string()).is_ok());
    }

    #[test]
    fn trace_store_section_appears_only_when_the_store_was_touched() {
        let m = RunManifest::new("table4");
        let spans = SpanRegistry::new();

        // No trace_store.* counters → no section at all.
        let registry = MetricsRegistry::new();
        let v = m.to_json(&spans, &registry.snapshot());
        assert!(v.get("trace_store").is_none());

        // Hits and misses recorded → section with derived decode rate.
        let registry = MetricsRegistry::new();
        registry.counter("trace_store.hits").add(7);
        registry.counter("trace_store.misses").add(1);
        registry.counter("trace_store.records").add(1);
        registry.counter("trace_store.bytes_written").add(1024);
        registry.counter("trace_store.bytes_read").add(7 * 1024);
        registry
            .counter("trace_store.decoded_instructions")
            .add(700_000);
        registry.counter("trace_store.decode_ns").add(350_000_000);
        let v = m.to_json(&spans, &registry.snapshot());
        let store = v.get("trace_store").expect("section present");
        assert_eq!(store.get("hits").unwrap().as_u64(), Some(7));
        assert_eq!(store.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(store.get("records").unwrap().as_u64(), Some(1));
        assert_eq!(store.get("bytes_read").unwrap().as_u64(), Some(7168));
        let rate = store.get("decode_instr_per_sec").unwrap().as_f64().unwrap();
        assert!((rate - 2_000_000.0).abs() < 1.0, "{rate}");
        // And the embedded document still parses strictly.
        assert!(parse(&v.to_string()).is_ok());
    }

    #[test]
    fn sampling_section_appears_only_when_sampling_ran() {
        let m = RunManifest::new("table1");
        let spans = SpanRegistry::new();

        // No sampling.* counters → no section at all.
        let registry = MetricsRegistry::new();
        let v = m.to_json(&spans, &registry.snapshot());
        assert!(v.get("sampling").is_none());

        // A sampled campaign's counters → section with the cost ratio.
        let registry = MetricsRegistry::new();
        registry.counter("sampling.chunks").add(98);
        registry.counter("sampling.phases").add(5);
        registry.counter("sampling.shards").add(5);
        registry
            .counter("sampling.sampled_instructions")
            .add(61_440);
        registry.counter("sampling.total_instructions").add(401_408);
        let v = m.to_json(&spans, &registry.snapshot());
        let sampling = v.get("sampling").expect("section present");
        assert_eq!(sampling.get("chunks").unwrap().as_u64(), Some(98));
        assert_eq!(sampling.get("phases").unwrap().as_u64(), Some(5));
        assert_eq!(sampling.get("shards").unwrap().as_u64(), Some(5));
        let fraction = sampling
            .get("simulated_fraction")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(
            (fraction - 61_440.0 / 401_408.0).abs() < 1e-12,
            "{fraction}"
        );
        assert!(parse(&v.to_string()).is_ok());
    }

    #[test]
    fn timeseries_section_appears_only_when_sampled() {
        let spans = SpanRegistry::new();
        let registry = MetricsRegistry::new();

        let mut m = RunManifest::new("repro_all");
        let v = m.to_json(&spans, &registry.snapshot());
        assert!(v.get("timeseries").is_none());

        m.timeseries.push(SampleRow {
            t_ms: 1000,
            done: 3,
            active: 4,
            counters: BTreeMap::from([("harness.instructions".to_string(), 300_000u64)]),
        });
        m.timeseries.push(SampleRow {
            t_ms: 2000,
            done: 9,
            active: 4,
            counters: BTreeMap::from([("harness.instructions".to_string(), 900_000u64)]),
        });
        let v = m.to_json(&spans, &registry.snapshot());
        let rows = v.get("timeseries").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("t_ms").unwrap().as_u64(), Some(1000));
        assert_eq!(rows[1].get("done").unwrap().as_u64(), Some(9));
        assert_eq!(
            rows[1]
                .get("counters")
                .unwrap()
                .get("harness.instructions")
                .unwrap()
                .as_u64(),
            Some(900_000)
        );
        assert!(parse(&v.to_string()).is_ok());
    }

    #[test]
    fn trace_id_appears_only_when_stamped() {
        let spans = SpanRegistry::new();
        let registry = MetricsRegistry::new();
        let mut m = RunManifest::new("table4");
        assert!(m
            .to_json(&spans, &registry.snapshot())
            .get("trace_id")
            .is_none());
        m.trace_id = "tr-9f2ab04c71d3e586".to_string();
        let v = m.to_json(&spans, &registry.snapshot());
        assert_eq!(
            v.get("trace_id").unwrap().as_str(),
            Some("tr-9f2ab04c71d3e586")
        );
    }

    #[test]
    fn per_sec_handles_zero_time() {
        assert_eq!(per_sec(100, 0), 0.0);
        assert_eq!(per_sec(0, 100), 0.0);
        assert!((per_sec(1, 1_000_000_000) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn totals_sum_across_runs() {
        let mut m = RunManifest::new("table2");
        for (label, hits) in [("perl", 10u64), ("gcc", 32)] {
            let mut r = RunRecord::new(label, "btb");
            r.count("tc.hits", hits);
            m.push_run(r);
        }
        assert_eq!(m.total("tc.hits"), 42);
        assert_eq!(m.total("absent"), 0);
    }
}
