//! The one place environment variables become telemetry configuration.
//!
//! Everything downstream of a binary's `main` works against an explicit
//! [`TelemetryConfig`] (and the session context the experiments crate
//! builds from it) — never against `std::env` directly. That keeps the
//! knob surface auditable in one struct, makes sessions independent
//! (two campaigns in one process can run different configs, which the
//! planned `repro-serve` daemon requires), and keeps the strict-parse
//! policy uniform: a typo in any knob is a loud error listing the
//! accepted values, not silently discarded telemetry.
//!
//! | variable | field | default |
//! |----------|-------|---------|
//! | `REPRO_TELEMETRY` | `mode` | `off` |
//! | `REPRO_PROF` | `prof` | `spans` |
//! | `REPRO_TELEMETRY_DIR` | `dir` | `results/telemetry` |
//! | `REPRO_PROGRESS` | `progress` | `off` |
//! | `REPRO_PROGRESS_DIR` | `progress_dir` | `results/progress` |
//! | `REPRO_PROGRESS_TICK_MS` | `progress_tick` | `1000` |
//! | `REPRO_TRACE_EXPORT` | `trace_export` | `off` |
//! | `REPRO_TRACEVIZ_DIR` | `traceviz_dir` | `results/traceviz` |
//! | `REPRO_FLIGHT_DIR` | `flight_dir` | `results/flightrec` |
//! | `REPRO_FLIGHT_CAP` | `flight_capacity` | `256` |

use crate::flight::DEFAULT_FLIGHT_CAPACITY;
use crate::prof::ProfMode;
use crate::TelemetryMode;
use std::path::PathBuf;
use std::time::Duration;

/// Default output directory for session manifests and event streams.
pub const DEFAULT_TELEMETRY_DIR: &str = "results/telemetry";
/// Default output directory for campaign progress streams.
pub const DEFAULT_PROGRESS_DIR: &str = "results/progress";
/// Default heartbeat/sampler period in milliseconds.
pub const DEFAULT_PROGRESS_TICK_MS: u64 = 1000;
/// Default output directory for Chrome trace exports.
pub const DEFAULT_TRACEVIZ_DIR: &str = "results/traceviz";
/// Default output directory for flight-recorder dumps.
pub const DEFAULT_FLIGHT_DIR: &str = "results/flightrec";

/// Which trace-export format a campaign writes (`REPRO_TRACE_EXPORT`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceExportMode {
    /// No export (the default).
    #[default]
    Off,
    /// Chrome trace-event JSON, loadable in Perfetto/chrome://tracing.
    Chrome,
}

impl TraceExportMode {
    /// The accepted `REPRO_TRACE_EXPORT` values, for error messages.
    pub const ACCEPTED: &'static str = "off, chrome";

    /// Parses a `REPRO_TRACE_EXPORT` value (case-insensitive), rejecting
    /// typos loudly like every other knob.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Ok(TraceExportMode::Off),
            "chrome" => Ok(TraceExportMode::Chrome),
            other => Err(format!(
                "unrecognized REPRO_TRACE_EXPORT value {other:?}; accepted values: {}",
                TraceExportMode::ACCEPTED
            )),
        }
    }

    /// Whether any export is written.
    pub fn enabled(self) -> bool {
        self != TraceExportMode::Off
    }
}

/// A session's full telemetry configuration, parsed once from the
/// environment (or built directly in tests and embedders).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Capture depth (`REPRO_TELEMETRY`).
    pub mode: TelemetryMode,
    /// Profiling depth (`REPRO_PROF`).
    pub prof: ProfMode,
    /// Where manifests/events/folded stacks go (`REPRO_TELEMETRY_DIR`).
    pub dir: PathBuf,
    /// Whether campaigns write a live progress stream (`REPRO_PROGRESS`).
    pub progress: bool,
    /// Where progress streams go (`REPRO_PROGRESS_DIR`).
    pub progress_dir: PathBuf,
    /// Heartbeat/sampler period (`REPRO_PROGRESS_TICK_MS`).
    pub progress_tick: Duration,
    /// Trace-export format (`REPRO_TRACE_EXPORT`).
    pub trace_export: TraceExportMode,
    /// Where Chrome trace exports go (`REPRO_TRACEVIZ_DIR`).
    pub traceviz_dir: PathBuf,
    /// Where flight-recorder dumps go (`REPRO_FLIGHT_DIR`).
    pub flight_dir: PathBuf,
    /// Flight-recorder ring capacity (`REPRO_FLIGHT_CAP`).
    pub flight_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            mode: TelemetryMode::Off,
            prof: ProfMode::Spans,
            dir: PathBuf::from(DEFAULT_TELEMETRY_DIR),
            progress: false,
            progress_dir: PathBuf::from(DEFAULT_PROGRESS_DIR),
            progress_tick: Duration::from_millis(DEFAULT_PROGRESS_TICK_MS),
            trace_export: TraceExportMode::Off,
            traceviz_dir: PathBuf::from(DEFAULT_TRACEVIZ_DIR),
            flight_dir: PathBuf::from(DEFAULT_FLIGHT_DIR),
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

impl TelemetryConfig {
    /// Everything disabled — for tests and library callers that want a
    /// context with no environment coupling at all.
    pub fn off() -> TelemetryConfig {
        TelemetryConfig {
            prof: ProfMode::Off,
            ..TelemetryConfig::default()
        }
    }

    /// Parses the full knob surface from the environment. This is the
    /// single parse site: binaries call it once in `main` (via the
    /// session constructors) and thread the result everywhere else.
    ///
    /// Any unrecognized value is an `Err` naming the variable and the
    /// accepted values; binaries turn that into `eprintln` + exit 2.
    pub fn from_env() -> Result<TelemetryConfig, String> {
        let mut cfg = TelemetryConfig {
            mode: TelemetryMode::from_env()?,
            prof: ProfMode::from_env()?,
            ..TelemetryConfig::default()
        };
        if let Ok(v) = std::env::var("REPRO_TELEMETRY_DIR") {
            if !v.is_empty() {
                cfg.dir = PathBuf::from(v);
            }
        }
        cfg.progress = match std::env::var("REPRO_PROGRESS") {
            Ok(v) if v.is_empty() => false,
            Ok(v) => parse_progress(&v)?,
            Err(_) => false,
        };
        if let Ok(v) = std::env::var("REPRO_PROGRESS_DIR") {
            if !v.is_empty() {
                cfg.progress_dir = PathBuf::from(v);
            }
        }
        if let Ok(v) = std::env::var("REPRO_PROGRESS_TICK_MS") {
            if !v.is_empty() {
                cfg.progress_tick = Duration::from_millis(parse_tick_ms(&v)?);
            }
        }
        if let Ok(v) = std::env::var("REPRO_TRACE_EXPORT") {
            if !v.is_empty() {
                cfg.trace_export = TraceExportMode::parse(&v)?;
            }
        }
        if let Ok(v) = std::env::var("REPRO_TRACEVIZ_DIR") {
            if !v.is_empty() {
                cfg.traceviz_dir = PathBuf::from(v);
            }
        }
        if let Ok(v) = std::env::var("REPRO_FLIGHT_DIR") {
            if !v.is_empty() {
                cfg.flight_dir = PathBuf::from(v);
            }
        }
        if let Ok(v) = std::env::var("REPRO_FLIGHT_CAP") {
            if !v.is_empty() {
                cfg.flight_capacity = parse_flight_cap(&v)?;
            }
        }
        Ok(cfg)
    }
}

/// Accepted `REPRO_PROGRESS` values, for error messages.
pub const PROGRESS_ACCEPTED: &str = "off, on";

fn parse_progress(value: &str) -> Result<bool, String> {
    match value.to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Ok(false),
        "on" | "1" => Ok(true),
        other => Err(format!(
            "unrecognized REPRO_PROGRESS value {other:?}; accepted values: {PROGRESS_ACCEPTED}"
        )),
    }
}

fn parse_tick_ms(value: &str) -> Result<u64, String> {
    match value.parse::<u64>() {
        Ok(0) => Err("REPRO_PROGRESS_TICK_MS must be a positive integer (milliseconds)".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "unrecognized REPRO_PROGRESS_TICK_MS value {value:?}; expected a positive integer \
             (milliseconds)"
        )),
    }
}

fn parse_flight_cap(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(0) => Err("REPRO_FLIGHT_CAP must be a positive integer (events)".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "unrecognized REPRO_FLIGHT_CAP value {value:?}; expected a positive integer (events)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_documented_table() {
        let cfg = TelemetryConfig::default();
        assert_eq!(cfg.mode, TelemetryMode::Off);
        assert_eq!(cfg.prof, ProfMode::Spans);
        assert_eq!(cfg.dir, PathBuf::from(DEFAULT_TELEMETRY_DIR));
        assert!(!cfg.progress);
        assert_eq!(cfg.progress_dir, PathBuf::from(DEFAULT_PROGRESS_DIR));
        assert_eq!(cfg.progress_tick, Duration::from_millis(1000));
        assert_eq!(cfg.trace_export, TraceExportMode::Off);
        assert_eq!(cfg.traceviz_dir, PathBuf::from(DEFAULT_TRACEVIZ_DIR));
        assert_eq!(cfg.flight_dir, PathBuf::from(DEFAULT_FLIGHT_DIR));
        assert_eq!(cfg.flight_capacity, DEFAULT_FLIGHT_CAPACITY);
    }

    #[test]
    fn trace_export_parses_strictly() {
        assert_eq!(TraceExportMode::parse("off"), Ok(TraceExportMode::Off));
        assert_eq!(
            TraceExportMode::parse("Chrome"),
            Ok(TraceExportMode::Chrome)
        );
        assert!(TraceExportMode::Chrome.enabled());
        assert!(!TraceExportMode::Off.enabled());
        let err = TraceExportMode::parse("perfetto").unwrap_err();
        assert!(err.contains("REPRO_TRACE_EXPORT"), "{err}");
        assert!(err.contains("off, chrome"), "{err}");
    }

    #[test]
    fn flight_cap_parses_strictly() {
        assert_eq!(parse_flight_cap("512"), Ok(512));
        assert!(parse_flight_cap("0").is_err());
        assert!(parse_flight_cap("lots").is_err());
    }

    #[test]
    fn off_config_disables_profiling_too() {
        let cfg = TelemetryConfig::off();
        assert_eq!(cfg.prof, ProfMode::Off);
        assert!(!cfg.mode.enabled());
    }

    #[test]
    fn progress_values_parse_strictly() {
        assert_eq!(parse_progress("on"), Ok(true));
        assert_eq!(parse_progress("ON"), Ok(true));
        assert_eq!(parse_progress("1"), Ok(true));
        assert_eq!(parse_progress("off"), Ok(false));
        assert_eq!(parse_progress("0"), Ok(false));
        let err = parse_progress("yes").unwrap_err();
        assert!(err.contains("REPRO_PROGRESS"), "{err}");
        assert!(err.contains("off, on"), "{err}");
    }

    #[test]
    fn tick_values_parse_strictly() {
        assert_eq!(parse_tick_ms("250"), Ok(250));
        assert!(parse_tick_ms("0").is_err());
        assert!(parse_tick_ms("fast").is_err());
        assert!(parse_tick_ms("-5").is_err());
    }
}
