//! A fixed-tick background sampler.
//!
//! [`Sampler::every`] runs a callback on its own thread at a fixed
//! period until [`Sampler::stop`] (or drop) joins it. The campaign
//! runner uses one to emit heartbeat events and snapshot counters into
//! the manifest's time-series section while cells are in flight.
//!
//! The tick loop sleeps in short slices so stopping never waits for a
//! full period: a campaign that finishes 5 ms into a 1000 ms tick joins
//! the sampler in ~10 ms, not ~995 ms.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Granularity of the stop check while waiting out a tick.
const STOP_POLL: Duration = Duration::from_millis(10);

/// A background thread invoking a callback on a fixed tick.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawns a sampler calling `tick(elapsed)` every `period`, starting
    /// one period after spawn. `elapsed` is the time since the sampler
    /// started, so callbacks can stamp samples without their own clock.
    ///
    /// A `period` of zero is clamped to 1 ms rather than busy-spinning.
    pub fn every<F>(period: Duration, mut tick: F) -> Sampler
    where
        F: FnMut(Duration) + Send + 'static,
    {
        let period = period.max(Duration::from_millis(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("repro-sampler".to_string())
            .spawn(move || {
                let start = Instant::now();
                let mut next = start + period;
                loop {
                    // Sleep toward the next tick in slices, so a stop
                    // request lands promptly.
                    while Instant::now() < next {
                        if stop_flag.load(Ordering::Acquire) {
                            return;
                        }
                        let remaining = next.saturating_duration_since(Instant::now());
                        std::thread::sleep(remaining.min(STOP_POLL));
                    }
                    if stop_flag.load(Ordering::Acquire) {
                        return;
                    }
                    tick(start.elapsed());
                    // Schedule from the intended time, not from now, so
                    // a slow callback doesn't drift the cadence; but if
                    // we are more than a period behind, skip the missed
                    // ticks instead of bursting to catch up.
                    next += period;
                    let now = Instant::now();
                    if next < now {
                        next = now + period;
                    }
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread to stop and joins it. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sampler_ticks_repeatedly_then_stops() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let mut s = Sampler::every(Duration::from_millis(5), move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        // Generous window: even a loaded CI box gets several 5 ms ticks
        // in 300 ms.
        std::thread::sleep(Duration::from_millis(300));
        s.stop();
        let at_stop = count.load(Ordering::Relaxed);
        assert!(at_stop >= 2, "expected >= 2 ticks, got {at_stop}");
        // No ticks arrive after stop() returns.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(count.load(Ordering::Relaxed), at_stop);
    }

    #[test]
    fn elapsed_is_monotone_across_ticks() {
        let last = Arc::new(AtomicU64::new(0));
        let l = Arc::clone(&last);
        let ok = Arc::new(AtomicBool::new(true));
        let o = Arc::clone(&ok);
        let mut s = Sampler::every(Duration::from_millis(5), move |elapsed| {
            let now = elapsed.as_micros() as u64;
            if now < l.swap(now, Ordering::Relaxed) {
                o.store(false, Ordering::Relaxed);
            }
        });
        std::thread::sleep(Duration::from_millis(100));
        s.stop();
        assert!(ok.load(Ordering::Relaxed), "elapsed went backwards");
    }

    #[test]
    fn stop_is_prompt_even_with_a_long_period() {
        let mut s = Sampler::every(Duration::from_secs(3600), |_| {});
        let t = Instant::now();
        s.stop();
        assert!(
            t.elapsed() < Duration::from_millis(500),
            "stop took {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn drop_stops_without_hanging() {
        let s = Sampler::every(Duration::from_secs(3600), |_| {});
        let t = Instant::now();
        drop(s);
        assert!(t.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn zero_period_is_clamped_not_a_spin() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let mut s = Sampler::every(Duration::ZERO, move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(50));
        s.stop();
        let n = count.load(Ordering::Relaxed);
        // 1 ms clamp: at most ~50 ticks in 50 ms, not millions.
        assert!(n > 0 && n < 1000, "tick count {n}");
    }
}
