//! Named counters and log2-bucketed histograms behind cheap handles.
//!
//! The registry owns the name → instrument mapping; the handles it hands
//! out ([`Counter`], [`Histogram`]) are `Arc`-backed and cost one relaxed
//! atomic add per event, so they can sit on simulator hot paths. Cloning a
//! handle is cheap and all clones observe the same instrument.

use crate::json::{obj, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing named count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter (not owned by any registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two of `u64`, plus the
/// zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    /// `buckets[0]` counts zero samples; `buckets[k]` (k ≥ 1) counts
    /// samples whose value `v` has `v.ilog2() == k - 1`, i.e. the range
    /// `[2^(k-1), 2^k)`.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucketing by the sample's bit length keeps recording to a handful of
/// instructions while still answering the questions telemetry asks of
/// latencies and magnitudes ("how many mispredict bursts exceeded 2^10?").
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// The index of the bucket a value falls in: 0 for 0, else
/// `value.ilog2() + 1`.
pub fn bucket_index(value: u64) -> usize {
    match value {
        0 => 0,
        v => v.ilog2() as usize + 1,
    }
}

/// The `[lo, hi]` value range of a bucket index.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        k => (1 << (k - 1), (1 << k) - 1),
    }
}

impl Histogram {
    /// Creates a detached histogram (not owned by any registry).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (0 if empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// A copy of the raw bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    fn to_json(&self) -> Json {
        let buckets = self.buckets();
        // Only emit occupied buckets, keyed by their lower bound.
        let nonzero: Vec<Json> = buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                obj([
                    ("lo", Json::from(lo)),
                    ("hi", Json::from(hi)),
                    ("count", Json::from(n)),
                ])
            })
            .collect();
        obj([
            ("count", Json::from(self.count())),
            ("sum", Json::from(self.sum())),
            ("max", Json::from(self.max())),
            ("buckets", Json::Arr(nonzero)),
        ])
    }
}

/// A named value that can go up and down (queue depth, busy workers).
///
/// Stored as a `u64` because every gauge in the system is a count of
/// things; `set` replaces, `inc`/`dec` adjust (saturating at zero).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a detached gauge (not owned by any registry).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named [`Counter`]s and [`Histogram`]s.
///
/// Instrument lookup takes a lock; the returned handles do not. Register
/// once at setup time, then increment lock-free on the hot path.
///
/// # Example
///
/// ```
/// use sim_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let lookups = registry.counter("cache.lookups");
/// lookups.inc();
/// lookups.add(2);
/// assert_eq!(registry.snapshot().counter("cache.lookups"), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry(Arc<Mutex<RegistryInner>>);

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. All callers asking for the same name share one counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.0.lock().expect("metrics registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.0.lock().expect("metrics registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.0.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A point-in-time copy of every instrument's value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.0.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A point-in-time view of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The value of a counter (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of a gauge (0 if never registered).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Whether nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The snapshot as a JSON object: counter name → value, histogram
    /// name → `{count, sum, max, buckets}`. A `gauges` section appears
    /// only when at least one gauge was registered, so manifests from
    /// gauge-free tools keep their historical shape.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::from(v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.to_json()))
                .collect(),
        );
        let json = obj([("counters", counters), ("histograms", histograms)]);
        if self.gauges.is_empty() {
            return json;
        }
        let Json::Obj(mut fields) = json else {
            unreachable!("obj() builds an object");
        };
        fields.insert(
            "gauges".to_string(),
            Json::Obj(
                self.gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::from(v)))
                    .collect(),
            ),
        );
        Json::Obj(fields)
    }

    /// The snapshot in Prometheus text exposition format 0.0.4: every
    /// counter as a `counter` family, every gauge as a `gauge`, and
    /// every histogram as a full `histogram` family with cumulative
    /// `le`-labeled `_bucket` series (upper bounds taken from the log2
    /// bucket boundaries), `_sum`, and `_count`. Metric names are
    /// sanitized (`serve.queue_depth` → `serve_queue_depth`); the text
    /// always ends with a newline, as scrapers require.
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, &value) in &self.counters {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# HELP {name} Monotonic event count.");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, &value) in &self.gauges {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# HELP {name} Current level.");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in &self.histograms {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# HELP {name} Log2-bucketed sample distribution.");
            let _ = writeln!(out, "# TYPE {name} histogram");
            // Copy all values once: the handles are live, and the
            // exposition's +Inf bucket and _count must agree even if a
            // worker records mid-render.
            let buckets = histogram.buckets();
            let sum = histogram.sum();
            let count: u64 = buckets.iter().sum();
            // Emit one cumulative bucket per occupied power of two (and
            // every bucket below the highest occupied one, so the series
            // is a proper CDF), then +Inf.
            let highest = buckets.iter().rposition(|&n| n > 0);
            let mut cumulative = 0u64;
            if let Some(highest) = highest {
                for (index, &bucket_count) in buckets.iter().enumerate().take(highest + 1) {
                    cumulative += bucket_count;
                    let (_, le) = bucket_bounds(index);
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
            let _ = writeln!(out, "{name}_sum {sum}");
            let _ = writeln!(out, "{name}_count {count}");
        }
        out
    }
}

/// Sanitizes a dotted instrument name into the Prometheus identifier
/// charset `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Strictly checks a Prometheus text-format 0.0.4 exposition: name
/// syntax, `# TYPE` declarations preceding their samples, no duplicate
/// series, cumulative non-decreasing histogram `_bucket` series ending
/// in `+Inf` with a matching `_count`, and a trailing newline. Returns
/// the number of sample lines on success, the first violation
/// otherwise.
///
/// This is the shared test helper behind the `/metrics` contract tests;
/// it intentionally rejects anything a real scraper would have to
/// guess about.
pub fn check_prometheus_text(text: &str) -> Result<usize, String> {
    if text.is_empty() {
        return Err("exposition is empty".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition does not end with a newline".into());
    }
    fn is_name(s: &str) -> bool {
        !s.is_empty()
            && s.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    /// The family a series belongs to: `x_bucket`/`x_sum`/`x_count`
    /// resolve to `x` when `x` was declared a histogram.
    fn family<'a>(series: &'a str, types: &BTreeMap<String, String>) -> &'a str {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = series.strip_suffix(suffix) {
                if types.get(base).map(String::as_str) == Some("histogram") {
                    return base;
                }
            }
        }
        series
    }
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    // Per-histogram bucket state: (last le upper bound, last cumulative
    // count, saw +Inf, count series value).
    #[derive(Default)]
    struct HistState {
        last_le: Option<f64>,
        last_cumulative: u64,
        inf: Option<u64>,
        count: Option<u64>,
    }
    let mut hists: BTreeMap<String, HistState> = BTreeMap::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let at = |what: &str| format!("line {}: {what}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            match parts.next() {
                Some("TYPE") => {
                    let name = parts.next().ok_or_else(|| at("# TYPE without a name"))?;
                    if !is_name(name) {
                        return Err(at(&format!("invalid metric name {name:?}")));
                    }
                    let kind = parts.next().ok_or_else(|| at("# TYPE without a type"))?;
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        return Err(at(&format!("unknown metric type {kind:?}")));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(at(&format!("duplicate # TYPE for {name}")));
                    }
                }
                Some("HELP") => {
                    let name = parts.next().ok_or_else(|| at("# HELP without a name"))?;
                    if !is_name(name) {
                        return Err(at(&format!("invalid metric name {name:?}")));
                    }
                }
                _ => {} // free-form comment
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (series, rest) = match line.find('{') {
            Some(open) => {
                let close = line[open..]
                    .find('}')
                    .map(|j| open + j)
                    .ok_or_else(|| at("unclosed label braces"))?;
                (&line[..open], line[close + 1..].trim_start())
            }
            None => {
                let mut it = line.splitn(2, [' ', '\t']);
                let name = it.next().unwrap_or("");
                (name, it.next().unwrap_or("").trim_start())
            }
        };
        if !is_name(series) {
            return Err(at(&format!("invalid series name {series:?}")));
        }
        let value_text = rest
            .split_whitespace()
            .next()
            .ok_or_else(|| at("sample without a value"))?;
        let value: f64 = value_text
            .parse()
            .map_err(|_| at(&format!("unparseable sample value {value_text:?}")))?;
        let base = family(series, &types);
        let declared = types
            .get(base)
            .ok_or_else(|| at(&format!("sample for {series} precedes its # TYPE")))?;
        if !seen.insert(line.split_whitespace().next().unwrap_or(line).to_string()) {
            return Err(at(&format!("duplicate series {series}")));
        }
        if declared == "histogram" {
            let state = hists.entry(base.to_string()).or_default();
            if series.ends_with("_bucket") {
                let le_text = line
                    .split("le=\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .ok_or_else(|| at("histogram bucket without an le label"))?;
                if value < 0.0 || value.fract() != 0.0 {
                    return Err(at("bucket counts must be non-negative integers"));
                }
                let cumulative = value as u64;
                if cumulative < state.last_cumulative {
                    return Err(at(&format!(
                        "bucket series for {base} is not cumulative ({cumulative} < {})",
                        state.last_cumulative
                    )));
                }
                if le_text == "+Inf" {
                    state.inf = Some(cumulative);
                } else {
                    let le: f64 = le_text
                        .parse()
                        .map_err(|_| at(&format!("unparseable le bound {le_text:?}")))?;
                    if state.inf.is_some() {
                        return Err(at(&format!("bucket after +Inf for {base}")));
                    }
                    if let Some(prev) = state.last_le {
                        if le <= prev {
                            return Err(at(&format!(
                                "le bounds for {base} not increasing ({le} after {prev})"
                            )));
                        }
                    }
                    state.last_le = Some(le);
                }
                state.last_cumulative = cumulative;
            } else if series.ends_with("_count") {
                state.count = Some(value as u64);
            }
        }
        samples += 1;
    }
    for (name, state) in &hists {
        let inf = state
            .inf
            .ok_or_else(|| format!("histogram {name} has no +Inf bucket"))?;
        let count = state
            .count
            .ok_or_else(|| format!("histogram {name} has no _count series"))?;
        if inf != count {
            return Err(format!(
                "histogram {name}: +Inf bucket ({inf}) disagrees with _count ({count})"
            ));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(r.snapshot().counter("x"), 5);
        assert_eq!(r.snapshot().counter("never"), 0);
    }

    #[test]
    fn bucket_index_edges() {
        // The exact edges: 0, 1, powers of two and their predecessors.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every bucket's hi + 1 is the next bucket's lo; together they
        // cover u64 without gaps or overlaps.
        for k in 0..HISTOGRAM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(k);
            let (next_lo, _) = bucket_bounds(k + 1);
            assert_eq!(
                hi.wrapping_add(1),
                next_lo,
                "gap between buckets {k} and {}",
                k + 1
            );
        }
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(64).1, u64::MAX);
        // Values land inside their claimed bounds.
        for v in [0u64, 1, 2, 3, 4, 100, 1 << 20, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 201.4).abs() < 1e-9);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 2); // the two ones
        assert_eq!(buckets[3], 1); // 5 in [4, 8)
        assert_eq!(buckets[10], 1); // 1000 in [512, 1024)
    }

    #[test]
    fn snapshot_serializes_to_parseable_json() {
        let r = MetricsRegistry::new();
        r.counter("a.b").add(7);
        r.histogram("h").record(42);
        let text = r.snapshot().to_json().to_string();
        let v = crate::json::parse(&text).expect("snapshot json parses");
        assert_eq!(
            v.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            v.get("histograms")
                .unwrap()
                .get("h")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    #[test]
    fn gauges_move_both_ways_and_saturate() {
        let r = MetricsRegistry::new();
        let g = r.gauge("queue_depth");
        g.set(3);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(r.snapshot().gauge("queue_depth"), 2);
        g.dec();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 0, "dec saturates at zero");
        let v = r.snapshot().to_json();
        assert_eq!(
            v.get("gauges")
                .unwrap()
                .get("queue_depth")
                .unwrap()
                .as_u64(),
            Some(0)
        );
        // Gauge-free snapshots keep the historical two-section shape.
        let bare = MetricsRegistry::new();
        bare.counter("c").inc();
        assert!(bare.snapshot().to_json().get("gauges").is_none());
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("serve.queue_depth"), "serve_queue_depth");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name(""), "_");
    }

    #[test]
    fn prometheus_text_round_trips_through_the_strict_checker() {
        let r = MetricsRegistry::new();
        r.counter("serve.requests").add(7);
        r.gauge("serve.queue_depth").set(3);
        let h = r.histogram("serve.request_latency_ms");
        for v in [0u64, 1, 3, 700] {
            h.record(v);
        }
        let text = r.snapshot().to_prometheus_text();
        assert!(text.ends_with('\n'));
        let samples = check_prometheus_text(&text).expect("strict checker accepts");
        // 1 counter + 1 gauge + (11 buckets + Inf + sum + count).
        assert!(samples >= 6, "{samples} samples:\n{text}");
        assert!(text.contains("# TYPE serve_requests counter"), "{text}");
        assert!(text.contains("# TYPE serve_queue_depth gauge"), "{text}");
        assert!(
            text.contains("# TYPE serve_request_latency_ms histogram"),
            "{text}"
        );
        assert!(
            text.contains("serve_request_latency_ms_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("serve_request_latency_ms_sum 704"), "{text}");
        assert!(text.contains("serve_request_latency_ms_count 4"), "{text}");
        // The cumulative bucket at le=0 holds only the zero sample; at
        // le=1 the one; at le=3 the three.
        assert!(text.contains("serve_request_latency_ms_bucket{le=\"0\"} 1"));
        assert!(text.contains("serve_request_latency_ms_bucket{le=\"1\"} 2"));
        assert!(text.contains("serve_request_latency_ms_bucket{le=\"3\"} 3"));
    }

    #[test]
    fn checker_rejects_malformed_expositions() {
        // No trailing newline.
        assert!(check_prometheus_text("# TYPE a counter\na 1").is_err());
        // Sample before its TYPE.
        let err = check_prometheus_text("a 1\n# TYPE a counter\n").unwrap_err();
        assert!(err.contains("precedes"), "{err}");
        // Duplicate series.
        let err = check_prometheus_text("# TYPE a counter\na 1\na 2\n").unwrap_err();
        assert!(err.contains("duplicate series"), "{err}");
        // Duplicate TYPE.
        let err = check_prometheus_text("# TYPE a counter\n# TYPE a gauge\na 1\n").unwrap_err();
        assert!(err.contains("duplicate # TYPE"), "{err}");
        // Unknown type.
        assert!(check_prometheus_text("# TYPE a exotic\na 1\n").is_err());
        // Invalid name.
        assert!(check_prometheus_text("# TYPE a.b counter\na.b 1\n").is_err());
        // Unparseable value.
        assert!(check_prometheus_text("# TYPE a counter\na one\n").is_err());
        // Non-cumulative histogram buckets.
        let err = check_prometheus_text(
            "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\n\
             h_bucket{le=\"2\"} 3\n\
             h_bucket{le=\"+Inf\"} 5\n\
             h_sum 9\nh_count 5\n",
        )
        .unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
        // le bounds must increase.
        let err = check_prometheus_text(
            "# TYPE h histogram\n\
             h_bucket{le=\"2\"} 1\n\
             h_bucket{le=\"1\"} 2\n\
             h_bucket{le=\"+Inf\"} 2\n\
             h_sum 3\nh_count 2\n",
        )
        .unwrap_err();
        assert!(err.contains("not increasing"), "{err}");
        // Missing +Inf.
        let err =
            check_prometheus_text("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n")
                .unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
        // +Inf and _count must agree.
        let err = check_prometheus_text(
            "# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 2\n\
             h_sum 3\nh_count 3\n",
        )
        .unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
    }
}
