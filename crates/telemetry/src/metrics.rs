//! Named counters and log2-bucketed histograms behind cheap handles.
//!
//! The registry owns the name → instrument mapping; the handles it hands
//! out ([`Counter`], [`Histogram`]) are `Arc`-backed and cost one relaxed
//! atomic add per event, so they can sit on simulator hot paths. Cloning a
//! handle is cheap and all clones observe the same instrument.

use crate::json::{obj, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing named count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter (not owned by any registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two of `u64`, plus the
/// zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    /// `buckets[0]` counts zero samples; `buckets[k]` (k ≥ 1) counts
    /// samples whose value `v` has `v.ilog2() == k - 1`, i.e. the range
    /// `[2^(k-1), 2^k)`.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucketing by the sample's bit length keeps recording to a handful of
/// instructions while still answering the questions telemetry asks of
/// latencies and magnitudes ("how many mispredict bursts exceeded 2^10?").
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// The index of the bucket a value falls in: 0 for 0, else
/// `value.ilog2() + 1`.
pub fn bucket_index(value: u64) -> usize {
    match value {
        0 => 0,
        v => v.ilog2() as usize + 1,
    }
}

/// The `[lo, hi]` value range of a bucket index.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        k => (1 << (k - 1), (1 << k) - 1),
    }
}

impl Histogram {
    /// Creates a detached histogram (not owned by any registry).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (0 if empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// A copy of the raw bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    fn to_json(&self) -> Json {
        let buckets = self.buckets();
        // Only emit occupied buckets, keyed by their lower bound.
        let nonzero: Vec<Json> = buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                obj([
                    ("lo", Json::from(lo)),
                    ("hi", Json::from(hi)),
                    ("count", Json::from(n)),
                ])
            })
            .collect();
        obj([
            ("count", Json::from(self.count())),
            ("sum", Json::from(self.sum())),
            ("max", Json::from(self.max())),
            ("buckets", Json::Arr(nonzero)),
        ])
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named [`Counter`]s and [`Histogram`]s.
///
/// Instrument lookup takes a lock; the returned handles do not. Register
/// once at setup time, then increment lock-free on the hot path.
///
/// # Example
///
/// ```
/// use sim_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let lookups = registry.counter("cache.lookups");
/// lookups.inc();
/// lookups.add(2);
/// assert_eq!(registry.snapshot().counter("cache.lookups"), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry(Arc<Mutex<RegistryInner>>);

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. All callers asking for the same name share one counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.0.lock().expect("metrics registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.0.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A point-in-time copy of every instrument's value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.0.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A point-in-time view of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The value of a counter (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Whether nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// The snapshot as a JSON object: counter name → value, histogram
    /// name → `{count, sum, max, buckets}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::from(v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.to_json()))
                .collect(),
        );
        obj([("counters", counters), ("histograms", histograms)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(r.snapshot().counter("x"), 5);
        assert_eq!(r.snapshot().counter("never"), 0);
    }

    #[test]
    fn bucket_index_edges() {
        // The exact edges: 0, 1, powers of two and their predecessors.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every bucket's hi + 1 is the next bucket's lo; together they
        // cover u64 without gaps or overlaps.
        for k in 0..HISTOGRAM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(k);
            let (next_lo, _) = bucket_bounds(k + 1);
            assert_eq!(
                hi.wrapping_add(1),
                next_lo,
                "gap between buckets {k} and {}",
                k + 1
            );
        }
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(64).1, u64::MAX);
        // Values land inside their claimed bounds.
        for v in [0u64, 1, 2, 3, 4, 100, 1 << 20, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1007);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 201.4).abs() < 1e-9);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 2); // the two ones
        assert_eq!(buckets[3], 1); // 5 in [4, 8)
        assert_eq!(buckets[10], 1); // 1000 in [512, 1024)
    }

    #[test]
    fn snapshot_serializes_to_parseable_json() {
        let r = MetricsRegistry::new();
        r.counter("a.b").add(7);
        r.histogram("h").record(42);
        let text = r.snapshot().to_json().to_string();
        let v = crate::json::parse(&text).expect("snapshot json parses");
        assert_eq!(
            v.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            v.get("histograms")
                .unwrap()
                .get("h")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Histogram::new().mean(), 0.0);
    }
}
