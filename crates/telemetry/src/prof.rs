//! sim-prof: hot-path phase timers and the `REPRO_PROF` knob.
//!
//! [`SpanRegistry`](crate::SpanRegistry) answers "where did the run's
//! wall-clock go" at the granularity of a few guard allocations per
//! phase — fine for `workload-gen` / `harness-replay` / `uarch-sim`,
//! far too heavy for per-branch work inside the prediction harness. The
//! [`PhaseTimer`] here is the hot-path complement: two relaxed atomic
//! adds per sample, no allocation, no lock, cloneable handles. A
//! [`HotProfiler`] is a named registry of such timers; its totals fold
//! into a span registry (under a parent path) so manifests and folded
//! dumps show one coherent tree.
//!
//! How much of this machinery is live is governed by `REPRO_PROF`:
//!
//! | value | behaviour |
//! |-------|-----------|
//! | `off`   | no span or phase recording; guards are near-free no-ops |
//! | `spans` (default) | coarse phase spans only; hot-path timers off |
//! | `full`  | spans **plus** per-operation hot-path timers |
//!
//! `spans` stays the default because the coarse spans cost nanoseconds
//! per *phase*, not per instruction; `full` costs two `Instant::now()`
//! calls per timed operation and is for profiling sessions.

use crate::json::{obj, Json};
use crate::span::SpanRegistry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much profiling an experiment run captures; the `REPRO_PROF` knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProfMode {
    /// No profiling: span guards and phase timers become no-ops.
    Off,
    /// Coarse phase spans only (the default).
    #[default]
    Spans,
    /// Spans plus per-operation hot-path timers in the prediction and
    /// timing loops.
    Full,
}

impl ProfMode {
    /// The accepted `REPRO_PROF` values, for error messages.
    pub const ACCEPTED: &'static str = "off, spans, full";

    /// Parses a `REPRO_PROF` value (case-insensitive). Strict, like
    /// [`TelemetryMode::parse`](crate::TelemetryMode::parse): a typo
    /// fails loudly instead of silently disabling the profile the user
    /// asked for.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Ok(ProfMode::Off),
            "spans" => Ok(ProfMode::Spans),
            "full" => Ok(ProfMode::Full),
            other => Err(format!(
                "unrecognized REPRO_PROF value {other:?}; accepted values: {}",
                ProfMode::ACCEPTED
            )),
        }
    }

    /// Reads the mode from `REPRO_PROF`, defaulting to [`Spans`] when
    /// unset or empty. Binaries turn the error into `eprintln` + exit 2.
    ///
    /// [`Spans`]: ProfMode::Spans
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("REPRO_PROF") {
            Ok(v) if v.is_empty() => Ok(ProfMode::Spans),
            Ok(v) => ProfMode::parse(&v),
            Err(_) => Ok(ProfMode::Spans),
        }
    }

    /// Whether coarse phase spans are recorded.
    pub fn spans(self) -> bool {
        self != ProfMode::Off
    }

    /// Whether per-operation hot-path timers are live.
    pub fn hot(self) -> bool {
        self == ProfMode::Full
    }

    /// The mode's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ProfMode::Off => "off",
            ProfMode::Spans => "spans",
            ProfMode::Full => "full",
        }
    }

    /// A span registry honoring this mode: recording for `spans`/`full`,
    /// a no-op registry for `off`.
    pub fn span_registry(self) -> SpanRegistry {
        if self.spans() {
            SpanRegistry::new()
        } else {
            SpanRegistry::disabled()
        }
    }
}

impl std::fmt::Display for ProfMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A lock-free accumulator for one hot-path phase: sample count and
/// total nanoseconds, two relaxed atomic adds per sample. Handles are
/// cheap clones sharing the same totals, so a harness can hold one per
/// phase without touching a registry in the hot loop.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimer {
    count: Arc<AtomicU64>,
    total_ns: Arc<AtomicU64>,
}

impl PhaseTimer {
    /// Creates a zeroed timer.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Starts a sample; pair with [`stop`](Self::stop).
    #[inline]
    pub fn start(&self) -> Instant {
        Instant::now()
    }

    /// Ends a sample started at `t0`.
    #[inline]
    pub fn stop(&self, t0: Instant) {
        self.record_ns(t0.elapsed().as_nanos() as u64);
    }

    /// Records one sample of `ns` nanoseconds directly.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Times `f`, recording one sample.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = self.start();
        let out = f();
        self.stop(t0);
        out
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total nanoseconds recorded so far.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }
}

/// Point-in-time totals for one hot-path phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (`btb-lookup`, `tc-index`, …).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Total nanoseconds across all samples.
    pub total_ns: u64,
}

impl PhaseStat {
    /// Mean nanoseconds per sample (0 when no samples).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A named registry of [`PhaseTimer`]s for one subsystem's hot loop.
///
/// `timer(name)` is called once at setup to obtain a handle; the hot
/// loop then only touches the handle's atomics. The registry itself is
/// cloneable (shared `Arc` state) so the session hub, the harness, and
/// the reporting path all see the same totals.
#[derive(Clone, Debug, Default)]
pub struct HotProfiler {
    timers: Arc<Mutex<BTreeMap<String, PhaseTimer>>>,
}

impl HotProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        HotProfiler::default()
    }

    /// The timer registered under `name`, creating it if absent. Call at
    /// setup time, not in the hot loop (takes a lock).
    pub fn timer(&self, name: &str) -> PhaseTimer {
        let mut timers = self.timers.lock().expect("hot profiler poisoned");
        timers.entry(name.to_string()).or_default().clone()
    }

    /// Point-in-time totals for every phase with at least one sample,
    /// sorted by name.
    pub fn snapshot(&self) -> Vec<PhaseStat> {
        let timers = self.timers.lock().expect("hot profiler poisoned");
        timers
            .iter()
            .map(|(name, t)| PhaseStat {
                name: name.clone(),
                count: t.count(),
                total_ns: t.total_ns(),
            })
            .filter(|s| s.count > 0)
            .collect()
    }

    /// The snapshot as a JSON object: phase name → `{count, total_ns}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.snapshot()
                .into_iter()
                .map(|s| {
                    (
                        s.name,
                        obj([
                            ("count", Json::from(s.count)),
                            ("total_ns", Json::from(s.total_ns)),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// Folds every phase's totals into `spans` as children of `parent`
    /// (path `parent;hot.<name>`), so one tree carries both coarse spans
    /// and hot-path phases.
    pub fn fold_into(&self, spans: &SpanRegistry, parent: &str) {
        for s in self.snapshot() {
            let path = format!("{parent}{}hot.{}", crate::span::PATH_SEPARATOR, s.name);
            spans.record_external(&path, s.count, s.total_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prof_mode_parses_accepted_values() {
        assert_eq!(ProfMode::parse("off"), Ok(ProfMode::Off));
        assert_eq!(ProfMode::parse("OFF"), Ok(ProfMode::Off));
        assert_eq!(ProfMode::parse("0"), Ok(ProfMode::Off));
        assert_eq!(ProfMode::parse("spans"), Ok(ProfMode::Spans));
        assert_eq!(ProfMode::parse("Full"), Ok(ProfMode::Full));
    }

    #[test]
    fn prof_mode_rejects_typos_with_accepted_list() {
        let err = ProfMode::parse("span").unwrap_err();
        assert!(err.contains("span"), "{err}");
        assert!(err.contains("off, spans, full"), "{err}");
    }

    #[test]
    fn prof_mode_predicates_and_registry() {
        assert!(!ProfMode::Off.spans());
        assert!(ProfMode::Spans.spans());
        assert!(!ProfMode::Spans.hot());
        assert!(ProfMode::Full.hot());
        assert_eq!(ProfMode::Full.to_string(), "full");
        assert!(!ProfMode::Off.span_registry().enabled());
        assert!(ProfMode::Spans.span_registry().enabled());
    }

    #[test]
    fn phase_timer_accumulates_samples() {
        let t = PhaseTimer::new();
        t.record_ns(100);
        t.record_ns(50);
        let out = t.time(|| 42);
        assert_eq!(out, 42);
        assert_eq!(t.count(), 3);
        assert!(t.total_ns() >= 150);
        // Clones share totals.
        let t2 = t.clone();
        t2.record_ns(1);
        assert_eq!(t.count(), 4);
    }

    #[test]
    fn hot_profiler_snapshots_only_sampled_phases() {
        let prof = HotProfiler::new();
        let a = prof.timer("btb-lookup");
        let _idle = prof.timer("never-sampled");
        a.record_ns(10);
        a.record_ns(20);
        let snap = prof.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "btb-lookup");
        assert_eq!(snap[0].count, 2);
        assert_eq!(snap[0].total_ns, 30);
        assert!((snap[0].mean_ns() - 15.0).abs() < f64::EPSILON);
        // Re-requesting a timer returns the same totals.
        assert_eq!(prof.timer("btb-lookup").count(), 2);
    }

    #[test]
    fn hot_profiler_folds_under_a_span_parent() {
        let prof = HotProfiler::new();
        prof.timer("tc-lookup").record_ns(500);
        let spans = SpanRegistry::new();
        {
            let _g = spans.span("harness-replay");
        }
        prof.fold_into(&spans, "harness-replay");
        let snap = spans.snapshot();
        assert_eq!(snap[1].path, "harness-replay;hot.tc-lookup");
        assert_eq!(snap[1].total_ns, 500);
    }

    #[test]
    fn hot_profiler_json_parses() {
        let prof = HotProfiler::new();
        prof.timer("ras-push").record_ns(7);
        let text = prof.to_json().to_string();
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(
            v.get("ras-push").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn concurrent_timer_samples_do_not_lose_counts() {
        let prof = HotProfiler::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = prof.timer("shared");
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    t.record_ns(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = prof.snapshot();
        assert_eq!(snap[0].count, 4000);
        assert_eq!(snap[0].total_ns, 4000);
    }
}
