//! The live campaign progress stream.
//!
//! A running campaign is observable through one append-only JSONL file,
//! `<dir>/<run-id>.progress.jsonl`. The writer ([`ProgressWriter`])
//! appends exactly one complete line per event; the reader
//! ([`read_events`]) tolerates a torn trailing line (a crash or a
//! concurrent append caught mid-write) by skipping it, so `repro-top`
//! can tail a stream that is still being written.
//!
//! Event vocabulary, in the order a campaign emits them:
//!
//! | event | fields |
//! |-------|--------|
//! | `campaign-started` | `run`, `tool`, `scale`, `total`, `workers`, `unix_ms`, `trace_id` |
//! | `cell-started` | `cell`, `t_ms` |
//! | `cell-retry` | `cell`, `attempt`, `reason`, `t_ms` |
//! | `cell-finished` | `cell`, `outcome` (`ok`/`err`/`resumed`), `attempts`, `wall_ms`, `instructions`, `instr_per_sec`, `reason?`, `t_ms` |
//! | `heartbeat` | `active_cells`, `done`, `total`, `eta_ms?`, `t_ms` |
//! | `campaign-finished` | `done`, `failed`, `total`, `wall_ms`, `t_ms` |
//!
//! `t_ms` is milliseconds since `campaign-started` (monotonic clock), so
//! two events from the same stream can always be ordered and diffed
//! without trusting the wall clock.

use crate::json::{obj, parse, Json};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One progress event, as written to (and parsed from) the stream.
#[derive(Clone, Debug, PartialEq)]
pub enum ProgressEvent {
    /// The campaign was scheduled: identity plus the cell count.
    CampaignStarted {
        /// Run id (journal name).
        run: String,
        /// Tool name (`repro_all`, `table4`, …).
        tool: String,
        /// Scale name (`quick`, `standard`, `full`).
        scale: String,
        /// Cells scheduled (including any later restored from journal).
        total: u64,
        /// Worker threads.
        workers: u64,
        /// Wall-clock milliseconds since the unix epoch at start.
        unix_ms: u64,
        /// The campaign's correlation id (`tr-…`; empty in streams
        /// written before correlation ids existed).
        trace_id: String,
    },
    /// A cell's first attempt was spawned.
    CellStarted {
        /// Cell id (`table4/perl`).
        cell: String,
        /// Milliseconds since campaign start.
        t_ms: u64,
    },
    /// A retry attempt was spawned after a failure.
    CellRetry {
        /// Cell id.
        cell: String,
        /// The attempt number being started (2 = first retry).
        attempt: u64,
        /// The failure that triggered the retry (first line).
        reason: String,
        /// Milliseconds since campaign start.
        t_ms: u64,
    },
    /// A cell reached its final outcome.
    CellFinished {
        /// Cell id.
        cell: String,
        /// `ok`, `err`, or `resumed` (restored from a journal).
        outcome: String,
        /// Attempts executed (0 when resumed).
        attempts: u64,
        /// Wall-clock milliseconds across the attempts.
        wall_ms: u64,
        /// Simulated instructions processed.
        instructions: u64,
        /// Throughput at the final outcome.
        instr_per_sec: f64,
        /// Failure reason when `outcome` is `err`.
        reason: Option<String>,
        /// Milliseconds since campaign start.
        t_ms: u64,
    },
    /// A sampler tick: how the campaign is doing right now.
    Heartbeat {
        /// Cells with an attempt currently in flight.
        active_cells: u64,
        /// Cells with a final outcome (including resumed).
        done: u64,
        /// Cells scheduled.
        total: u64,
        /// Estimated milliseconds to completion (absent before any
        /// cell finishes).
        eta_ms: Option<u64>,
        /// Milliseconds since campaign start.
        t_ms: u64,
    },
    /// The campaign resolved every cell.
    CampaignFinished {
        /// Cells that produced data.
        done: u64,
        /// Cells that failed after retries.
        failed: u64,
        /// Cells scheduled.
        total: u64,
        /// Campaign wall-clock milliseconds.
        wall_ms: u64,
        /// Milliseconds since campaign start.
        t_ms: u64,
    },
}

impl ProgressEvent {
    /// The event's tag, as written in the `event` field.
    pub fn name(&self) -> &'static str {
        match self {
            ProgressEvent::CampaignStarted { .. } => "campaign-started",
            ProgressEvent::CellStarted { .. } => "cell-started",
            ProgressEvent::CellRetry { .. } => "cell-retry",
            ProgressEvent::CellFinished { .. } => "cell-finished",
            ProgressEvent::Heartbeat { .. } => "heartbeat",
            ProgressEvent::CampaignFinished { .. } => "campaign-finished",
        }
    }

    /// The event as a single-line JSON object.
    pub fn to_json(&self) -> Json {
        let tag = ("event", Json::from(self.name()));
        match self {
            ProgressEvent::CampaignStarted {
                run,
                tool,
                scale,
                total,
                workers,
                unix_ms,
                trace_id,
            } => obj([
                tag,
                ("run", Json::from(run.as_str())),
                ("tool", Json::from(tool.as_str())),
                ("scale", Json::from(scale.as_str())),
                ("total", Json::from(*total)),
                ("workers", Json::from(*workers)),
                ("unix_ms", Json::from(*unix_ms)),
                ("trace_id", Json::from(trace_id.as_str())),
            ]),
            ProgressEvent::CellStarted { cell, t_ms } => obj([
                tag,
                ("cell", Json::from(cell.as_str())),
                ("t_ms", Json::from(*t_ms)),
            ]),
            ProgressEvent::CellRetry {
                cell,
                attempt,
                reason,
                t_ms,
            } => obj([
                tag,
                ("cell", Json::from(cell.as_str())),
                ("attempt", Json::from(*attempt)),
                ("reason", Json::from(reason.as_str())),
                ("t_ms", Json::from(*t_ms)),
            ]),
            ProgressEvent::CellFinished {
                cell,
                outcome,
                attempts,
                wall_ms,
                instructions,
                instr_per_sec,
                reason,
                t_ms,
            } => {
                let mut fields = match obj([
                    tag,
                    ("cell", Json::from(cell.as_str())),
                    ("outcome", Json::from(outcome.as_str())),
                    ("attempts", Json::from(*attempts)),
                    ("wall_ms", Json::from(*wall_ms)),
                    ("instructions", Json::from(*instructions)),
                    ("instr_per_sec", Json::from(*instr_per_sec)),
                    ("t_ms", Json::from(*t_ms)),
                ]) {
                    Json::Obj(fields) => fields,
                    _ => unreachable!("obj() builds an object"),
                };
                if let Some(reason) = reason {
                    fields.insert("reason".to_string(), Json::from(reason.as_str()));
                }
                Json::Obj(fields)
            }
            ProgressEvent::Heartbeat {
                active_cells,
                done,
                total,
                eta_ms,
                t_ms,
            } => {
                let mut fields = match obj([
                    tag,
                    ("active_cells", Json::from(*active_cells)),
                    ("done", Json::from(*done)),
                    ("total", Json::from(*total)),
                    ("t_ms", Json::from(*t_ms)),
                ]) {
                    Json::Obj(fields) => fields,
                    _ => unreachable!("obj() builds an object"),
                };
                if let Some(eta) = eta_ms {
                    fields.insert("eta_ms".to_string(), Json::from(*eta));
                }
                Json::Obj(fields)
            }
            ProgressEvent::CampaignFinished {
                done,
                failed,
                total,
                wall_ms,
                t_ms,
            } => obj([
                tag,
                ("done", Json::from(*done)),
                ("failed", Json::from(*failed)),
                ("total", Json::from(*total)),
                ("wall_ms", Json::from(*wall_ms)),
                ("t_ms", Json::from(*t_ms)),
            ]),
        }
    }

    /// Parses one event back out of its JSON object form.
    pub fn from_json(v: &Json) -> Result<ProgressEvent, String> {
        let s = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("event missing string {k:?}"))
        };
        let u = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event missing numeric {k:?}"))
        };
        match v
            .get("event")
            .and_then(Json::as_str)
            .ok_or("line has no \"event\" field")?
        {
            "campaign-started" => Ok(ProgressEvent::CampaignStarted {
                run: s("run")?,
                tool: s("tool")?,
                scale: s("scale")?,
                total: u("total")?,
                workers: u("workers")?,
                unix_ms: u("unix_ms")?,
                // Lenient: streams written before correlation ids
                // existed parse with an empty trace id.
                trace_id: v
                    .get("trace_id")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            "cell-started" => Ok(ProgressEvent::CellStarted {
                cell: s("cell")?,
                t_ms: u("t_ms")?,
            }),
            "cell-retry" => Ok(ProgressEvent::CellRetry {
                cell: s("cell")?,
                attempt: u("attempt")?,
                reason: s("reason")?,
                t_ms: u("t_ms")?,
            }),
            "cell-finished" => Ok(ProgressEvent::CellFinished {
                cell: s("cell")?,
                outcome: s("outcome")?,
                attempts: u("attempts")?,
                wall_ms: u("wall_ms")?,
                instructions: u("instructions")?,
                instr_per_sec: v.get("instr_per_sec").and_then(Json::as_f64).unwrap_or(0.0),
                reason: v.get("reason").and_then(Json::as_str).map(String::from),
                t_ms: u("t_ms")?,
            }),
            "heartbeat" => Ok(ProgressEvent::Heartbeat {
                active_cells: u("active_cells")?,
                done: u("done")?,
                total: u("total")?,
                eta_ms: v.get("eta_ms").and_then(Json::as_u64),
                t_ms: u("t_ms")?,
            }),
            "campaign-finished" => Ok(ProgressEvent::CampaignFinished {
                done: u("done")?,
                failed: u("failed")?,
                total: u("total")?,
                wall_ms: u("wall_ms")?,
                t_ms: u("t_ms")?,
            }),
            other => Err(format!("unrecognized event {other:?}")),
        }
    }
}

/// The progress file path for a run id.
pub fn progress_path(dir: &Path, run_id: &str) -> PathBuf {
    dir.join(format!("{run_id}.progress.jsonl"))
}

/// An open progress stream: line-atomic appends to one JSONL file.
///
/// Every event is serialized to a complete `line + '\n'` buffer first
/// and appended with a single `write` syscall under a mutex, so
/// concurrent emitters (the scheduler and the heartbeat sampler) never
/// interleave partial lines. A crash can still tear the *final* line —
/// which is exactly the case [`read_events`] tolerates.
#[derive(Debug)]
pub struct ProgressWriter {
    path: PathBuf,
    file: Mutex<File>,
}

impl ProgressWriter {
    /// Creates (truncating) the progress file for `run_id` under `dir`.
    pub fn create(dir: &Path, run_id: &str) -> std::io::Result<ProgressWriter> {
        std::fs::create_dir_all(dir)?;
        let path = progress_path(dir, run_id);
        // One mutex-serialized handle does all the writing, so plain
        // write mode suffices; O_APPEND is only needed for multiple
        // handles (and cannot be combined with truncate anyway).
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(ProgressWriter {
            path,
            file: Mutex::new(file),
        })
    }

    /// The stream's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event as a complete line. Errors are returned, not
    /// panicked: a full disk must degrade observability, never the
    /// campaign itself (callers log and carry on).
    pub fn emit(&self, event: &ProgressEvent) -> std::io::Result<()> {
        let mut line = event.to_json().to_string();
        line.push('\n');
        let mut file = self.file.lock().expect("progress writer poisoned");
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

/// A parsed progress stream: the events plus whether a torn trailing
/// line was skipped.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProgressStreamContents {
    /// Events in stream order.
    pub events: Vec<ProgressEvent>,
    /// Whether the file ended in a partial (torn) line that was skipped.
    pub torn_tail: bool,
}

/// Parses a progress stream's text.
///
/// The final line is allowed to be torn — unterminated, or terminated
/// but unparseable (a crash mid-append) — and is skipped with
/// `torn_tail: true`. Corruption anywhere *else* is a loud error naming
/// the line: only the tail can legitimately be mid-write.
pub fn parse_events(text: &str) -> Result<ProgressStreamContents, String> {
    let mut events = Vec::new();
    let mut torn_tail = false;
    let ends_complete = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        if line.trim().is_empty() {
            continue;
        }
        let parsed = parse(line)
            .map_err(|e| e.to_string())
            .and_then(|v| ProgressEvent::from_json(&v));
        match parsed {
            Ok(event) => events.push(event),
            Err(_) if last && !ends_complete => {
                torn_tail = true;
            }
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(ProgressStreamContents { events, torn_tail })
}

/// Reads and parses a progress file. See [`parse_events`].
pub fn read_events(path: &Path) -> Result<ProgressStreamContents, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_events(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Estimated milliseconds to completion, from completed work so far.
///
/// `None` until the first cell finishes (no rate to extrapolate), and
/// `Some(0)` once everything is done. The estimate is the classic
/// linear one — elapsed time scaled by remaining/done — which is exact
/// for uniform cells and conservative early in a heterogeneous
/// campaign.
pub fn eta_ms(done: u64, total: u64, elapsed_ms: u64) -> Option<u64> {
    if done == 0 {
        return None;
    }
    if done >= total {
        return Some(0);
    }
    let remaining = total - done;
    // u128 keeps the multiply exact for any realistic campaign length.
    Some((elapsed_ms as u128 * remaining as u128 / done as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ProgressEvent> {
        vec![
            ProgressEvent::CampaignStarted {
                run: "r1".into(),
                tool: "table4".into(),
                scale: "quick".into(),
                total: 2,
                workers: 4,
                unix_ms: 1_700_000_000_000,
                trace_id: "tr-9f2ab04c71d3e586".into(),
            },
            ProgressEvent::CellStarted {
                cell: "table4/gcc".into(),
                t_ms: 1,
            },
            ProgressEvent::CellRetry {
                cell: "table4/gcc".into(),
                attempt: 2,
                reason: "panicked: injected".into(),
                t_ms: 40,
            },
            ProgressEvent::Heartbeat {
                active_cells: 1,
                done: 0,
                total: 2,
                eta_ms: None,
                t_ms: 50,
            },
            ProgressEvent::CellFinished {
                cell: "table4/gcc".into(),
                outcome: "ok".into(),
                attempts: 2,
                wall_ms: 80,
                instructions: 100_000,
                instr_per_sec: 1_250_000.0,
                reason: None,
                t_ms: 81,
            },
            ProgressEvent::CampaignFinished {
                done: 2,
                failed: 0,
                total: 2,
                wall_ms: 95,
                t_ms: 95,
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json_lines() {
        let mut text = String::new();
        for e in sample_events() {
            text.push_str(&e.to_json().to_string());
            text.push('\n');
        }
        let parsed = parse_events(&text).unwrap();
        assert!(!parsed.torn_tail);
        assert_eq!(parsed.events, sample_events());
    }

    #[test]
    fn writer_appends_line_atomic_events() {
        let dir = std::env::temp_dir().join(format!("sim-progress-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = ProgressWriter::create(&dir, "w1").unwrap();
        for e in sample_events() {
            w.emit(&e).unwrap();
        }
        let read = read_events(&progress_path(&dir, "w1")).unwrap();
        assert_eq!(read.events.len(), sample_events().len());
        assert_eq!(read.events, sample_events());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_skipped_not_fatal() {
        let mut text = String::new();
        for e in sample_events() {
            text.push_str(&e.to_json().to_string());
            text.push('\n');
        }
        // A crash mid-append: the final line is incomplete JSON with no
        // terminating newline.
        text.push_str("{\"event\":\"heartbeat\",\"done\":1,");
        let parsed = parse_events(&text).unwrap();
        assert!(parsed.torn_tail);
        assert_eq!(parsed.events, sample_events());
    }

    #[test]
    fn mid_stream_corruption_is_a_loud_error() {
        let good = sample_events()[0].to_json().to_string();
        let text = format!("{good}\n{{broken\n{good}\n");
        let err = parse_events(&text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn pre_trace_id_streams_still_parse() {
        // Streams written before correlation ids existed have no
        // trace_id field; they must parse with an empty one.
        let text = "{\"event\":\"campaign-started\",\"run\":\"old\",\"tool\":\"table4\",\
                    \"scale\":\"quick\",\"total\":2,\"workers\":1,\"unix_ms\":5}\n";
        let parsed = parse_events(text).unwrap();
        match &parsed.events[0] {
            ProgressEvent::CampaignStarted { trace_id, .. } => assert!(trace_id.is_empty()),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn unknown_event_names_are_rejected() {
        let text = "{\"event\":\"time-travel\",\"t_ms\":1}\n";
        assert!(parse_events(text).is_err());
    }

    #[test]
    fn eta_math_covers_the_edges() {
        // No completed work: no estimate.
        assert_eq!(eta_ms(0, 77, 10_000), None);
        // Half done in 10s: 10s to go.
        assert_eq!(eta_ms(5, 10, 10_000), Some(10_000));
        // 1 of 4 done in 3s: 9s to go.
        assert_eq!(eta_ms(1, 4, 3_000), Some(9_000));
        // Done (or over-done): zero.
        assert_eq!(eta_ms(10, 10, 5_000), Some(0));
        assert_eq!(eta_ms(12, 10, 5_000), Some(0));
        // Huge campaigns don't overflow the intermediate multiply.
        assert_eq!(eta_ms(2, u64::MAX / 2 + 1, 2), Some(u64::MAX / 2 - 1));
    }
}
