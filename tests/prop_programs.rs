//! Property-based fuzzing of the program model: arbitrary *valid* programs
//! must execute cleanly through the executor and the whole prediction
//! stack, holding the invariants every real trace holds.

use indirect_jump_prediction::isa::{Addr, BranchClass};
use indirect_jump_prediction::workloads::{
    Cond, Effect, Executor, InstrMix, Program, ProgramBuilder, Selector,
};
use proptest::prelude::*;

/// Plan for one synthesizable block (kept simple: indices are resolved
/// modulo the block/routine counts, so any plan is valid).
#[derive(Clone, Debug)]
struct BlockPlan {
    body: u32,
    call: Option<usize>,
    effect: Option<u8>,
    term: u8,
    a: usize,
    b: usize,
}

fn arb_block_plan() -> impl Strategy<Value = BlockPlan> {
    (
        0u32..6,
        proptest::option::of(0usize..4),
        proptest::option::of(0u8..4),
        0u8..4,
        0usize..16,
        0usize..16,
    )
        .prop_map(|(body, call, effect, term, a, b)| BlockPlan {
            body,
            call,
            effect,
            term,
            a,
            b,
        })
}

/// Builds a guaranteed-valid program from arbitrary plans: `main` with
/// `plans.len()` blocks plus two leaf helper routines.
fn build_program(plans: &[BlockPlan]) -> Program {
    let mut b = ProgramBuilder::new();
    let v = b.var();
    let w = b.var();
    let cycle = b.cycle(vec![0, 3, 1, 2, 1]);
    let main = b.routine();
    let helper_a = b.routine();
    let helper_b = b.routine();

    let nblocks = plans.len().max(1);
    for plan in plans.iter() {
        let mut blk = b.block(main);
        if let Some(e) = plan.effect {
            blk = match e {
                0 => blk.effect(Effect::CycleNext { cycle, var: v }),
                1 => blk.effect(Effect::Uniform { var: w, n: 7 }),
                2 => blk.effect(Effect::AddMod {
                    var: v,
                    delta: 1,
                    modulo: 5,
                }),
                _ => blk.effect(Effect::Set { var: w, value: 3 }),
            };
        }
        blk = blk.body(plan.body, InstrMix::integer_heavy());
        if let Some(c) = plan.call {
            blk = match c {
                0 | 2 => blk.call(helper_a),
                1 => blk.call(helper_b),
                _ => blk.call_indirect(Selector::var(w), vec![helper_a, helper_b]),
            };
        }
        let ta = plan.a % nblocks;
        let tb = plan.b % nblocks;
        match plan.term {
            0 => blk.goto(ta),
            1 => blk.branch(Cond::Bit { var: v, bit: 1 }, ta, tb),
            2 => blk.branch(Cond::Loop { count: 3 }, ta, tb),
            _ => blk.switch(Selector::var(v), vec![ta, tb, ta]),
        };
    }
    if plans.is_empty() {
        b.block(main).goto(0);
    }
    b.block(helper_a).body(2, InstrMix::load_heavy()).ret();
    b.block(helper_b).body(4, InstrMix::integer_heavy()).ret();
    b.build().expect("constructed programs are always valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_programs_generate_exact_budgets(
        plans in proptest::collection::vec(arb_block_plan(), 0..12),
        seed in any::<u64>(),
        budget in 1usize..3000,
    ) {
        let program = build_program(&plans);
        let trace = Executor::new(&program, seed).generate(budget);
        prop_assert_eq!(trace.len(), budget);
    }

    #[test]
    fn arbitrary_traces_are_sequentially_consistent(
        plans in proptest::collection::vec(arb_block_plan(), 1..12),
        seed in any::<u64>(),
    ) {
        let program = build_program(&plans);
        let trace = Executor::new(&program, seed).generate(4000);
        let mut prev: Option<Addr> = None;
        for i in trace.iter() {
            if let Some(expected) = prev {
                prop_assert_eq!(i.pc(), expected, "discontinuity at {:?}", i);
            }
            prev = Some(i.next_pc());
        }
    }

    #[test]
    fn arbitrary_traces_balance_calls_and_returns(
        plans in proptest::collection::vec(arb_block_plan(), 1..12),
        seed in any::<u64>(),
    ) {
        let program = build_program(&plans);
        let trace = Executor::new(&program, seed).generate(4000);
        let stats = trace.stats();
        let calls = stats.branch_count(BranchClass::Call)
            + stats.branch_count(BranchClass::IndirectCall);
        let rets = stats.branch_count(BranchClass::Return);
        // Returns can lag calls by at most the live call depth, which for
        // these programs (leaf helpers only) is 1.
        prop_assert!(calls >= rets);
        prop_assert!(calls - rets <= 1, "calls {} rets {}", calls, rets);
    }

    #[test]
    fn arbitrary_traces_flow_through_the_prediction_stack(
        plans in proptest::collection::vec(arb_block_plan(), 1..10),
        seed in any::<u64>(),
    ) {
        use indirect_jump_prediction::prelude::{FrontEndConfig, PredictionHarness, TargetCacheConfig};
        let program = build_program(&plans);
        let trace = Executor::new(&program, seed).generate(3000);
        for config in [
            FrontEndConfig::isca97_baseline(),
            FrontEndConfig::isca97_with(TargetCacheConfig::isca97_tagless_gshare()),
            FrontEndConfig::isca97_with(TargetCacheConfig::isca97_tagged(4)),
            FrontEndConfig::isca97_oracle(),
            FrontEndConfig::isca97_cascade(TargetCacheConfig::isca97_tagless_gshare()),
        ] {
            let mut h = PredictionHarness::new(config);
            h.run(&trace);
            let stats = h.stats();
            prop_assert_eq!(stats.total_executed(), trace.stats().branches());
            prop_assert!(stats.total_mispredicted() <= stats.total_executed());
        }
    }

    #[test]
    fn arbitrary_traces_simulate_without_panicking(
        plans in proptest::collection::vec(arb_block_plan(), 1..8),
        seed in any::<u64>(),
    ) {
        use indirect_jump_prediction::prelude::{simulate, FrontEndConfig, MachineConfig};
        let program = build_program(&plans);
        let trace = Executor::new(&program, seed).generate(2000);
        let r = simulate(&trace, &MachineConfig::isca97(FrontEndConfig::isca97_baseline()));
        prop_assert_eq!(r.instructions, 2000);
        prop_assert!(r.cycles >= 2000 / 8, "cannot beat the fetch width");
        prop_assert!(r.ipc() <= 8.0 + 1e-9);
    }

    #[test]
    fn prefix_property_holds_for_arbitrary_programs(
        plans in proptest::collection::vec(arb_block_plan(), 1..10),
        seed in any::<u64>(),
        short in 1usize..1000,
    ) {
        let program = build_program(&plans);
        let long = Executor::new(&program, seed).generate(2000);
        let prefix = Executor::new(&program, seed).generate(short);
        prop_assert_eq!(&long.as_slice()[..short], prefix.as_slice());
    }
}
