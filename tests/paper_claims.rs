//! Integration tests pinning the paper's qualitative claims — the
//! "shape" EXPERIMENTS.md reports. Each test quotes the claim it checks.

use indirect_jump_prediction::prelude::*;

const BUDGET: usize = 80_000;

fn mispred(trace: &VecTrace, config: FrontEndConfig) -> f64 {
    let mut h = PredictionHarness::new(config);
    h.run(trace);
    h.stats().indirect_jump_misprediction_rate()
}

fn with_tc(tc: TargetCacheConfig) -> FrontEndConfig {
    FrontEndConfig::isca97_with(tc)
}

#[test]
fn claim_btb_schemes_are_ineffective_for_indirect_jumps() {
    // "these schemes are ineffective in predicting the targets of indirect
    // jumps achieving, on average, a prediction accuracy rate of ~50% for
    // the SPECint95 benchmarks" — i.e. a suite-wide misprediction rate far
    // above conditional-branch levels.
    let mut weighted_miss = 0.0;
    let mut weighted_total = 0.0;
    for bench in Benchmark::ALL {
        let trace = bench.workload().generate(BUDGET);
        let mut h = PredictionHarness::new(FrontEndConfig::isca97_baseline());
        h.run(&trace);
        let c = h.stats().indirect_jump_counters();
        weighted_miss += c.mispredicted() as f64;
        weighted_total += c.executed as f64;
    }
    let suite_rate = weighted_miss / weighted_total;
    assert!(
        (0.25..0.75).contains(&suite_rate),
        "suite-wide BTB indirect misprediction {suite_rate} should be ~50%"
    );
}

#[test]
fn claim_target_cache_reduces_perl_and_gcc_mispredictions_massively() {
    // "this mechanism reduces the indirect jump misprediction rate by
    // 93.4% and 63.3%" (perl, gcc).
    let perl = Benchmark::Perl.workload().generate(BUDGET);
    let gcc = Benchmark::Gcc.workload().generate(BUDGET);

    let perl_base = mispred(&perl, FrontEndConfig::isca97_baseline());
    let perl_tc = mispred(
        &perl,
        with_tc(TargetCacheConfig::isca97_tagless_path(
            PathFilter::IndirectJump,
        )),
    );
    let perl_reduction = (perl_base - perl_tc) / perl_base;
    assert!(
        perl_reduction > 0.75,
        "perl misprediction reduction {perl_reduction}"
    );

    let gcc_base = mispred(&gcc, FrontEndConfig::isca97_baseline());
    let gcc_tc = mispred(&gcc, with_tc(TargetCacheConfig::isca97_tagless_gshare()));
    let gcc_reduction = (gcc_base - gcc_tc) / gcc_base;
    assert!(
        gcc_reduction > 0.4,
        "gcc misprediction reduction {gcc_reduction}"
    );

    // perl's reduction exceeds gcc's, as in the abstract.
    assert!(perl_reduction > gcc_reduction);
}

#[test]
fn claim_pattern_vs_path_split_between_gcc_and_perl() {
    // "using pattern history results in better performance for gcc and
    // using global path history results in better performance for perl."
    let perl = Benchmark::Perl.workload().generate(BUDGET);
    let gcc = Benchmark::Gcc.workload().generate(BUDGET);

    let pattern = TargetCacheConfig::isca97_tagless_gshare();
    let path = TargetCacheConfig::isca97_tagless_path(PathFilter::IndirectJump);

    let perl_pattern = mispred(&perl, with_tc(pattern));
    let perl_path = mispred(&perl, with_tc(path));
    assert!(
        perl_path < perl_pattern,
        "perl: path ({perl_path}) must beat pattern ({perl_pattern})"
    );

    let gcc_pattern = mispred(&gcc, with_tc(pattern));
    let gcc_path = mispred(&gcc, with_tc(path));
    assert!(
        gcc_pattern < gcc_path,
        "gcc: pattern ({gcc_pattern}) must beat path ind-jmp ({gcc_path})"
    );
}

#[test]
fn claim_perl_interpreter_loop_is_captured_by_path_history() {
    // "By capturing the path history in this situation, the target cache
    // is able to accurately predict the targets of the indirect jumps
    // which process these tokens."
    let perl = Benchmark::Perl.workload().generate(BUDGET);
    let rate = mispred(
        &perl,
        with_tc(TargetCacheConfig::isca97_tagless_path(
            PathFilter::IndirectJump,
        )),
    );
    assert!(
        rate < 0.10,
        "perl path-history misprediction {rate} should be tiny"
    );
}

#[test]
fn claim_tagless_beats_low_assoc_tagged_and_loses_to_high_assoc() {
    // "a tagless target cache outperforms a tagged target cache with a
    // small degree of set-associativity. On the other hand, a tagged target
    // cache with [4+] entries per set outperforms the tagless target
    // cache." (Checked on gcc, where interference is the binding
    // constraint.)
    let gcc = Benchmark::Gcc.workload().generate(BUDGET);
    let tagless = mispred(&gcc, with_tc(TargetCacheConfig::isca97_tagless_gshare()));
    let tagged_direct = mispred(&gcc, with_tc(TargetCacheConfig::isca97_tagged(1)));
    let tagged_wide = mispred(&gcc, with_tc(TargetCacheConfig::isca97_tagged(16)));
    assert!(
        tagless < tagged_direct,
        "tagless ({tagless}) should beat direct-mapped tagged ({tagged_direct})"
    );
    assert!(
        tagged_wide < tagless * 1.35,
        "high-associativity tagged ({tagged_wide}) should be competitive with tagless ({tagless})"
    );
}

#[test]
fn claim_returns_belong_to_the_return_stack() {
    // "return instructions ... are not handled with the target cache
    // because they are effectively handled with the return address stack."
    // Returns must already predict near-perfectly without a target cache.
    for bench in [Benchmark::Xlisp, Benchmark::Vortex] {
        let trace = bench.workload().generate(BUDGET);
        let mut h = PredictionHarness::new(FrontEndConfig::isca97_baseline());
        h.run(&trace);
        let rets = h.stats().class(BranchClass::Return);
        assert!(rets.executed > 100, "{bench} executes returns");
        assert!(
            rets.misprediction_rate() < 0.05,
            "{bench}: RAS return misprediction {}",
            rets.misprediction_rate()
        );
    }
}

#[test]
fn claim_conditional_branches_predict_well_with_two_level() {
    // The machine's conditional predictor must be in the regime the era's
    // two-level predictors achieved, else the execution-time effect of
    // indirect jumps would be mismeasured. Several of our models
    // deliberately encode dispatch-selector entropy in their predicate
    // directions (that is the pattern-history correlation mechanism), so
    // individual benchmarks run hotter than their real counterparts — the
    // bound is per-benchmark sanity plus a suite-wide average.
    let mut missed = 0.0;
    let mut total = 0.0;
    for bench in Benchmark::ALL {
        let trace = bench.workload().generate(BUDGET);
        let mut h = PredictionHarness::new(FrontEndConfig::isca97_baseline());
        h.run(&trace);
        let cond = h.stats().class(BranchClass::CondDirect);
        assert!(
            cond.misprediction_rate() < 0.35,
            "{bench}: conditional misprediction {}",
            cond.misprediction_rate()
        );
        missed += cond.mispredicted() as f64;
        total += cond.executed as f64;
    }
    let suite = missed / total;
    assert!(suite < 0.18, "suite-wide conditional misprediction {suite}");
}

#[test]
fn claim_gshare_utilizes_entries_better_than_gas() {
    // "the gshare scheme outperforms the GAs scheme because it effectively
    // utilizes more of the entries in the target cache."
    for bench in [Benchmark::Gcc, Benchmark::Perl] {
        let trace = bench.workload().generate(BUDGET);
        let gshare = mispred(
            &trace,
            with_tc(TargetCacheConfig::new(
                Organization::Tagless {
                    entries: 512,
                    scheme: IndexScheme::Gshare,
                },
                HistorySource::Pattern { bits: 9 },
            )),
        );
        let gas = mispred(
            &trace,
            with_tc(TargetCacheConfig::new(
                Organization::Tagless {
                    entries: 512,
                    scheme: IndexScheme::GAs { addr_bits: 2 },
                },
                HistorySource::Pattern { bits: 9 },
            )),
        );
        assert!(
            gshare <= gas * 1.05,
            "{bench}: gshare ({gshare}) should beat GAs(7,2) ({gas})"
        );
    }
}
