//! End-to-end integration: workload generation → prediction → timing, the
//! full stack spanning every crate in the workspace.

use indirect_jump_prediction::prelude::*;

/// Budget kept small so the suite stays fast in debug builds.
const BUDGET: usize = 60_000;

#[test]
fn every_benchmark_flows_through_the_whole_stack() {
    for bench in Benchmark::ALL {
        let trace = bench.workload().generate(BUDGET);
        assert_eq!(trace.len(), BUDGET, "{bench}");

        let report = simulate(
            &trace,
            &MachineConfig::isca97(FrontEndConfig::isca97_baseline()),
        );
        assert_eq!(report.instructions, BUDGET as u64, "{bench}");
        assert!(report.cycles > 0, "{bench}");
        // An 8-wide machine: IPC must land in (0, 8].
        assert!(
            report.ipc() > 0.3 && report.ipc() <= 8.0,
            "{bench}: IPC {}",
            report.ipc()
        );
        // The data cache was exercised.
        assert!(report.dcache_stats.accesses > 0, "{bench}");
    }
}

#[test]
fn headline_claim_perl_and_gcc_speed_up_substantially() {
    for (bench, min_reduction) in [(Benchmark::Perl, 0.05), (Benchmark::Gcc, 0.01)] {
        let trace = bench.workload().generate(BUDGET);
        let base = simulate(
            &trace,
            &MachineConfig::isca97(FrontEndConfig::isca97_baseline()),
        );
        let tc_config = match bench {
            Benchmark::Perl => TargetCacheConfig::isca97_tagless_path(PathFilter::IndirectJump),
            _ => TargetCacheConfig::isca97_tagless_gshare(),
        };
        let tc = simulate(
            &trace,
            &MachineConfig::isca97(FrontEndConfig::isca97_with(tc_config)),
        );
        let reduction = tc.exec_time_reduction_vs(&base);
        assert!(
            reduction > min_reduction,
            "{bench}: execution-time reduction {reduction} below {min_reduction}"
        );
    }
}

#[test]
fn target_cache_never_catastrophically_slows_any_benchmark() {
    // The paper deploys the target cache suite-wide; it must not blow up
    // the easy benchmarks.
    for bench in Benchmark::ALL {
        let trace = bench.workload().generate(BUDGET);
        let base = simulate(
            &trace,
            &MachineConfig::isca97(FrontEndConfig::isca97_baseline()),
        );
        let tc = simulate(
            &trace,
            &MachineConfig::isca97(FrontEndConfig::isca97_with(
                TargetCacheConfig::isca97_tagless_gshare(),
            )),
        );
        let reduction = tc.exec_time_reduction_vs(&base);
        assert!(
            reduction > -0.02,
            "{bench}: target cache slowed execution by {:.2}%",
            -reduction * 100.0
        );
    }
}

#[test]
fn timing_and_functional_mispredictions_agree() {
    // The timing engine embeds the same PredictionHarness; per-class stats
    // must match exactly.
    for bench in [Benchmark::Perl, Benchmark::Vortex] {
        let trace = bench.workload().generate(BUDGET);
        let config = FrontEndConfig::isca97_with(TargetCacheConfig::isca97_tagged(4));
        let mut functional = PredictionHarness::new(config);
        functional.run(&trace);
        let timing = simulate(&trace, &MachineConfig::isca97(config));
        assert_eq!(functional.stats(), &timing.branch_stats, "{bench}");
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let trace = Benchmark::Gcc.workload().generate(BUDGET);
        let report = simulate(
            &trace,
            &MachineConfig::isca97(FrontEndConfig::isca97_with(
                TargetCacheConfig::isca97_tagless_gshare(),
            )),
        );
        (report.cycles, report.branch_stats.clone())
    };
    assert_eq!(run(), run());
}

#[test]
fn trace_prefix_property_holds_through_generation() {
    // Generating N instructions then N/2 must produce a prefix — the
    // experiments rely on scale-invariant workload identity.
    let w = Benchmark::M88ksim.workload();
    let long = w.generate(20_000);
    let short = w.generate(10_000);
    assert_eq!(&long.as_slice()[..10_000], short.as_slice());
}
