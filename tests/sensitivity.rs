//! Sensitivity tests: the reproduction's conclusions must be robust to the
//! incidental choices a synthetic methodology makes — PRNG seeds and trace
//! lengths — or the "results" would be artifacts of a lucky constant.

use indirect_jump_prediction::prelude::*;

fn mispred(trace: &VecTrace, config: FrontEndConfig) -> f64 {
    let mut h = PredictionHarness::new(config);
    h.run(trace);
    h.stats().indirect_jump_misprediction_rate()
}

#[test]
fn btb_misprediction_is_seed_stable() {
    // Re-seeding the stochastic streams must not move the Table 1 numbers
    // by more than a few points.
    for bench in [Benchmark::Gcc, Benchmark::Perl, Benchmark::M88ksim] {
        let w = bench.workload();
        let mut rates = Vec::new();
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let t = w.generate_seeded(seed, 80_000);
            rates.push(mispred(&t, FrontEndConfig::isca97_baseline()));
        }
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max - min < 0.08,
            "{bench}: BTB misprediction varies {min}..{max} across seeds"
        );
    }
}

#[test]
fn headline_ordering_is_seed_stable() {
    // The central conclusion — the target cache beats the BTB massively on
    // perl under any history — must hold for every seed.
    let w = Benchmark::Perl.workload();
    for seed in [3u64, 17, 99] {
        let t = w.generate_seeded(seed, 80_000);
        let base = mispred(&t, FrontEndConfig::isca97_baseline());
        let tc = mispred(
            &t,
            FrontEndConfig::isca97_with(TargetCacheConfig::isca97_tagless_path(
                PathFilter::IndirectJump,
            )),
        );
        assert!(tc < base * 0.3, "seed {seed}: tc {tc} vs base {base}");
    }
}

#[test]
fn rates_converge_with_trace_length() {
    // Doubling the trace must not change steady-state rates much (no
    // cold-start artifacts in the reported numbers).
    let w = Benchmark::Gcc.workload();
    let short = mispred(&w.generate(150_000), FrontEndConfig::isca97_baseline());
    let long = mispred(&w.generate(300_000), FrontEndConfig::isca97_baseline());
    assert!(
        (short - long).abs() < 0.05,
        "gcc BTB misprediction not converged: {short} vs {long}"
    );
}

#[test]
fn pattern_vs_path_split_is_seed_stable() {
    // Table 4/5's qualitative split must not be a seed artifact.
    for seed in [5u64, 1234] {
        let perl = Benchmark::Perl.workload().generate_seeded(seed, 80_000);
        let gcc = Benchmark::Gcc.workload().generate_seeded(seed, 80_000);
        let pattern = TargetCacheConfig::isca97_tagless_gshare();
        let path = TargetCacheConfig::isca97_tagless_path(PathFilter::IndirectJump);
        assert!(
            mispred(&perl, FrontEndConfig::isca97_with(path))
                < mispred(&perl, FrontEndConfig::isca97_with(pattern)),
            "seed {seed}: perl path/pattern split flipped"
        );
        assert!(
            mispred(&gcc, FrontEndConfig::isca97_with(pattern))
                < mispred(&gcc, FrontEndConfig::isca97_with(path)),
            "seed {seed}: gcc pattern/path split flipped"
        );
    }
}

#[test]
fn tournament_direction_predictor_matches_or_beats_gshare_suite_wide() {
    // The optional McFarling combining predictor must not be worse than
    // the default gshare front end across the suite (it subsumes it).
    let mut gshare_missed = 0.0;
    let mut tourney_missed = 0.0;
    let mut total = 0.0;
    for bench in Benchmark::ALL {
        let t = bench.workload().generate(60_000);
        let run = |cond: DirectionConfig| {
            let mut h =
                PredictionHarness::new(FrontEndConfig::isca97_baseline().with_direction(cond));
            h.run(&t);
            h.stats().class(BranchClass::CondDirect)
        };
        let g = run(DirectionConfig::gshare(12));
        let m = run(DirectionConfig::Tournament(TournamentConfig::mcfarling()));
        assert_eq!(g.executed, m.executed);
        gshare_missed += g.mispredicted() as f64;
        tourney_missed += m.mispredicted() as f64;
        total += g.executed as f64;
    }
    let g = gshare_missed / total;
    let m = tourney_missed / total;
    assert!(
        m <= g * 1.02,
        "tournament ({m}) should match or beat gshare ({g}) suite-wide"
    );
}
